//! The typed AIS instruction set.

use std::fmt;

use crate::loc::{DryReg, WetLoc};
use crate::Picoliters;

/// The flavor of a `separate` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SeparateKind {
    /// Capillary-electrophoresis separation (`separate.CE`).
    Electrophoresis,
    /// Size-based separation (`separate.SIZE`).
    Size,
    /// Affinity separation against a pre-loaded matrix (`separate.AF`).
    Affinity,
    /// Liquid-chromatography separation (`separate.LC`), added by the
    /// paper for the glycomics assay.
    LiquidChromatography,
}

impl SeparateKind {
    /// The mnemonic suffix (`CE`, `SIZE`, `AF`, `LC`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            SeparateKind::Electrophoresis => "CE",
            SeparateKind::Size => "SIZE",
            SeparateKind::Affinity => "AF",
            SeparateKind::LiquidChromatography => "LC",
        }
    }
}

/// The flavor of a `sense` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SenseKind {
    /// Optical-density sensing (`sense.OD`).
    OpticalDensity,
    /// Fluorescence sensing (`sense.FL`).
    Fluorescence,
}

impl SenseKind {
    /// The mnemonic suffix (`OD`, `FL`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            SenseKind::OpticalDensity => "OD",
            SenseKind::Fluorescence => "FL",
        }
    }
}

/// Dry (electronic) ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DryOp {
    /// `dry-mov dst, src`
    Mov,
    /// `dry-add dst, src`
    Add,
    /// `dry-sub dst, src`
    Sub,
    /// `dry-mul dst, src`
    Mul,
}

impl DryOp {
    fn mnemonic(self) -> &'static str {
        match self {
            DryOp::Mov => "dry-mov",
            DryOp::Add => "dry-add",
            DryOp::Sub => "dry-sub",
            DryOp::Mul => "dry-mul",
        }
    }
}

/// Source operand of a dry instruction: register or immediate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DrySrc {
    /// A controller register.
    Reg(DryReg),
    /// An immediate constant.
    Imm(i64),
}

impl fmt::Display for DrySrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrySrc::Reg(r) => write!(f, "{r}"),
            DrySrc::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// One AIS instruction.
///
/// Wet instructions follow Table 1 of the paper; dry instructions are
/// the controller's scalar ALU subset seen in the compiled enzyme assay.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Instr {
    /// `input dst, ipN` — draw fluid from an input port into `dst`.
    Input {
        /// Destination reservoir or unit.
        dst: WetLoc,
        /// Source input port.
        port: WetLoc,
    },
    /// `output opN, src` — send fluid from `src` off-chip.
    Output {
        /// Destination output port.
        port: WetLoc,
        /// Source location.
        src: WetLoc,
    },
    /// `move dst, src[, rel]` — transfer fluid; the optional relative
    /// volume is resolved to an absolute metered volume by volume
    /// management (omitted = move everything).
    Move {
        /// Destination location.
        dst: WetLoc,
        /// Source location.
        src: WetLoc,
        /// Relative volume in assay-specified parts.
        rel_vol: Option<u64>,
    },
    /// `move-abs dst, src, vol` — transfer an absolute volume.
    MoveAbs {
        /// Destination location.
        dst: WetLoc,
        /// Source location.
        src: WetLoc,
        /// Absolute volume in picoliters.
        vol: Picoliters,
    },
    /// `mix unit, seconds` — run the mixer.
    Mix {
        /// The mixer to run.
        unit: WetLoc,
        /// Mixing duration in seconds.
        seconds: u64,
    },
    /// `incubate unit, temp, seconds` — hold at temperature.
    Incubate {
        /// The heater to run.
        unit: WetLoc,
        /// Temperature in degrees Celsius.
        temp_c: i64,
        /// Duration in seconds.
        seconds: u64,
    },
    /// `concentrate unit, temp, seconds` — concentrate by evaporation.
    Concentrate {
        /// The unit to run.
        unit: WetLoc,
        /// Temperature in degrees Celsius.
        temp_c: i64,
        /// Duration in seconds.
        seconds: u64,
    },
    /// `separate.K unit, seconds` — run a separation; outputs appear at
    /// the unit's `out1`/`out2` ports.
    Separate {
        /// The separator to run.
        unit: WetLoc,
        /// Which separation chemistry.
        kind: SeparateKind,
        /// Duration in seconds.
        seconds: u64,
    },
    /// `sense.K unit, dst` — read a sensor into a dry result slot.
    Sense {
        /// The sensor to read.
        unit: WetLoc,
        /// Which sensing modality.
        kind: SenseKind,
        /// Result register receiving the reading.
        dst: DryReg,
    },
    /// A dry ALU instruction `dry-op dst, src`.
    Dry {
        /// The operation.
        op: DryOp,
        /// Destination register.
        dst: DryReg,
        /// Source operand.
        src: DrySrc,
    },
    /// `; text` — comment line preserved for readability of emitted code.
    Comment(String),
}

impl Instr {
    /// Whether the instruction executes on the wet (fluidic) datapath.
    ///
    /// Wet instructions are the slow ones (seconds); everything else is
    /// controller work (microseconds).
    pub fn is_wet(&self) -> bool {
        !matches!(
            self,
            Instr::Dry { .. } | Instr::Comment(_) | Instr::Sense { .. }
        )
    }

    /// Simulated wet duration in seconds: the explicit duration for
    /// timed operations, one second per fluid transfer, zero for
    /// controller work and sensing. Summing this over a program gives
    /// exactly the sequential executor's `wet_seconds`.
    pub fn wet_duration_s(&self) -> u64 {
        match self {
            Instr::Mix { seconds, .. }
            | Instr::Incubate { seconds, .. }
            | Instr::Concentrate { seconds, .. }
            | Instr::Separate { seconds, .. } => *seconds,
            Instr::Dry { .. } | Instr::Comment(_) | Instr::Sense { .. } => 0,
            Instr::Input { .. } | Instr::Output { .. } | Instr::Move { .. } => 1,
            Instr::MoveAbs { .. } => 1,
        }
    }

    /// Wet locations this instruction touches (reads, writes, or
    /// operates on), in operand order — the instruction's resource
    /// footprint for scheduling. Separator operations implicitly touch
    /// their matrix/pusher/out sub-ports, but those share the unit's
    /// allocation, so listing the named operand suffices.
    pub fn touched_locs(&self) -> Vec<WetLoc> {
        match self {
            Instr::Input { dst, port } => vec![*dst, *port],
            Instr::Output { port, src } => vec![*port, *src],
            Instr::Move { dst, src, .. } | Instr::MoveAbs { dst, src, .. } => vec![*dst, *src],
            Instr::Mix { unit, .. }
            | Instr::Incubate { unit, .. }
            | Instr::Concentrate { unit, .. }
            | Instr::Separate { unit, .. }
            | Instr::Sense { unit, .. } => vec![*unit],
            Instr::Dry { .. } | Instr::Comment(_) => Vec::new(),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Input { dst, port } => write!(f, "input {dst}, {port}"),
            Instr::Output { port, src } => write!(f, "output {port}, {src}"),
            Instr::Move {
                dst,
                src,
                rel_vol: Some(v),
            } => write!(f, "move {dst}, {src}, {v}"),
            Instr::Move {
                dst,
                src,
                rel_vol: None,
            } => write!(f, "move {dst}, {src}"),
            Instr::MoveAbs { dst, src, vol } => write!(f, "move-abs {dst}, {src}, {vol}"),
            Instr::Mix { unit, seconds } => write!(f, "mix {unit}, {seconds}"),
            Instr::Incubate {
                unit,
                temp_c,
                seconds,
            } => write!(f, "incubate {unit}, {temp_c}, {seconds}"),
            Instr::Concentrate {
                unit,
                temp_c,
                seconds,
            } => write!(f, "concentrate {unit}, {temp_c}, {seconds}"),
            Instr::Separate {
                unit,
                kind,
                seconds,
            } => write!(f, "separate.{} {unit}, {seconds}", kind.mnemonic()),
            Instr::Sense { unit, kind, dst } => {
                write!(f, "sense.{} {unit}, {dst}", kind.mnemonic())
            }
            Instr::Dry { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Instr::Comment(text) => write!(f, ";{text}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::SepPort;

    #[test]
    fn display_matches_paper_examples() {
        let i = Instr::Move {
            dst: WetLoc::Mixer(1),
            src: WetLoc::Reservoir(2),
            rel_vol: Some(4),
        };
        assert_eq!(i.to_string(), "move mixer1, s2, 4");

        let i = Instr::Sense {
            unit: WetLoc::Sensor(2),
            kind: SenseKind::OpticalDensity,
            dst: "Result3".into(),
        };
        assert_eq!(i.to_string(), "sense.OD sensor2, Result3");

        let i = Instr::Separate {
            unit: WetLoc::Separator(2, SepPort::Main),
            kind: SeparateKind::LiquidChromatography,
            seconds: 2400,
        };
        assert_eq!(i.to_string(), "separate.LC separator2, 2400");

        let i = Instr::Incubate {
            unit: WetLoc::Heater(1),
            temp_c: 37,
            seconds: 300,
        };
        assert_eq!(i.to_string(), "incubate heater1, 37, 300");

        let i = Instr::Dry {
            op: DryOp::Mul,
            dst: "r0".into(),
            src: DrySrc::Imm(10),
        };
        assert_eq!(i.to_string(), "dry-mul r0, 10");
    }

    #[test]
    fn wet_dry_classification() {
        let wet = Instr::Mix {
            unit: WetLoc::Mixer(1),
            seconds: 10,
        };
        let dry = Instr::Dry {
            op: DryOp::Mov,
            dst: "t".into(),
            src: DrySrc::Imm(1),
        };
        assert!(wet.is_wet());
        assert!(!dry.is_wet());
        assert!(!Instr::Comment(" hi".into()).is_wet());
    }
}
