//! Automatic fluid volume management — the paper's primary contribution.
//!
//! Given an assay DAG (from [`aqua_dag`]) and a machine description
//! ([`Machine`]), this crate assigns an absolute volume to every fluid
//! transfer such that:
//!
//! 1. assay mix ratios are honored exactly,
//! 2. every metered transfer is at least the hardware least count
//!    (no *underflow*),
//! 3. no unit's capacity is exceeded (no *overflow*),
//! 4. no fluid runs out before its last use (*non-deficit*).
//!
//! Three solvers are provided, forming the paper's volume-management
//! hierarchy (Figure 6, driven by [`hierarchy::manage_volumes`]):
//!
//! * [`dagsolve`] — the paper's linear-time algorithm: a backward
//!   `Vnorm` pass followed by a forward dispensing pass, over-constrained
//!   with flow conservation and equalized outputs;
//! * [`lpform`] — the LP/ILP formulation of Figure 3, solved with
//!   [`aqua_lp`]; slower but strictly more general;
//! * the DAG rewrites [`cascade`] (extreme mix ratios, §3.4.1) and
//!   [`replicate`] (numerous uses, §3.4.2) that rescue assays neither
//!   solver can satisfy directly.
//!
//! Statically-unknown volumes (separations measured at run time, §3.5)
//! are handled by [`unknown`]: the DAG is partitioned at compile time
//! and dispensing is deferred to run time per partition.
//!
//! # Examples
//!
//! Solving the paper's running example (Figure 2/5):
//!
//! ```
//! use aqua_dag::Dag;
//! use aqua_volume::{dagsolve, Machine};
//!
//! let mut dag = Dag::new();
//! let a = dag.add_input("A");
//! let b = dag.add_input("B");
//! let c = dag.add_input("C");
//! let k = dag.add_mix("K", &[(a, 1), (b, 4)], 0)?;
//! let l = dag.add_mix("L", &[(b, 2), (c, 1)], 0)?;
//! let m = dag.add_mix("M", &[(k, 2), (l, 1)], 0)?;
//! let n = dag.add_mix("N", &[(l, 2), (c, 3)], 0)?;
//! dag.add_output("M_out", m);
//! dag.add_output("N_out", n);
//!
//! let machine = Machine::paper_default();
//! let solution = dagsolve::solve(&dag, &machine)?;
//! assert!(solution.underflow.is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Lib targets must not panic on `unwrap()`: reachable failure paths
// carry typed errors, invariants use `expect` with a justification.
// Test code (cfg(test)) is exempt — asserting via unwrap is idiomatic.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bitmix;
pub mod cascade;
pub mod dagsolve;
pub mod feascheck;
pub mod hierarchy;
pub mod incr;
pub mod lpform;
pub mod machine;
pub mod replicate;
pub mod round;
pub mod unknown;
pub mod vnorm;

pub use dagsolve::{DagSolveError, VolumeAssignment};
pub use hierarchy::{
    manage_volumes, replan_with_observations, solve_assays_parallel, solve_assays_parallel_threads,
    ManagedOutcome, Method, VolumeManagerOptions,
};
pub use incr::{compile_with_trace, Divergence, IncrEdit, IncrSolver, Recording, ReplayOutcome};
pub use machine::Machine;
pub use vnorm::VnormTable;
