//! Biostream-style fixed-ratio (1:1) mixing plans.
//!
//! The paper contrasts its variable-ratio mixes with Biostream, which
//! "allow\[s\] mixing only in a 1:1 ratio, and discard\[s\] half of the
//! output of the mix ... achieving arbitrary mix ratios always requires
//! cascading (except for 1:1 mixing), which executes on the slow fluid
//! path" (§3.4.1). This module makes that comparison quantitative: it
//! plans the classic bit-serial dilution sequence that approximates an
//! arbitrary target fraction using only 1:1 merges, and reports the
//! number of slow wet operations and the discarded excess it costs.
//!
//! The construction processes the target's binary expansion from the
//! least-significant bit: start from a pure droplet, then repeatedly
//! merge 1:1 with pure `A` or pure `B` — after `n` steps the achieved
//! concentration is the `n`-bit truncation of the target, so the error
//! is below `2^-n`.

use std::error::Error;
use std::fmt;

use aqua_rational::Ratio;

/// One 1:1 merge step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitStep {
    /// Merge the working droplet 1:1 with pure component `A`.
    MergeWithA,
    /// Merge the working droplet 1:1 with pure diluent/component `B`.
    MergeWithB,
}

/// A planned 1:1-only mixing sequence. The working droplet starts as
/// pure `B` (the diluent side) and each step merges it 1:1 with a pure
/// droplet; processing the target's binary expansion least-significant
/// bit first realizes the truncated expansion exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct BitMixPlan {
    /// The merge sequence, applied in order.
    pub steps: Vec<BitStep>,
    /// The concentration of `A` actually achieved.
    pub achieved: Ratio,
    /// The requested concentration of `A`.
    pub target: Ratio,
}

impl BitMixPlan {
    /// Number of slow wet mix operations (merges).
    pub fn wet_mixes(&self) -> usize {
        self.steps.len()
    }

    /// Droplet-volumes of fluid discarded: every merge doubles the
    /// droplet and half is thrown away to keep unit volume (Biostream's
    /// policy), so one unit per merge.
    pub fn discarded_units(&self) -> usize {
        self.steps.len()
    }

    /// Absolute concentration error.
    pub fn error(&self) -> Ratio {
        (self.achieved - self.target).abs()
    }
}

/// Error from bit-mix planning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitMixError {
    /// The target concentration is not in `(0, 1)`.
    TargetOutOfRange,
    /// The tolerance is not positive.
    BadTolerance,
}

impl fmt::Display for BitMixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitMixError::TargetOutOfRange => {
                write!(f, "target concentration must be strictly between 0 and 1")
            }
            BitMixError::BadTolerance => write!(f, "tolerance must be positive"),
        }
    }
}

impl Error for BitMixError {}

/// Plans a 1:1-only merge sequence achieving concentration `target` of
/// component `A` within `tolerance`.
///
/// # Errors
///
/// Returns [`BitMixError`] for targets outside `(0, 1)` or non-positive
/// tolerances.
///
/// # Examples
///
/// A 1:3 mix (concentration 1/4) is exact in two merges from a pure
/// diluent droplet; a 1:9 mix
/// (concentration 1/10) has no finite binary expansion and needs one
/// merge per bit of tolerance:
///
/// ```
/// use aqua_rational::Ratio;
/// use aqua_volume::bitmix::plan;
///
/// let exact = plan(Ratio::new(1, 4)?, Ratio::new(1, 1000)?)?;
/// assert_eq!(exact.wet_mixes(), 2);
/// assert!(exact.error().is_zero());
///
/// let tenth = plan(Ratio::new(1, 10)?, Ratio::new(1, 1000)?)?;
/// assert!(tenth.wet_mixes() >= 9); // ~log2(1000) merges
/// assert!(tenth.error() < Ratio::new(1, 1000)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn plan(target: Ratio, tolerance: Ratio) -> Result<BitMixPlan, BitMixError> {
    if !target.is_positive() || target >= Ratio::ONE {
        return Err(BitMixError::TargetOutOfRange);
    }
    if !tolerance.is_positive() {
        return Err(BitMixError::BadTolerance);
    }
    // Bits needed: smallest n with 2^-n <= tolerance; cap for sanity.
    let mut n = 1u32;
    let mut pow = Ratio::new(1, 2).expect("valid");
    while pow > tolerance && n < 64 {
        n += 1;
        pow /= Ratio::from_int(2);
    }
    // Truncate the target to n bits: bits[i] is the coefficient of
    // 2^-(i+1). Stop early if the expansion terminates.
    let mut bits = Vec::with_capacity(n as usize);
    let mut rest = target;
    for _ in 0..n {
        rest *= Ratio::from_int(2);
        if rest >= Ratio::ONE {
            bits.push(true);
            rest -= Ratio::ONE;
        } else {
            bits.push(false);
        }
        if rest.is_zero() {
            break;
        }
    }
    // One merge per bit, least-significant first: after all merges the
    // bit at position i sits at weight 2^-i.
    let mut steps = Vec::with_capacity(bits.len());
    for &bit in bits.iter().rev() {
        steps.push(if bit {
            BitStep::MergeWithA
        } else {
            BitStep::MergeWithB
        });
    }
    // Achieved concentration: replay the plan from a pure-B droplet.
    let mut achieved = Ratio::ZERO;
    for step in &steps {
        let pure = match step {
            BitStep::MergeWithA => Ratio::ONE,
            BitStep::MergeWithB => Ratio::ZERO,
        };
        achieved = (achieved + pure) / Ratio::from_int(2);
    }
    Ok(BitMixPlan {
        steps,
        achieved,
        target,
    })
}

/// Counts the slow wet mixes a whole DAG costs under Biostream's
/// 1:1-only regime vs this paper's variable-ratio mixes.
///
/// For every mix node, the variable-ratio cost is 1 wet operation; the
/// 1:1-only cost decomposes a `k`-way mix into `k-1` sequential binary
/// combinations, each planned to `tolerance`.
pub fn compare_wet_mixes(
    dag: &aqua_dag::Dag,
    tolerance: Ratio,
) -> Result<MixOpComparison, BitMixError> {
    let mut ours = 0usize;
    let mut biostream = 0usize;
    let mut discarded = 0usize;
    for n in dag.node_ids() {
        if !matches!(dag.node(n).kind, aqua_dag::NodeKind::Mix { .. }) {
            continue;
        }
        ours += 1;
        // Sequential pairwise combination: fold components in, always
        // targeting the cumulative fraction of the first group.
        let fractions: Vec<Ratio> = dag
            .in_edges(n)
            .iter()
            .map(|&e| dag.edge(e).fraction)
            .collect();
        let mut acc = fractions[0];
        for &f in &fractions[1..] {
            let combined = acc + f;
            let target = acc / combined;
            if target.is_positive() && target < Ratio::ONE {
                let p = plan(target, tolerance)?;
                biostream += p.wet_mixes().max(1);
                discarded += p.discarded_units();
            } else {
                biostream += 1;
            }
            acc = combined;
        }
    }
    Ok(MixOpComparison {
        variable_ratio_mixes: ours,
        one_to_one_mixes: biostream,
        discarded_units: discarded,
    })
}

/// Result of [`compare_wet_mixes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixOpComparison {
    /// Wet mixes with variable-ratio hardware (this paper): one per mix
    /// node.
    pub variable_ratio_mixes: usize,
    /// Wet mixes under the 1:1-only regime (Biostream).
    pub one_to_one_mixes: usize,
    /// Unit droplets discarded by the 1:1-only regime.
    pub discarded_units: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn powers_of_two_are_exact() {
        for (num, den, steps) in [(1, 2, 1), (1, 4, 2), (3, 4, 2), (1, 8, 3), (5, 8, 3)] {
            let p = plan(r(num, den), r(1, 1_000_000)).unwrap();
            assert!(p.error().is_zero(), "{num}/{den}: error {}", p.error());
            assert_eq!(p.wet_mixes(), steps, "{num}/{den}");
        }
    }

    #[test]
    fn achieved_matches_replayed_expansion() {
        let p = plan(r(1, 10), r(1, 1024)).unwrap();
        assert!(p.error() < r(1, 1024));
        assert!(p.wet_mixes() >= 9 && p.wet_mixes() <= 11);
    }

    #[test]
    fn tighter_tolerance_needs_more_merges() {
        let coarse = plan(r(1, 3), r(1, 100)).unwrap();
        let fine = plan(r(1, 3), r(1, 100_000)).unwrap();
        assert!(fine.wet_mixes() > coarse.wet_mixes());
        assert!(fine.error() < coarse.error());
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(plan(Ratio::ZERO, r(1, 100)).is_err());
        assert!(plan(Ratio::ONE, r(1, 100)).is_err());
        assert!(plan(r(3, 2), r(1, 100)).is_err());
        assert!(plan(r(1, 2), Ratio::ZERO).is_err());
    }

    #[test]
    fn paper_claim_variable_ratio_needs_far_fewer_wet_ops() {
        // Glucose-shaped DAG: 5 mixes for us; Biostream needs a bit
        // cascade per non-power-of-two ratio.
        let mut d = aqua_dag::Dag::new();
        let g = d.add_input("G");
        let rgt = d.add_input("R");
        for (i, parts) in [(1u64, 1u64), (1, 2), (1, 4), (1, 8), (1, 1)]
            .iter()
            .enumerate()
        {
            let m = d
                .add_mix(format!("m{i}"), &[(g, parts.0), (rgt, parts.1)], 10)
                .unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let cmp = compare_wet_mixes(&d, r(1, 100)).unwrap();
        assert_eq!(cmp.variable_ratio_mixes, 5);
        assert!(cmp.one_to_one_mixes > cmp.variable_ratio_mixes, "{cmp:?}");
        // 1:1 and 1:3(conc 1/4... here 1:2 -> 1/3, 1:4 -> 1/5, 1:8 -> 1/9
        // are all infinite binary expansions: ~7 merges each at 1%.
        assert!(cmp.one_to_one_mixes >= 20, "{cmp:?}");
        assert!(cmp.discarded_units > 0);
    }
}
