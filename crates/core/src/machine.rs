//! The PLoC machine description relevant to volume management.

use std::error::Error;
use std::fmt;

use aqua_rational::Ratio;

/// Hardware parameters of the target programmable lab-on-a-chip.
///
/// Volumes are in nanoliters throughout (the paper's unit). The default
/// used by the paper's evaluation is a maximum capacity of 100 nl per
/// reservoir/functional unit and a least count of 0.1 nl (100 pl), the
/// metering resolution demonstrated for PDMS valves.
///
/// # Examples
///
/// ```
/// use aqua_volume::Machine;
///
/// let m = Machine::paper_default();
/// assert_eq!(m.max_capacity_nl().to_string(), "100");
/// assert_eq!(m.least_count_nl().to_string(), "1/10");
/// assert_eq!(m.span().to_string(), "1000");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    max_capacity_nl: Ratio,
    least_count_nl: Ratio,
    /// Number of storage reservoirs available for compile-time
    /// allocation (bounds static replication).
    pub reservoirs: usize,
    /// Number of mixer functional units.
    pub mixers: usize,
    /// Number of heater functional units.
    pub heaters: usize,
    /// Number of separator functional units.
    pub separators: usize,
    /// Number of sensor functional units.
    pub sensors: usize,
    /// Number of chip input ports.
    pub input_ports: usize,
}

/// Error constructing an inconsistent machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineError(String);

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid machine description: {}", self.0)
    }
}

impl Error for MachineError {}

impl Machine {
    /// The paper's evaluation machine: 100 nl capacity, 0.1 nl least
    /// count, with a generous but finite fluid-path inventory.
    pub fn paper_default() -> Machine {
        Machine::new(Ratio::from_int(100), Ratio::new(1, 10).expect("nonzero"))
            .expect("paper default is valid")
    }

    /// Creates a machine with the given capacity and least count (both
    /// in nanoliters) and a default unit inventory.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError`] unless `0 < least_count <= max_capacity`.
    pub fn new(max_capacity_nl: Ratio, least_count_nl: Ratio) -> Result<Machine, MachineError> {
        if !least_count_nl.is_positive() {
            return Err(MachineError("least count must be positive".into()));
        }
        if max_capacity_nl < least_count_nl {
            return Err(MachineError(
                "max capacity must be at least the least count".into(),
            ));
        }
        Ok(Machine {
            max_capacity_nl,
            least_count_nl,
            reservoirs: 32,
            mixers: 2,
            heaters: 2,
            separators: 2,
            sensors: 2,
            input_ports: 16,
        })
    }

    /// Returns this machine with a different reservoir count
    /// (builder-style).
    pub fn with_reservoirs(mut self, reservoirs: usize) -> Machine {
        self.reservoirs = reservoirs;
        self
    }

    /// Returns this machine with a different input-port count
    /// (builder-style).
    pub fn with_input_ports(mut self, input_ports: usize) -> Machine {
        self.input_ports = input_ports;
        self
    }

    /// Returns this machine with a different mixer count
    /// (builder-style). More mixers widen the schedulable parallelism
    /// of independent mixes.
    pub fn with_mixers(mut self, mixers: usize) -> Machine {
        self.mixers = mixers;
        self
    }

    /// Returns this machine with a different heater count
    /// (builder-style).
    pub fn with_heaters(mut self, heaters: usize) -> Machine {
        self.heaters = heaters;
        self
    }

    /// Returns this machine with a different separator count
    /// (builder-style).
    pub fn with_separators(mut self, separators: usize) -> Machine {
        self.separators = separators;
        self
    }

    /// Returns this machine with a different sensor count
    /// (builder-style).
    pub fn with_sensors(mut self, sensors: usize) -> Machine {
        self.sensors = sensors;
        self
    }

    /// Maximum volume a reservoir or functional unit can hold, in nl.
    pub fn max_capacity_nl(&self) -> Ratio {
        self.max_capacity_nl
    }

    /// Minimum metered transfer volume, in nl.
    pub fn least_count_nl(&self) -> Ratio {
        self.least_count_nl
    }

    /// The dynamic range `max_capacity / least_count` — the largest
    /// volume ratio the hardware can realize in a single mix.
    pub fn span(&self) -> Ratio {
        self.max_capacity_nl / self.least_count_nl
    }

    /// Rounds a volume down to the nearest least-count multiple.
    pub fn floor_to_least_count(&self, vol_nl: Ratio) -> Ratio {
        let counts = (vol_nl / self.least_count_nl).floor();
        Ratio::from_int(counts) * self.least_count_nl
    }

    /// Rounds a volume to the nearest least-count multiple (half away
    /// from zero), the paper's RVol -> IVol rounding.
    pub fn round_to_least_count(&self, vol_nl: Ratio) -> Ratio {
        let counts = (vol_nl / self.least_count_nl).round();
        Ratio::from_int(counts) * self.least_count_nl
    }

    /// Whether `vol_nl` is an exact least-count multiple.
    pub fn is_least_count_multiple(&self, vol_nl: Ratio) -> bool {
        (vol_nl / self.least_count_nl).is_integer()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn paper_default_parameters() {
        let m = Machine::paper_default();
        assert_eq!(m.max_capacity_nl(), Ratio::from_int(100));
        assert_eq!(m.least_count_nl(), r(1, 10));
        assert_eq!(m.span(), Ratio::from_int(1000));
    }

    #[test]
    fn rejects_degenerate_machines() {
        assert!(Machine::new(Ratio::from_int(100), Ratio::ZERO).is_err());
        assert!(Machine::new(Ratio::from_int(100), Ratio::from_int(-1)).is_err());
        assert!(Machine::new(r(1, 10), Ratio::from_int(100)).is_err());
        // least count == capacity is legal (span 1).
        assert!(Machine::new(Ratio::from_int(5), Ratio::from_int(5)).is_ok());
    }

    #[test]
    fn builder_methods_adjust_inventory() {
        let m = Machine::paper_default()
            .with_reservoirs(4)
            .with_input_ports(2)
            .with_mixers(8)
            .with_heaters(3)
            .with_separators(1)
            .with_sensors(5);
        assert_eq!(m.reservoirs, 4);
        assert_eq!(m.input_ports, 2);
        assert_eq!(m.mixers, 8);
        assert_eq!(m.heaters, 3);
        assert_eq!(m.separators, 1);
        assert_eq!(m.sensors, 5);
        // Volume parameters are untouched.
        assert_eq!(m.span(), Ratio::from_int(1000));
    }

    #[test]
    fn rounding_to_least_count() {
        let m = Machine::paper_default();
        assert_eq!(m.floor_to_least_count(r(333, 100)), r(33, 10)); // 3.33 -> 3.3
        assert_eq!(m.round_to_least_count(r(337, 100)), r(34, 10)); // 3.37 -> 3.4
        assert_eq!(m.round_to_least_count(r(335, 100)), r(34, 10)); // 3.35 -> 3.4
        assert!(m.is_least_count_multiple(r(33, 10)));
        assert!(!m.is_least_count_multiple(r(333, 100)));
    }
}
