//! Cascaded mixing for extreme mix ratios (§3.4.1, Figure 7).
//!
//! A mix whose smallest input fraction is below `least_count /
//! max_capacity` cannot be realized in one step on the hardware: metering
//! the small component underflows even when the mix fills the unit. The
//! classic remedy is to build the dilution in stages — `1:99` becomes two
//! `1:9` mixes — producing *excess* intermediate fluid whose discarded
//! share is known a priori, which is what lets DAGSolve keep its backward
//! pass (the excess edge's Vnorm is a fixed share of the producer).

use std::error::Error;
use std::fmt;

use aqua_dag::{Dag, EdgeId, NodeId, NodeKind, Ratio};

use crate::machine::Machine;

/// Maximum cascade depth attempted before giving up (a span of 10 with
/// depth 12 already covers a 10^12 dilution — far beyond real assays).
const MAX_DEPTH: u32 = 12;

/// Error from cascade planning/application.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CascadeError {
    /// Node is not a mix (nothing to cascade).
    NotAMix {
        /// Name of the node.
        node: String,
    },
    /// The mix is not extreme on this machine (cascading would only
    /// waste resources).
    NotExtreme {
        /// Name of the node.
        node: String,
    },
    /// No stage factoring with per-stage ratios within the machine span
    /// exists up to the depth limit (e.g. span 1 hardware).
    NoFeasiblePlan {
        /// Name of the node.
        node: String,
    },
    /// Exact arithmetic overflowed.
    Arithmetic,
}

impl fmt::Display for CascadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CascadeError::NotAMix { node } => write!(f, "node `{node}` is not a mix"),
            CascadeError::NotExtreme { node } => {
                write!(f, "mix `{node}` is not extreme on this machine")
            }
            CascadeError::NoFeasiblePlan { node } => write!(
                f,
                "no cascade of depth <= {MAX_DEPTH} makes mix `{node}` feasible"
            ),
            CascadeError::Arithmetic => write!(f, "cascade arithmetic overflowed"),
        }
    }
}

impl Error for CascadeError {}

/// Finds mix nodes whose smallest input fraction is at or below
/// `1 / machine.span()`. Strictly below is infeasible outright; exactly
/// at the span is marginal — it succeeds only if the mix receives the
/// entire machine capacity, which any competing demand destroys (the
/// enzyme assay's 1:999 dilutions are this case).
///
/// # Examples
///
/// ```
/// use aqua_dag::Dag;
/// use aqua_volume::{cascade, Machine};
///
/// let mut dag = Dag::new();
/// let a = dag.add_input("A");
/// let b = dag.add_input("B");
/// let m = dag.add_mix("mx", &[(a, 1), (b, 1999)], 0)?;
/// dag.add_process("sink", "sense.OD", m);
/// let extreme = cascade::find_extreme_mixes(&dag, &Machine::paper_default());
/// assert_eq!(extreme, vec![m]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_extreme_mixes(dag: &Dag, machine: &Machine) -> Vec<NodeId> {
    let threshold = machine.span().checked_recip().expect("span is positive");
    dag.node_ids()
        .filter(|&n| {
            matches!(dag.node(n).kind, NodeKind::Mix { .. })
                && dag
                    .in_edges(n)
                    .iter()
                    .any(|&e| dag.edge(e).fraction <= threshold)
        })
        .collect()
}

/// A cascade plan: the dilution factor of each stage. The factors
/// multiply to exactly `1 / smallest_fraction` of the original mix, so
/// the final composition is preserved exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadePlan {
    /// Per-stage total-parts factor (`s` means a `1:(s-1)` stage). The
    /// last factor may be rational to make the product exact.
    pub factors: Vec<Ratio>,
}

impl CascadePlan {
    /// Number of mix stages.
    pub fn depth(&self) -> usize {
        self.factors.len()
    }
}

/// Plans stage factors for a total dilution `total` (= 1/f_min) under a
/// per-stage limit of `span`.
///
/// Strategy, following the paper's worked examples: if the total has a
/// small exact integer root, use it — `1:99` becomes two `1:9`s and
/// `1:999` three `1:9`s. Otherwise iteratively deepen with
/// `s = ceil(total^(1/k))` equal stages and an exact rational remainder
/// stage (`1:399` becomes two `1:19`s).
///
/// A total comfortably inside the span (at most half of it) needs no
/// cascade and plans as a single stage.
///
/// # Errors
///
/// Returns [`CascadeError::NoFeasiblePlan`] if no depth up to the
/// internal limit (12 stages) works.
pub fn plan_cascade(total: Ratio, span: Ratio) -> Result<CascadePlan, CascadeError> {
    if total.checked_mul(Ratio::from_int(2)).unwrap_or(total) <= span {
        // Depth 1: no cascade needed.
        return Ok(CascadePlan {
            factors: vec![total],
        });
    }
    if span <= Ratio::ONE {
        return Err(CascadeError::NoFeasiblePlan {
            node: String::new(),
        });
    }
    let total_f = total.to_f64();
    // Stage factors stay at or below half the span so no stage is
    // itself marginal (the same comfort rule as the single-stage case).
    let comfort = span / Ratio::from_int(2);
    // Preferred: exact integer roots (the paper's 10^k dilutions).
    if total.is_integer() {
        for k in 2..=MAX_DEPTH {
            let s = (total_f.powf(1.0 / k as f64).round()).max(2.0) as i128;
            for cand in [s - 1, s, s + 1] {
                if cand >= 2 && pow_ratio(cand, k)? == total && Ratio::from_int(cand) <= comfort {
                    return Ok(CascadePlan {
                        factors: vec![Ratio::from_int(cand); k as usize],
                    });
                }
            }
        }
    }
    for k in 2..=MAX_DEPTH {
        // Integer k-th root, rounded up, with f64 seed + exact fix-up.
        let mut s = total_f.powf(1.0 / k as f64).ceil() as i128;
        s = s.max(2);
        while pow_ratio(s - 1, k)? >= total && s > 2 {
            s -= 1;
        }
        while pow_ratio(s, k)? < total {
            s += 1;
        }
        let s_ratio = Ratio::from_int(s);
        if s_ratio > comfort {
            continue; // even equal stages at this depth are too skewed
        }
        // k-1 equal stages of s, final stage the exact remainder.
        let head = pow_ratio(s, k - 1)?;
        let last = total
            .checked_div(head)
            .map_err(|_| CascadeError::Arithmetic)?;
        if last > Ratio::ONE && last <= comfort {
            let mut factors = vec![s_ratio; (k - 1) as usize];
            factors.push(last);
            return Ok(CascadePlan { factors });
        }
        // Remainder collapsed to <= 1: fold it into fewer equal stages.
        let head2 = pow_ratio(s, k - 2)?;
        let last2 = total
            .checked_div(head2)
            .map_err(|_| CascadeError::Arithmetic)?;
        if last2 > Ratio::ONE && last2 <= comfort {
            let mut factors = vec![s_ratio; (k - 2) as usize];
            factors.push(last2);
            return Ok(CascadePlan { factors });
        }
    }
    Err(CascadeError::NoFeasiblePlan {
        node: String::new(),
    })
}

fn pow_ratio(base: i128, exp: u32) -> Result<Ratio, CascadeError> {
    let mut acc = Ratio::ONE;
    for _ in 0..exp {
        acc = acc
            .checked_mul(Ratio::from_int(base))
            .map_err(|_| CascadeError::Arithmetic)?;
    }
    Ok(acc)
}

/// Record of one applied cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeInfo {
    /// The original (now final-stage) mix node.
    pub node: NodeId,
    /// Newly created intermediate mix nodes, first stage first.
    pub intermediates: Vec<NodeId>,
    /// Newly created excess nodes, one per intermediate.
    pub excess_nodes: Vec<NodeId>,
    /// The plan that was applied.
    pub plan: CascadePlan,
}

/// Rewrites an extreme mix into a cascade of milder stages in place.
///
/// The smallest-fraction input is pre-diluted into the largest-fraction
/// input over `plan` stages; each intermediate discards the a-priori
/// known excess share. The final composition of `node` is preserved
/// exactly (verified by the DAG fraction invariants).
///
/// # Errors
///
/// Returns [`CascadeError`] if the node is not an extreme mix or no
/// feasible plan exists.
pub fn apply_cascade(
    dag: &mut Dag,
    node: NodeId,
    machine: &Machine,
) -> Result<CascadeInfo, CascadeError> {
    let name = dag.node(node).name.clone();
    let seconds = match dag.node(node).kind {
        NodeKind::Mix { seconds } => seconds,
        _ => return Err(CascadeError::NotAMix { node: name }),
    };
    let threshold = machine.span().checked_recip().expect("positive span");
    // Identify the extreme (smallest-fraction) and carrier
    // (largest-fraction) inputs.
    let ins: Vec<EdgeId> = dag.in_edges(node).to_vec();
    let (&small_e, _) = ins
        .iter()
        .map(|e| (e, dag.edge(*e).fraction))
        .min_by(|a, b| a.1.cmp(&b.1))
        .expect("mix has inputs");
    let (&big_e, _) = ins
        .iter()
        .map(|e| (e, dag.edge(*e).fraction))
        .max_by(|a, b| a.1.cmp(&b.1))
        .expect("mix has inputs");
    let f_small = dag.edge(small_e).fraction;
    if f_small > threshold {
        return Err(CascadeError::NotExtreme { node: name });
    }
    let total = f_small
        .checked_recip()
        .map_err(|_| CascadeError::Arithmetic)?;
    let mut plan = plan_cascade(total, machine.span())?;
    if plan.depth() < 2 {
        // plan_cascade can return depth 1 when total <= span, but we
        // already know f_small < 1/span, so this cannot happen; guard
        // for rational span corner cases anyway.
        plan = CascadePlan {
            factors: vec![total],
        };
    }
    let k = plan.depth();
    let small_src = dag.edge(small_e).src;
    let big_src = dag.edge(big_e).src;

    // Build intermediate stages C1..C_{k-1}: Ci = mix(prev : carrier) in
    // ratio 1:(s_i - 1), discarding 1 - 1/s_{i+1} of its output.
    let mut intermediates = Vec::new();
    let mut excess_nodes = Vec::new();
    let mut prev = small_src;
    for i in 0..k - 1 {
        let s_i = plan.factors[i];
        let stage_name = format!("{name}#c{}", i + 1);
        let one_over = s_i.checked_recip().map_err(|_| CascadeError::Arithmetic)?;
        let rest = Ratio::ONE
            .checked_sub(one_over)
            .map_err(|_| CascadeError::Arithmetic)?;
        let stage = dag
            .add_mix_exact(&stage_name, &[(prev, one_over), (big_src, rest)], seconds)
            .map_err(|_| CascadeError::Arithmetic)?;
        let s_next = plan.factors[i + 1];
        let discard = Ratio::ONE
            .checked_sub(
                s_next
                    .checked_recip()
                    .map_err(|_| CascadeError::Arithmetic)?,
            )
            .map_err(|_| CascadeError::Arithmetic)?;
        let ex = dag.add_excess(format!("{stage_name}#excess"), stage, discard);
        intermediates.push(stage);
        excess_nodes.push(ex);
        prev = stage;
    }

    // Rewire the original node: the small edge now comes from the last
    // intermediate with fraction 1/s_k; the carrier edge absorbs the
    // carrier fluid already inside the intermediate.
    let s_k = plan.factors[k - 1];
    let new_small_frac = s_k.checked_recip().map_err(|_| CascadeError::Arithmetic)?;
    // Carrier already delivered via the cascade: new_small_frac - f_small.
    let f_big = dag.edge(big_e).fraction;
    let carried = new_small_frac
        .checked_sub(f_small)
        .map_err(|_| CascadeError::Arithmetic)?;
    let new_big_frac = f_big
        .checked_sub(carried)
        .map_err(|_| CascadeError::Arithmetic)?;
    if !new_big_frac.is_positive() {
        return Err(CascadeError::NoFeasiblePlan { node: name });
    }
    dag.redirect_edge_src(small_e, prev);
    dag.set_edge_fraction(small_e, new_small_frac);
    dag.set_edge_fraction(big_e, new_big_frac);

    Ok(CascadeInfo {
        node,
        intermediates,
        excess_nodes,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dagsolve;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn plan_1_to_99_is_two_stages_of_ten() {
        // The paper's Figure 7 example: on hardware with a least-count
        // to capacity ratio of 1:100, 1:99 -> 1:9 then 1:9.
        let plan = plan_cascade(Ratio::from_int(100), Ratio::from_int(100)).unwrap();
        assert_eq!(plan.factors, vec![Ratio::from_int(10), Ratio::from_int(10)]);
    }

    #[test]
    fn plan_1_to_999_is_three_stages_of_ten() {
        // The enzyme assay's case on the paper-default span of 1000.
        let plan = plan_cascade(Ratio::from_int(1000), Ratio::from_int(1000)).unwrap();
        assert_eq!(plan.factors.len(), 3);
        assert!(plan.factors.iter().all(|&f| f == Ratio::from_int(10)));
    }

    #[test]
    fn plan_remainder_stage_is_exact() {
        // total 500, span 30: s = ceil(500^(1/2)) = 23; last = 500/23.
        let plan = plan_cascade(Ratio::from_int(500), Ratio::from_int(30)).unwrap();
        let product = plan.factors.iter().copied().fold(Ratio::ONE, |a, b| a * b);
        assert_eq!(product, Ratio::from_int(500));
        for f in &plan.factors {
            assert!(*f > Ratio::ONE && *f <= Ratio::from_int(30));
        }
    }

    #[test]
    fn plan_within_span_is_single_stage() {
        let plan = plan_cascade(Ratio::from_int(50), Ratio::from_int(1000)).unwrap();
        assert_eq!(plan.factors, vec![Ratio::from_int(50)]);
    }

    #[test]
    fn plan_fails_on_unit_span() {
        assert!(plan_cascade(Ratio::from_int(100), Ratio::ONE).is_err());
    }

    #[test]
    fn find_extreme_detects_only_infeasible_mixes() {
        let machine = Machine::paper_default(); // span 1000
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let ok = d.add_mix("ok", &[(a, 1), (b, 998)], 0).unwrap();
        let bad = d.add_mix("bad", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_process("s1", "sense.OD", ok);
        d.add_process("s2", "sense.OD", bad);
        assert_eq!(find_extreme_mixes(&d, &machine), vec![bad]);
    }

    #[test]
    fn cascade_preserves_final_composition_and_fixes_underflow() {
        // 1:1999 on span-1000 hardware: direct mix underflows; after
        // cascading the composition is identical and DAGSolve succeeds.
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_process("sink", "sense.OD", m);
        assert!(dagsolve::solve(&d, &machine).unwrap().underflow.is_some());

        let info = apply_cascade(&mut d, m, &machine).unwrap();
        assert!(d.validate().is_ok(), "{:?}", d.validate());
        assert!(info.plan.depth() >= 2);
        let sol = dagsolve::solve(&d, &machine).unwrap();
        assert!(
            sol.underflow.is_none(),
            "still underflows: {:?}",
            sol.underflow
        );
        // Composition: A's share of mx must still be 1/2000. Walk the
        // cascade: share of A in stage i output is the product of the
        // small-edge fractions.
        let mut share = Ratio::ONE;
        let mut cur = m;
        loop {
            let small = d
                .in_edges(cur)
                .iter()
                .map(|&e| d.edge(e))
                .min_by(|x, y| x.fraction.cmp(&y.fraction))
                .unwrap()
                .clone();
            share *= small.fraction;
            if small.src == a {
                break;
            }
            cur = small.src;
        }
        assert_eq!(share, r(1, 2000));
    }

    #[test]
    fn cascade_on_mild_mix_is_rejected() {
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 9)], 0).unwrap();
        d.add_process("sink", "sense.OD", m);
        assert!(matches!(
            apply_cascade(&mut d, m, &machine),
            Err(CascadeError::NotExtreme { .. })
        ));
    }

    #[test]
    fn cascade_on_non_mix_is_rejected() {
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_process("p", "incubate", a);
        d.add_process("sink", "sense.OD", p);
        assert!(matches!(
            apply_cascade(&mut d, p, &machine),
            Err(CascadeError::NotAMix { .. })
        ));
    }

    #[test]
    fn three_way_extreme_mix_cascades_against_carrier() {
        // effluent : buffer : catalyst = 1 : 5000 : 10 on span-1000
        // hardware: the 1/5011 component is extreme.
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let e = d.add_input("effluent");
        let b = d.add_input("buffer");
        let c = d.add_input("catalyst");
        let m = d.add_mix("mx", &[(e, 1), (b, 5000), (c, 10)], 0).unwrap();
        d.add_process("sink", "sense.OD", m);
        apply_cascade(&mut d, m, &machine).unwrap();
        assert!(d.validate().is_ok(), "{:?}", d.validate());
        let sol = dagsolve::solve(&d, &machine).unwrap();
        assert!(sol.underflow.is_none(), "{:?}", sol.underflow);
    }
}
