//! Static replication for heavily-used fluids (§3.4.2).
//!
//! When a fluid has so many uses that even a capacity-full production
//! underflows some transfer, the fix is to produce *more than one
//! reservoir's worth* by replicating (part of) the backward slice of the
//! fluid's production and spreading the uses across the replicas. Each
//! replica's Vnorm is a fraction of the original's, which — because
//! volumes scale inversely with the maximum Vnorm — *raises* everyone's
//! absolute volumes when the replicated node was the bottleneck.
//!
//! Replication is a purely static graph transformation: the extra
//! fluid-path demand is known at compile time, so (unlike reactive
//! regeneration) the compiler can check it against machine resources and
//! fail cleanly (§3.4.2, "compilation fails").

use std::error::Error;
use std::fmt;

use aqua_dag::{Dag, NodeId, NodeKind, Ratio};

use crate::machine::Machine;
use crate::vnorm::VnormTable;

/// Error from static replication.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReplicateError {
    /// Sinks cannot be replicated (they have no uses to spread).
    NotReplicable {
        /// Name of the node.
        node: String,
    },
    /// Fewer than two uses — replication cannot help.
    TooFewUses {
        /// Name of the node.
        node: String,
    },
    /// The replicated DAG exceeds the machine's fluid-path resources.
    ResourcesExceeded {
        /// Human-readable description of the exceeded resource.
        what: String,
    },
}

impl fmt::Display for ReplicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicateError::NotReplicable { node } => {
                write!(f, "node `{node}` cannot be replicated")
            }
            ReplicateError::TooFewUses { node } => {
                write!(f, "node `{node}` has fewer than two uses")
            }
            ReplicateError::ResourcesExceeded { what } => {
                write!(f, "replication exceeds machine resources: {what}")
            }
        }
    }
}

impl Error for ReplicateError {}

/// Record of one replication step.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicateInfo {
    /// The node that was replicated.
    pub node: NodeId,
    /// The new replica nodes (the original remains and keeps a share of
    /// the uses).
    pub replicas: Vec<NodeId>,
}

/// Picks the replication candidate the paper targets: the node with the
/// largest load Vnorm (the capacity bottleneck that pins everyone's
/// scale), provided it has at least two uses.
pub fn bottleneck_candidate(dag: &Dag, vnorms: &VnormTable) -> Option<NodeId> {
    dag.node_ids()
        .filter(|&n| dag.num_uses(n) >= 2 && !dag.node(n).kind.is_sink())
        .max_by(|&a, &b| vnorms.load[a.index()].cmp(&vnorms.load[b.index()]))
}

/// Replicates `node` into `copies` total instances (the original plus
/// `copies - 1` new ones), distributing its uses round-robin.
///
/// For interior nodes the in-edges are duplicated onto each replica
/// (increasing the producers' use counts — the "replicate another level"
/// iteration then applies to them if needed). Input nodes are simply
/// duplicated — the paper's "using three input instructions to three
/// different reservoirs".
///
/// # Errors
///
/// Returns [`ReplicateError`] if the node is a sink, has fewer than two
/// uses, or the result exceeds machine resources.
pub fn replicate_node(
    dag: &mut Dag,
    node: NodeId,
    copies: usize,
    machine: &Machine,
) -> Result<ReplicateInfo, ReplicateError> {
    let name = dag.node(node).name.clone();
    let kind = dag.node(node).kind.clone();
    if kind.is_sink() {
        return Err(ReplicateError::NotReplicable { node: name });
    }
    let uses: Vec<_> = dag.out_edges(node).to_vec();
    if uses.len() < 2 || copies < 2 {
        return Err(ReplicateError::TooFewUses { node: name });
    }
    let copies = copies.min(uses.len());

    // Resource verdict *before* mutating: a blocked replication must
    // leave the DAG untouched (the incremental replanner replays this
    // verdict without owning a mutable graph, and the hierarchy's
    // ResourcesExceeded return should not carry half-rewritten state).
    projected_fits(dag, node, copies, machine)?;

    // Create replicas with duplicated in-edges.
    let in_edges: Vec<(NodeId, Ratio)> = dag
        .in_edges(node)
        .iter()
        .map(|&e| (dag.edge(e).src, dag.edge(e).fraction))
        .collect();
    let mut replicas = Vec::with_capacity(copies - 1);
    for i in 1..copies {
        let replica = dag.add_node(format!("{name}#r{i}"), kind.clone());
        for &(src, fraction) in &in_edges {
            dag.add_edge(src, replica, fraction);
        }
        replicas.push(replica);
    }

    // Round-robin the uses over [original, replicas...].
    for (i, &e) in uses.iter().enumerate() {
        let slot = i % copies;
        if slot > 0 {
            dag.redirect_edge_src(e, replicas[slot - 1]);
        }
    }

    debug_assert_eq!(fits_machine(dag, machine), Ok(()));
    Ok(ReplicateInfo { node, replicas })
}

/// Computes the [`fits_machine`] verdict that replicating `node` into
/// `copies` instances *would* produce, without mutating the DAG. The
/// result — including the exact error wording — matches running
/// [`replicate_node`] and then [`fits_machine`] on the rewritten graph.
///
/// Three count changes are projected:
///
/// * `copies - 1` new instances of the node's kind (new input ports if
///   it is an [`NodeKind::Input`]);
/// * the uses are round-robined, so each instance's parked status is
///   re-derived from its share of the uses;
/// * every in-edge producer gains `copies - 1` duplicated uses, which
///   can push a single-use producer over the parked threshold.
///
/// # Errors
///
/// Returns [`ReplicateError::ResourcesExceeded`] naming the resource,
/// exactly as [`fits_machine`] would after the rewrite.
pub fn projected_fits(
    dag: &Dag,
    node: NodeId,
    copies: usize,
    machine: &Machine,
) -> Result<(), ReplicateError> {
    let kind = &dag.node(node).kind;
    let uses = dag.num_uses(node);
    let copies = copies.min(uses);
    let new_instances = copies.saturating_sub(1);

    let mut inputs = dag
        .node_ids()
        .filter(|&n| dag.node(n).kind == NodeKind::Input)
        .count();
    if *kind == NodeKind::Input {
        inputs += new_instances;
    }
    if inputs > machine.input_ports {
        return Err(ReplicateError::ResourcesExceeded {
            what: format!(
                "{inputs} input fluids exceed {} input ports",
                machine.input_ports
            ),
        });
    }

    let is_parked = |kind: &NodeKind, uses: usize| -> bool {
        *kind == NodeKind::Input || (!kind.is_sink() && uses >= 2)
    };
    let mut parked = dag
        .node_ids()
        .filter(|&n| is_parked(&dag.node(n).kind, dag.num_uses(n)))
        .count() as isize;
    // The node's own uses are spread round-robin over the instances:
    // instance j \in [0, copies) serves ceil((uses - j) / copies) uses.
    if copies >= 2 {
        if is_parked(kind, uses) {
            parked -= 1;
        }
        for j in 0..copies {
            let share = (uses - j).div_ceil(copies);
            if is_parked(kind, share) {
                parked += 1;
            }
        }
        // Each distinct producer gains one duplicated out-edge per new
        // instance per edge it feeds the node through.
        let mut gains: Vec<(NodeId, usize)> = Vec::new();
        for &e in dag.in_edges(node) {
            let src = dag.edge(e).src;
            match gains.iter_mut().find(|(s, _)| *s == src) {
                Some((_, m)) => *m += 1,
                None => gains.push((src, 1)),
            }
        }
        for (src, multiplicity) in gains {
            let kind = &dag.node(src).kind;
            let before = dag.num_uses(src);
            let after = before + multiplicity * new_instances;
            parked += is_parked(kind, after) as isize - is_parked(kind, before) as isize;
        }
    }
    let parked = parked.max(0) as usize;
    if parked > machine.reservoirs {
        return Err(ReplicateError::ResourcesExceeded {
            what: format!(
                "{parked} concurrently stored fluids exceed {} reservoirs",
                machine.reservoirs
            ),
        });
    }
    Ok(())
}

/// Checks the (replicated) DAG against the machine's fluid-path
/// inventory.
///
/// The model is deliberately coarse but static, as in the paper: every
/// input node needs an input port; every fluid that is live across
/// another operation (out-degree >= 2, or a mix feeding a non-adjacent
/// consumer) needs a reservoir.
///
/// # Errors
///
/// Returns [`ReplicateError::ResourcesExceeded`] naming the resource.
pub fn fits_machine(dag: &Dag, machine: &Machine) -> Result<(), ReplicateError> {
    let inputs = dag
        .node_ids()
        .filter(|&n| dag.node(n).kind == NodeKind::Input)
        .count();
    if inputs > machine.input_ports {
        return Err(ReplicateError::ResourcesExceeded {
            what: format!(
                "{inputs} input fluids exceed {} input ports",
                machine.input_ports
            ),
        });
    }
    // Reservoir demand: inputs are staged in reservoirs, and any
    // multi-use intermediate must be parked while its consumers run.
    let parked = dag
        .node_ids()
        .filter(|&n| {
            let node = dag.node(n);
            node.kind == NodeKind::Input || (!node.kind.is_sink() && dag.num_uses(n) >= 2)
        })
        .count();
    if parked > machine.reservoirs {
        return Err(ReplicateError::ResourcesExceeded {
            what: format!(
                "{parked} concurrently stored fluids exceed {} reservoirs",
                machine.reservoirs
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dagsolve;
    use crate::vnorm;

    /// Many uses of one fluid underflow; replication rescues.
    #[test]
    fn replication_raises_minimum_volumes() {
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let stock = d.add_input("stock");
        let other = d.add_input("other");
        // 40 consumers each mixing 1:19 (stock:other): stock Vnorm =
        // 40/20 = 2... make it skewed the other way: stock is 19/20.
        let mut sinks = Vec::new();
        for i in 0..40 {
            let m = d
                .add_mix(format!("mix{i}"), &[(stock, 19), (other, 1)], 0)
                .unwrap();
            sinks.push(d.add_process(format!("sense{i}"), "sense.OD", m));
        }
        let before = dagsolve::solve(&d, &machine).unwrap();
        // stock Vnorm = 40 * 19/20 = 38; other edge = 1/20 each ->
        // 0.05 * 100/38 = 0.13 nl: fine. Tighten: use 400 consumers to
        // force underflow instead. (Keep this test at the boundary:
        // assert that replication strictly improves the minimum.)
        let min_before = before.min_edge.unwrap().1;

        let t = vnorm::compute(&d).unwrap();
        let candidate = bottleneck_candidate(&d, &t).unwrap();
        assert_eq!(candidate, stock);
        replicate_node(&mut d, stock, 2, &machine).unwrap();
        assert!(d.validate().is_ok(), "{:?}", d.validate());
        let after = dagsolve::solve(&d, &machine).unwrap();
        let min_after = after.min_edge.unwrap().1;
        assert!(
            min_after > min_before,
            "replication did not raise the minimum: {min_before} -> {min_after}"
        );
        // The bottleneck halves: each replica serves 20 consumers.
        assert_eq!(
            after.vnorms.max_load(),
            before.vnorms.max_load() / aqua_dag::Ratio::from_int(2)
        );
    }

    #[test]
    fn interior_replication_duplicates_producers() {
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let premix = d.add_mix("premix", &[(a, 1), (b, 1)], 0).unwrap();
        for i in 0..4 {
            let m = d
                .add_mix(format!("use{i}"), &[(premix, 1), (b, 1)], 0)
                .unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let uses_b_before = d.num_uses(b);
        let info = replicate_node(&mut d, premix, 2, &machine).unwrap();
        assert_eq!(info.replicas.len(), 1);
        assert!(d.validate().is_ok());
        // The replica re-mixes A and B: both producers gained one use.
        assert_eq!(d.num_uses(b), uses_b_before + 1);
        assert_eq!(d.num_uses(premix), 2);
        assert_eq!(d.num_uses(info.replicas[0]), 2);
    }

    #[test]
    fn replication_of_single_use_node_is_rejected() {
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_process("p", "incubate", a);
        d.add_process("s", "sense.OD", p);
        assert!(matches!(
            replicate_node(&mut d, a, 2, &machine),
            Err(ReplicateError::TooFewUses { .. })
        ));
    }

    #[test]
    fn resource_limit_fails_compilation() {
        let mut machine = Machine::paper_default();
        machine.input_ports = 2;
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        for i in 0..4 {
            let m = d.add_mix(format!("m{i}"), &[(a, 1), (b, 1)], 0).unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        // Replicating A adds a third input: over the 2-port budget.
        assert!(matches!(
            replicate_node(&mut d, a, 2, &machine),
            Err(ReplicateError::ResourcesExceeded { .. })
        ));
    }

    /// The projected verdict must equal mutate-then-check, error
    /// wording included, across kinds and resource pressures.
    #[test]
    fn projected_verdict_matches_post_mutation_check() {
        let build = |consumers: usize| {
            let mut d = Dag::new();
            let a = d.add_input("A");
            let b = d.add_input("B");
            let premix = d.add_mix("premix", &[(a, 1), (b, 1)], 0).unwrap();
            for i in 0..consumers {
                let m = d
                    .add_mix(format!("use{i}"), &[(premix, 1), (b, 1)], 0)
                    .unwrap();
                d.add_process(format!("s{i}"), "sense.OD", m);
            }
            (d, b, premix)
        };
        let scenarios: Vec<(Dag, NodeId, usize, Machine)> = vec![
            // Interior replication within budget.
            {
                let (d, _, premix) = build(4);
                (d, premix, 2, Machine::paper_default())
            },
            // Interior replication that overflows a tiny reservoir bank:
            // A had one use and gains a second (newly parked).
            {
                let (d, _, premix) = build(4);
                let mut m = Machine::paper_default();
                m.reservoirs = 3;
                (d, premix, 2, m)
            },
            // Input replication that overflows the port budget.
            {
                let (d, b, _) = build(4);
                let mut m = Machine::paper_default();
                m.input_ports = 2;
                (d, b, 3, m)
            },
            // Copies clamped to the use count.
            {
                let (d, _, premix) = build(3);
                (d, premix, 10, Machine::paper_default())
            },
        ];
        for (i, (dag, node, copies, machine)) in scenarios.into_iter().enumerate() {
            let projected = projected_fits(&dag, node, copies, &machine);
            // Oracle: apply the mutation on a resource-unconstrained
            // machine (so replicate_node cannot refuse), then run the
            // real post-mutation check against the constrained one.
            let mut mutated = dag.clone();
            let mut loose = machine.clone();
            loose.reservoirs = usize::MAX;
            loose.input_ports = usize::MAX;
            replicate_node(&mut mutated, node, copies, &loose).unwrap();
            let actual = fits_machine(&mutated, &machine);
            assert_eq!(projected, actual, "scenario {i}");
        }
    }

    #[test]
    fn blocked_replication_leaves_the_dag_untouched() {
        let mut machine = Machine::paper_default();
        machine.input_ports = 2;
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        for i in 0..4 {
            let m = d.add_mix(format!("m{i}"), &[(a, 1), (b, 1)], 0).unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let before = d.clone();
        assert!(matches!(
            replicate_node(&mut d, a, 2, &machine),
            Err(ReplicateError::ResourcesExceeded { .. })
        ));
        assert_eq!(d, before);
    }

    #[test]
    fn copies_are_clamped_to_use_count() {
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        for i in 0..3 {
            let m = d.add_mix(format!("m{i}"), &[(a, 1), (b, 1)], 0).unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let info = replicate_node(&mut d, a, 10, &machine).unwrap();
        // 3 uses -> at most 3 instances (original + 2 replicas).
        assert_eq!(info.replicas.len(), 2);
        assert!(d.validate().is_ok());
    }
}
