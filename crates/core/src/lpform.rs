//! The LP/ILP formulation of volume management (Figure 3, §3.2).
//!
//! Variables are the per-edge transfer volumes plus one load variable
//! per source (input) node, all in *least-count units* so the ILP
//! variant is exactly the paper's IVol. Constraint classes and their
//! counts match the paper's accounting:
//!
//! 1. minimum volume — one `>=` row per edge;
//! 2. maximum capacity — one `<=` row per node;
//! 3. non-deficit — one row per non-sink node (`=` when the DAGSolve
//!    flow-conservation constraint is added);
//! 4. mix ratio — `k-1` equality rows per mix with `k` inputs;
//! 5. relative output-to-input — one row per known-fraction separation;
//! 6. output-to-output — two band rows per output beyond the first
//!    (or one equality row each under DAGSolve's output equalization);
//! 7. excess definition — one equality row per cascading excess edge.
//!
//! The objective maximizes the sum of output volumes.

use std::collections::HashMap;

use aqua_dag::{Dag, EdgeId, NodeId, NodeKind, Ratio};
use aqua_lp::{Model, Sense, VarId};

use crate::machine::Machine;

/// Options controlling the formulation.
#[derive(Debug, Clone)]
pub struct LpOptions {
    /// Half-width of the relative output-to-output band (the paper uses
    /// 10%, i.e. `0.9 N <= M <= 1.1 N`). `None` drops the optional
    /// constraint class entirely.
    pub output_band: Option<f64>,
    /// Add DAGSolve's flow-conservation constraint (non-deficit becomes
    /// equality). Used by the §4.3 "LP with additional constraints"
    /// experiment.
    pub flow_conservation: bool,
    /// Add DAGSolve's output-equalization constraint (all outputs
    /// equal). Replaces the output band.
    pub equalize_outputs: bool,
    /// Mark all variables integer (the ILP / IVol variant).
    pub integer: bool,
    /// Enforce the least-count minimum on every transfer (class 1).
    /// Disabling it reproduces runs where the LP "fails to avoid the
    /// underflow" yet still returns volumes (§4.2's enzyme discussion):
    /// transfers only need to be nonnegative.
    pub min_volume: bool,
}

impl Default for LpOptions {
    fn default() -> LpOptions {
        LpOptions {
            output_band: Some(0.1),
            flow_conservation: false,
            equalize_outputs: false,
            integer: false,
            min_volume: true,
        }
    }
}

impl LpOptions {
    /// The paper's plain RVol LP.
    pub fn rvol() -> LpOptions {
        LpOptions::default()
    }

    /// RVol LP plus DAGSolve's two artificial constraints (§4.3).
    pub fn with_dagsolve_constraints() -> LpOptions {
        LpOptions {
            flow_conservation: true,
            equalize_outputs: true,
            output_band: None,
            ..LpOptions::default()
        }
    }

    /// RVol LP with the least-count floor relaxed to nonnegativity:
    /// always feasible, possibly underflowing (used to reproduce the
    /// paper's "LP also fails to avoid this underflow" observation with
    /// a concrete solution in hand).
    pub fn rvol_relaxed_min() -> LpOptions {
        LpOptions {
            min_volume: false,
            ..LpOptions::default()
        }
    }

    /// The paper's IVol ILP.
    pub fn ivol() -> LpOptions {
        LpOptions {
            integer: true,
            ..LpOptions::default()
        }
    }
}

/// A built LP/ILP model plus the variable maps needed to read solutions
/// back onto the DAG.
#[derive(Debug, Clone)]
pub struct LpFormulation {
    /// The assembled model (least-count units).
    pub model: Model,
    /// Per-edge variable (dead/cut edges have none).
    pub edge_vars: Vec<Option<VarId>>,
    /// Load variable per source node.
    pub source_vars: HashMap<NodeId, VarId>,
    /// Number of constraints as formulated (Table 2's "LP constraints").
    pub num_constraints: usize,
}

/// Builds the formulation for a DAG on a machine.
///
/// Constrained-input availability is not encoded here (that is a
/// run-time quantity); [`crate::unknown`] adds those bounds per
/// partition.
///
/// # Examples
///
/// ```
/// use aqua_dag::Dag;
/// use aqua_volume::{lpform, Machine};
///
/// let mut dag = Dag::new();
/// let a = dag.add_input("A");
/// let b = dag.add_input("B");
/// let m = dag.add_mix("mx", &[(a, 1), (b, 4)], 0)?;
/// dag.add_process("sense", "sense.OD", m);
/// let f = lpform::build(&dag, &Machine::paper_default(), &lpform::LpOptions::rvol());
/// let out = aqua_lp::solve(&f.model);
/// assert!(out.status.is_optimal());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn build(dag: &Dag, machine: &Machine, opts: &LpOptions) -> LpFormulation {
    let span = machine.span().to_f64(); // capacity in least-count units
    let mut model = Model::new(Sense::Maximize);

    // --- Variables ---
    let mut edge_vars: Vec<Option<VarId>> = vec![None; dag.num_edges()];
    for e in dag.edge_ids() {
        if dag.edge_is_live(e) {
            let v = if opts.integer {
                model.add_int_var(format!("e{}", e.index()), 0.0, f64::INFINITY)
            } else {
                model.add_var(format!("e{}", e.index()), 0.0, f64::INFINITY)
            };
            edge_vars[e.index()] = Some(v);
        }
    }
    let mut source_vars = HashMap::new();
    for n in dag.node_ids() {
        if dag.node(n).kind.is_source() {
            let v = if opts.integer {
                model.add_int_var(format!("load_{}", dag.node(n).name), 0.0, f64::INFINITY)
            } else {
                model.add_var(format!("load_{}", dag.node(n).name), 0.0, f64::INFINITY)
            };
            source_vars.insert(n, v);
        }
    }

    let live_in = |n: NodeId| -> Vec<VarId> {
        dag.in_edges(n)
            .iter()
            .filter_map(|&e| edge_vars[e.index()])
            .collect()
    };
    let live_out = |n: NodeId| -> Vec<VarId> {
        dag.out_edges(n)
            .iter()
            .filter_map(|&e| edge_vars[e.index()])
            .collect()
    };

    // --- (1) minimum volume per edge ---
    for e in dag.edge_ids() {
        if let Some(v) = edge_vars[e.index()] {
            let floor = if opts.min_volume { 1.0 } else { 0.0 };
            model.add_ge(format!("min_e{}", e.index()), [(v, 1.0)], floor);
        }
    }

    // --- (2) maximum capacity per node ---
    for n in dag.node_ids() {
        let name = format!("cap_{}", dag.node(n).name);
        if let Some(&lv) = source_vars.get(&n) {
            model.add_le(name, [(lv, 1.0)], span);
        } else {
            let ins = live_in(n);
            if !ins.is_empty() {
                model.add_le(name, ins.iter().map(|&v| (v, 1.0)), span);
            }
        }
    }

    // --- (3) non-deficit / flow conservation per non-sink node ---
    for n in dag.node_ids() {
        let node = dag.node(n);
        let outs = live_out(n);
        if outs.is_empty() {
            continue;
        }
        // Known-fraction separations get class (5) instead.
        if matches!(node.kind, NodeKind::Separate { fraction: Some(_) }) {
            continue;
        }
        let mut terms: Vec<(VarId, f64)> = outs.iter().map(|&v| (v, 1.0)).collect();
        if let Some(&lv) = source_vars.get(&n) {
            terms.push((lv, -1.0));
        } else {
            terms.extend(live_in(n).iter().map(|&v| (v, -1.0)));
        }
        let name = format!("nondeficit_{}", node.name);
        if opts.flow_conservation {
            model.add_eq(name, terms, 0.0);
        } else {
            model.add_le(name, terms, 0.0);
        }
    }

    // --- (4) ratio constraints: k-1 per multi-input node ---
    for n in dag.node_ids() {
        let ins: Vec<EdgeId> = dag
            .in_edges(n)
            .iter()
            .copied()
            .filter(|&e| edge_vars[e.index()].is_some())
            .collect();
        if ins.len() < 2 {
            continue;
        }
        let f0 = dag.edge(ins[0]).fraction.to_f64();
        let v0 = edge_vars[ins[0].index()].expect("live");
        for (i, &e) in ins.iter().enumerate().skip(1) {
            let fi = dag.edge(e).fraction.to_f64();
            let vi = edge_vars[e.index()].expect("live");
            // f0 * e_i - f_i * e_0 = 0
            model.add_eq(
                format!("ratio_{}_{i}", dag.node(n).name),
                [(vi, f0), (v0, -fi)],
                0.0,
            );
        }
    }

    // --- (5) relative output-to-input for known-fraction separations ---
    for n in dag.node_ids() {
        if let NodeKind::Separate { fraction: Some(f) } = &dag.node(n).kind {
            let outs = live_out(n);
            if outs.is_empty() {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = outs.iter().map(|&v| (v, 1.0)).collect();
            terms.extend(live_in(n).iter().map(|&v| (v, -f.to_f64())));
            let name = format!("sep_o2i_{}", dag.node(n).name);
            if opts.flow_conservation {
                model.add_eq(name, terms, 0.0);
            } else {
                model.add_le(name, terms, 0.0);
            }
        }
    }

    // --- (7) excess-edge definition (cascading) ---
    for e in dag.edge_ids() {
        if edge_vars[e.index()].is_none() {
            continue;
        }
        let edge = dag.edge(e);
        if dag.node(edge.dst).kind != NodeKind::Excess {
            continue;
        }
        // excess = share * production, production = sum of in-edges of
        // the producer (or its load variable for sources).
        let share = edge.fraction.to_f64();
        let ev = edge_vars[e.index()].expect("live");
        let mut terms: Vec<(VarId, f64)> = vec![(ev, 1.0)];
        if let Some(&lv) = source_vars.get(&edge.src) {
            terms.push((lv, -share));
        } else {
            terms.extend(live_in(edge.src).iter().map(|&v| (v, -share)));
        }
        model.add_eq(format!("excess_e{}", e.index()), terms, 0.0);
    }

    // --- Outputs: every non-excess sink ---
    let leaves: Vec<NodeId> = dag
        .node_ids()
        .filter(|&n| {
            dag.out_edges(n)
                .iter()
                .all(|&e| edge_vars[e.index()].is_none())
                && dag.node(n).kind != NodeKind::Excess
                && !live_in(n).is_empty()
        })
        .collect();

    // --- (6) output-to-output ---
    if leaves.len() > 1 && (opts.equalize_outputs || opts.output_band.is_some()) {
        let first = leaves[0];
        let first_terms: Vec<(VarId, f64)> = live_in(first).iter().map(|&v| (v, 1.0)).collect();
        for (i, &leaf) in leaves.iter().enumerate().skip(1) {
            let leaf_terms: Vec<(VarId, f64)> = live_in(leaf).iter().map(|&v| (v, 1.0)).collect();
            if opts.equalize_outputs {
                let mut terms = leaf_terms.clone();
                terms.extend(first_terms.iter().map(|&(v, c)| (v, -c)));
                model.add_eq(format!("equal_out_{i}"), terms, 0.0);
            } else if let Some(band) = opts.output_band {
                // (1-band)*first <= leaf <= (1+band)*first
                let mut lo = leaf_terms.clone();
                lo.extend(first_terms.iter().map(|&(v, c)| (v, -c * (1.0 - band))));
                model.add_ge(format!("band_lo_{i}"), lo, 0.0);
                let mut hi = leaf_terms.clone();
                hi.extend(first_terms.iter().map(|&(v, c)| (v, -c * (1.0 + band))));
                model.add_le(format!("band_hi_{i}"), hi, 0.0);
            }
        }
    }

    // --- Objective: maximize total output volume ---
    let mut obj: Vec<(VarId, f64)> = Vec::new();
    for &leaf in &leaves {
        obj.extend(live_in(leaf).iter().map(|&v| (v, 1.0)));
    }
    model.set_objective(obj);

    let num_constraints = model.num_constraints();
    LpFormulation {
        model,
        edge_vars,
        source_vars,
        num_constraints,
    }
}

/// Volumes recovered from an LP/ILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpVolumes {
    /// Transfer volume per edge in nl (exact least-count multiples after
    /// [`LpVolumes::rounded`]; raw LP values here).
    pub edge_nl: Vec<f64>,
    /// Production per node in nl (sum of in-edges, separation fractions
    /// applied; source nodes report their load variable).
    pub node_nl: Vec<f64>,
    /// The smallest live productive transfer.
    pub min_edge_nl: Option<(EdgeId, f64)>,
}

impl LpFormulation {
    /// Maps an LP solution's variable values back to per-edge/-node
    /// volumes in nanoliters.
    pub fn volumes(&self, dag: &Dag, machine: &Machine, sol: &aqua_lp::Solution) -> LpVolumes {
        let lc = machine.least_count_nl().to_f64();
        let mut edge_nl = vec![0.0; dag.num_edges()];
        for e in dag.edge_ids() {
            if let Some(v) = self.edge_vars[e.index()] {
                edge_nl[e.index()] = sol.value(v) * lc;
            }
        }
        let mut node_nl = vec![0.0; dag.num_nodes()];
        for n in dag.node_ids() {
            node_nl[n.index()] = if let Some(&lv) = self.source_vars.get(&n) {
                sol.value(lv) * lc
            } else {
                let in_sum: f64 = dag.in_edges(n).iter().map(|&e| edge_nl[e.index()]).sum();
                match &dag.node(n).kind {
                    NodeKind::Separate { fraction: Some(f) } => in_sum * f.to_f64(),
                    _ => in_sum,
                }
            };
        }
        let mut min_edge = None;
        for e in dag.edge_ids() {
            if self.edge_vars[e.index()].is_none() {
                continue;
            }
            if dag.node(dag.edge(e).dst).kind == NodeKind::Excess {
                continue;
            }
            let v = edge_nl[e.index()];
            if min_edge.is_none_or(|(_, m)| v < m) {
                min_edge = Some((e, v));
            }
        }
        LpVolumes {
            edge_nl,
            node_nl,
            min_edge_nl: min_edge,
        }
    }
}

impl LpVolumes {
    /// Rounds every edge volume to the nearest least-count multiple,
    /// returning exact rationals (the RVol -> IVol step for the LP path).
    pub fn rounded(&self, machine: &Machine) -> Vec<Ratio> {
        let lc = machine.least_count_nl();
        self.edge_nl
            .iter()
            .map(|&v| {
                let counts = (v / lc.to_f64()).round() as i128;
                Ratio::from_int(counts.max(0)) * lc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_lp::{solve, Status};

    fn figure2() -> Dag {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
        let l = d.add_mix("L", &[(b, 2), (c, 1)], 0).unwrap();
        d.add_mix("M", &[(k, 2), (l, 1)], 0).unwrap();
        d.add_mix("N", &[(l, 2), (c, 3)], 0).unwrap();
        d
    }

    #[test]
    fn figure2_constraint_count_matches_paper() {
        // Figure 3 lists: 8 min + 7 cap + 5 non-deficit + 4 ratio +
        // 2 output-to-output = 26 constraints.
        let d = figure2();
        let f = build(&d, &Machine::paper_default(), &LpOptions::rvol());
        assert_eq!(f.num_constraints, 26);
    }

    #[test]
    fn figure2_lp_is_feasible_and_respects_all_constraints() {
        let d = figure2();
        let machine = Machine::paper_default();
        let f = build(&d, &machine, &LpOptions::rvol());
        let out = solve(&f.model);
        let sol = match &out.status {
            Status::Optimal(s) => s.clone(),
            other => panic!("LP not optimal: {other:?}"),
        };
        assert!(sol.is_feasible_for(&f.model, 1e-5));
        let vols = f.volumes(&d, &machine, &sol);
        // Every transfer at least the least count.
        let (_, min) = vols.min_edge_nl.unwrap();
        assert!(min >= 0.1 - 1e-9, "min edge {min}");
        // No node exceeds capacity.
        for n in d.node_ids() {
            let in_sum: f64 = d.in_edges(n).iter().map(|&e| vols.edge_nl[e.index()]).sum();
            assert!(in_sum <= 100.0 + 1e-6);
        }
    }

    #[test]
    fn lp_beats_or_matches_dagsolve_total_output() {
        // DAGSolve over-constrains, so LP's total output is >= DAGSolve's.
        let d = figure2();
        let machine = Machine::paper_default();
        let f = build(&d, &machine, &LpOptions::rvol());
        let lp_total = match solve(&f.model).status {
            Status::Optimal(s) => s.objective * machine.least_count_nl().to_f64(),
            other => panic!("{other:?}"),
        };
        let ds = crate::dagsolve::solve(&d, &machine).unwrap();
        let ds_total: f64 = d
            .node_ids()
            .filter(|&n| d.out_edges(n).is_empty())
            .map(|n| ds.node_nl(n).to_f64())
            .sum();
        assert!(
            lp_total >= ds_total - 1e-6,
            "lp {lp_total} < dagsolve {ds_total}"
        );
    }

    #[test]
    fn dagsolve_constraints_shrink_the_feasible_set() {
        let d = figure2();
        let machine = Machine::paper_default();
        let plain = build(&d, &machine, &LpOptions::rvol());
        let constrained = build(&d, &machine, &LpOptions::with_dagsolve_constraints());
        let o1 = match solve(&plain.model).status {
            Status::Optimal(s) => s.objective,
            other => panic!("{other:?}"),
        };
        let o2 = match solve(&constrained.model).status {
            Status::Optimal(s) => s.objective,
            other => panic!("{other:?}"),
        };
        assert!(o2 <= o1 + 1e-6);
    }

    #[test]
    fn extreme_ratio_lp_is_infeasible() {
        // 1:1999 cannot satisfy min-volume + capacity on a 1000x span.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        let f = build(&d, &Machine::paper_default(), &LpOptions::rvol());
        assert!(matches!(solve(&f.model).status, Status::Infeasible));
    }

    #[test]
    fn separation_fraction_constraint_holds() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let s = d.add_separate("sep", a, Some(Ratio::new(1, 4).unwrap()));
        d.add_process("sink", "sense.OD", s);
        let machine = Machine::paper_default();
        let f = build(&d, &machine, &LpOptions::rvol());
        let sol = match solve(&f.model).status {
            Status::Optimal(s) => s,
            other => panic!("{other:?}"),
        };
        let vols = f.volumes(&d, &machine, &sol);
        let in_e = d.in_edges(s)[0];
        let out_e = d.out_edges(s)[0];
        assert!(vols.edge_nl[out_e.index()] <= 0.25 * vols.edge_nl[in_e.index()] + 1e-6);
    }

    #[test]
    fn ilp_variant_returns_integer_least_counts() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        d.add_mix("mx", &[(a, 1), (b, 2)], 0).unwrap();
        let machine = Machine::paper_default();
        let f = build(&d, &machine, &LpOptions::ivol());
        let out = aqua_lp::solve_ilp(&f.model, &aqua_lp::IlpConfig::default());
        let sol = match out.status {
            aqua_lp::IlpStatus::Optimal(s) => s,
            other => panic!("{other:?}"),
        };
        for (i, v) in sol.values.iter().enumerate() {
            assert!(
                (v - v.round()).abs() < 1e-6,
                "var {i} = {v} is not integral"
            );
        }
    }

    #[test]
    fn rounded_volumes_are_least_count_multiples() {
        let d = figure2();
        let machine = Machine::paper_default();
        let f = build(&d, &machine, &LpOptions::rvol());
        let sol = match solve(&f.model).status {
            Status::Optimal(s) => s,
            other => panic!("{other:?}"),
        };
        let vols = f.volumes(&d, &machine, &sol);
        for v in vols.rounded(&machine) {
            assert!(machine.is_least_count_multiple(v));
        }
    }
}
