//! DAGSolve: the paper's linear-time volume-assignment algorithm
//! (Figure 4), combining the backward [`crate::vnorm`] pass with the
//! forward dispensing pass that applies the hardware constraints.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aqua_dag::{Dag, EdgeId, NodeId, NodeKind, Ratio};

use crate::machine::Machine;
use crate::vnorm::{self, VnormError, VnormTable};

/// A complete relative+absolute volume assignment for an assay DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct VolumeAssignment {
    /// The relative volumes from the backward pass.
    pub vnorms: VnormTable,
    /// Nanoliters per Vnorm unit chosen by the dispensing pass.
    pub scale_nl: Ratio,
    /// Absolute output volume per node, in nl.
    pub node_volumes_nl: Vec<Ratio>,
    /// Absolute transfer volume per edge, in nl (zero for cut edges).
    pub edge_volumes_nl: Vec<Ratio>,
    /// The smallest live-edge transfer, if any edges exist.
    pub min_edge: Option<(EdgeId, Ratio)>,
    /// Present iff the assignment underflows (some transfer below the
    /// least count). DAGSolve *failing* is represented this way rather
    /// than as an error: the hierarchy inspects it and falls back to LP.
    pub underflow: Option<Underflow>,
}

/// Description of an underflowing transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Underflow {
    /// The underflowing edge.
    pub edge: EdgeId,
    /// Its assigned volume in nl.
    pub volume_nl: Ratio,
    /// The machine least count it fails to reach, in nl.
    pub least_count_nl: Ratio,
}

impl fmt::Display for Underflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transfer of {} nl on edge {} is below the least count of {} nl",
            self.volume_nl, self.edge, self.least_count_nl
        )
    }
}

/// Error from DAGSolve (structural problems; underflow is *not* an
/// error, see [`VolumeAssignment::underflow`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DagSolveError {
    /// The backward pass failed.
    Vnorm(VnormError),
    /// The DAG demands zero volume everywhere (no dispensing possible).
    ZeroDemand,
}

impl fmt::Display for DagSolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagSolveError::Vnorm(e) => write!(f, "{e}"),
            DagSolveError::ZeroDemand => write!(f, "assay demands zero volume everywhere"),
        }
    }
}

impl Error for DagSolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DagSolveError::Vnorm(e) => Some(e),
            DagSolveError::ZeroDemand => None,
        }
    }
}

impl From<VnormError> for DagSolveError {
    fn from(e: VnormError) -> DagSolveError {
        DagSolveError::Vnorm(e)
    }
}

/// Runs DAGSolve with equal output volumes (the paper's default).
///
/// # Errors
///
/// Returns [`DagSolveError`] on structural problems; an *underflowing*
/// but structurally sound assignment is returned as `Ok` with
/// [`VolumeAssignment::underflow`] set.
///
/// # Examples
///
/// See the crate-level example.
pub fn solve(dag: &Dag, machine: &Machine) -> Result<VolumeAssignment, DagSolveError> {
    solve_weighted(dag, machine, &HashMap::new())
}

/// Runs DAGSolve with explicit relative output weights (`Va:Vb:Vc` in
/// the paper's terms).
///
/// # Errors
///
/// See [`solve`].
pub fn solve_weighted(
    dag: &Dag,
    machine: &Machine,
    weights: &HashMap<NodeId, Ratio>,
) -> Result<VolumeAssignment, DagSolveError> {
    let vnorms = vnorm::compute_weighted(dag, weights)?;
    // Fig. 4, lines 8-11: give the most loaded node the machine maximum.
    let max_load = vnorms.max_load();
    if !max_load.is_positive() {
        return Err(DagSolveError::ZeroDemand);
    }
    let scale = machine.max_capacity_nl() / max_load;
    Ok(dispense(dag, machine, vnorms, scale))
}

/// Runs DAGSolve in the *minimum-output* mode of §3.5 (independent
/// loops): instead of maximizing against capacity, the listed output
/// nodes must produce at least the given absolute volumes; everything
/// is scaled so the most demanding requirement is met exactly.
///
/// The scale is still capped by machine capacity; if a requirement is
/// unreachable within capacity the result will show the shortfall via
/// `node_volumes_nl` (callers compare against their requirement).
///
/// # Errors
///
/// See [`solve`].
pub fn solve_min_outputs(
    dag: &Dag,
    machine: &Machine,
    min_outputs_nl: &HashMap<NodeId, Ratio>,
) -> Result<VolumeAssignment, DagSolveError> {
    let vnorms = vnorm::compute(dag)?;
    let max_load = vnorms.max_load();
    if !max_load.is_positive() {
        return Err(DagSolveError::ZeroDemand);
    }
    // Scale that meets every minimum...
    let mut scale = Ratio::ZERO;
    for (&node, &min_nl) in min_outputs_nl {
        let v = vnorms.node[node.index()];
        if v.is_positive() {
            scale = scale.max(min_nl / v);
        }
    }
    if !scale.is_positive() {
        return Err(DagSolveError::ZeroDemand);
    }
    // ...but never exceeding capacity at the most loaded node.
    let cap_scale = machine.max_capacity_nl() / max_load;
    let scale = scale.min(cap_scale);
    Ok(dispense(dag, machine, vnorms, scale))
}

/// Runs DAGSolve with per-node production caps (in nl): the scale is
/// the capacity scale further reduced so no listed node produces more
/// than its cap. This is the run-time re-entry of Fig. 6 — after a
/// fault, the *observed* availability of already-produced fluids
/// becomes a hard cap and the rest of the assay is re-dispensed
/// proportionally (§3.5's philosophy of solving with measured volumes
/// as constraints).
///
/// # Errors
///
/// See [`solve`].
pub fn solve_capped(
    dag: &Dag,
    machine: &Machine,
    weights: &HashMap<NodeId, Ratio>,
    caps_nl: &HashMap<NodeId, Ratio>,
) -> Result<VolumeAssignment, DagSolveError> {
    let vnorms = vnorm::compute_weighted(dag, weights)?;
    let max_load = vnorms.max_load();
    if !max_load.is_positive() {
        return Err(DagSolveError::ZeroDemand);
    }
    let mut scale = machine.max_capacity_nl() / max_load;
    for (&node, &cap_nl) in caps_nl {
        let v = vnorms.node[node.index()];
        if v.is_positive() {
            scale = scale.min(cap_nl.max(Ratio::ZERO) / v);
        }
    }
    Ok(dispense(dag, machine, vnorms, scale))
}

/// The forward dispensing pass: multiply every Vnorm by `scale_nl` and
/// check the least count.
pub(crate) fn dispense(
    dag: &Dag,
    machine: &Machine,
    vnorms: VnormTable,
    scale_nl: Ratio,
) -> VolumeAssignment {
    let node_volumes_nl: Vec<Ratio> = vnorms.node.iter().map(|&v| v * scale_nl).collect();
    let edge_volumes_nl: Vec<Ratio> = vnorms.edge.iter().map(|&v| v * scale_nl).collect();
    let mut min_edge: Option<(EdgeId, Ratio)> = None;
    for e in dag.edge_ids() {
        if !dag.edge_is_live(e) {
            continue;
        }
        // Transfers into excess nodes are discards of surplus fluid; the
        // paper meters only productive transfers, so the minimum-volume
        // check skips them (they are large by construction anyway).
        if dag.node(dag.edge(e).dst).kind == NodeKind::Excess {
            continue;
        }
        let v = edge_volumes_nl[e.index()];
        if min_edge.is_none_or(|(_, m)| v < m) {
            min_edge = Some((e, v));
        }
    }
    let underflow = min_edge.and_then(|(e, v)| {
        (v < machine.least_count_nl()).then(|| Underflow {
            edge: e,
            volume_nl: v,
            least_count_nl: machine.least_count_nl(),
        })
    });
    VolumeAssignment {
        vnorms,
        scale_nl,
        node_volumes_nl,
        edge_volumes_nl,
        min_edge,
        underflow,
    }
}

impl VolumeAssignment {
    /// Re-runs the forward dispensing pass at `factor` times this
    /// assignment's scale, keeping the Vnorms. Used by the run-time
    /// recovery engine to shrink a partition's plan to what a faulty
    /// dispenser actually delivered (all ratios preserved exactly).
    pub fn rescaled(&self, dag: &Dag, machine: &Machine, factor: Ratio) -> VolumeAssignment {
        dispense(dag, machine, self.vnorms.clone(), self.scale_nl * factor)
    }

    /// Absolute volume of one node's output, in nl.
    ///
    /// # Panics
    ///
    /// Panics if `node` is stale.
    pub fn node_nl(&self, node: NodeId) -> Ratio {
        self.node_volumes_nl[node.index()]
    }

    /// Absolute volume transferred along one edge, in nl.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is stale.
    pub fn edge_nl(&self, edge: EdgeId) -> Ratio {
        self.edge_volumes_nl[edge.index()]
    }

    /// Audits the paper's four requirements against this assignment:
    /// ratios (by construction), least count, capacity, and non-deficit.
    /// Returns human-readable violations (empty = clean).
    pub fn audit(&self, dag: &Dag, machine: &Machine) -> Vec<String> {
        let mut problems = Vec::new();
        for id in dag.node_ids() {
            let in_sum = Ratio::checked_sum(
                dag.in_edges(id)
                    .iter()
                    .map(|&e| self.edge_volumes_nl[e.index()]),
            )
            .unwrap_or(Ratio::ZERO);
            let load = in_sum.max(self.node_volumes_nl[id.index()]);
            if load > machine.max_capacity_nl() {
                problems.push(format!(
                    "capacity exceeded at `{}`: {} nl > {} nl",
                    dag.node(id).name,
                    load,
                    machine.max_capacity_nl()
                ));
            }
            // Non-deficit: out-flow cannot exceed production.
            let out_sum = Ratio::checked_sum(
                dag.out_edges(id)
                    .iter()
                    .map(|&e| self.edge_volumes_nl[e.index()]),
            )
            .unwrap_or(Ratio::ZERO);
            let produced = self.node_volumes_nl[id.index()];
            if out_sum > produced {
                problems.push(format!(
                    "deficit at `{}`: uses {} nl but produces {} nl",
                    dag.node(id).name,
                    out_sum,
                    produced
                ));
            }
        }
        if let Some(u) = &self.underflow {
            problems.push(u.to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    fn figure2() -> (Dag, [NodeId; 9]) {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
        let l = d.add_mix("L", &[(b, 2), (c, 1)], 0).unwrap();
        let m = d.add_mix("M", &[(k, 2), (l, 1)], 0).unwrap();
        let n = d.add_mix("N", &[(l, 2), (c, 3)], 0).unwrap();
        let om = d.add_output("M_out", m);
        let on = d.add_output("N_out", n);
        (d, [a, b, c, k, l, m, n, om, on])
    }

    /// Figure 5(b): B (the max Vnorm, 46/45) gets the 100 nl default;
    /// every other volume is its Vnorm share of that.
    #[test]
    fn figure5_dispensed_volumes() {
        let (d, [a, b, c, k, l, m, n, _, _]) = figure2();
        let machine = Machine::paper_default();
        let sol = solve(&d, &machine).unwrap();
        assert_eq!(sol.node_nl(b), Ratio::from_int(100));
        // scale = 100 / (46/45) = 4500/46 = 2250/23.
        assert_eq!(sol.scale_nl, r(2250, 23));
        // Paper's rounded figures: A=13, K=65, L=72(?), M=98, N=98, C=77.
        // Exact values:
        assert_eq!(sol.node_nl(a), r(2, 15) * r(2250, 23)); // 300/23 ~ 13.0
        assert_eq!(sol.node_nl(k), r(2, 3) * r(2250, 23)); // 1500/23 ~ 65.2
        assert_eq!(sol.node_nl(l), r(11, 15) * r(2250, 23)); // ~71.7
        assert_eq!(sol.node_nl(m), r(2250, 23)); // ~97.8
        assert_eq!(sol.node_nl(n), r(2250, 23));
        assert_eq!(sol.node_nl(c), r(38, 45) * r(2250, 23)); // ~82.6
        assert!(sol.underflow.is_none());
        assert!(sol.audit(&d, &machine).is_empty());
    }

    #[test]
    fn min_edge_is_reported() {
        let (d, [a, ..]) = figure2();
        let machine = Machine::paper_default();
        let sol = solve(&d, &machine).unwrap();
        let (edge, vol) = sol.min_edge.unwrap();
        // The smallest transfer is A -> K (Vnorm 2/15).
        assert_eq!(d.edge(edge).src, a);
        assert_eq!(vol, r(2, 15) * r(2250, 23));
    }

    #[test]
    fn extreme_ratio_underflows() {
        // 1:1999 exceeds the 1000x span: the small side must underflow.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_output("o", m);
        let sol = solve(&d, &Machine::paper_default()).unwrap();
        let u = sol.underflow.expect("must underflow");
        assert_eq!(d.edge(u.edge).src, a);
        assert!(u.volume_nl < r(1, 10));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let (d, _) = figure2();
        let machine = Machine::paper_default();
        let sol = solve(&d, &machine).unwrap();
        for id in d.node_ids() {
            assert!(sol.vnorms.load[id.index()] * sol.scale_nl <= machine.max_capacity_nl());
        }
    }

    #[test]
    fn weighted_solve_prefers_heavy_output() {
        let (d, [.., m_out, n_out]) = figure2();
        let machine = Machine::paper_default();
        let mut w = HashMap::new();
        w.insert(m_out, Ratio::from_int(9));
        w.insert(n_out, Ratio::ONE);
        let sol = solve_weighted(&d, &machine, &w).unwrap();
        assert_eq!(sol.node_nl(m_out) / sol.node_nl(n_out), Ratio::from_int(9));
    }

    #[test]
    fn min_outputs_mode_meets_requirement_within_capacity() {
        let (d, [.., m_out, _]) = figure2();
        let machine = Machine::paper_default();
        let mut req = HashMap::new();
        req.insert(m_out, Ratio::from_int(10));
        let sol = solve_min_outputs(&d, &machine, &req).unwrap();
        assert_eq!(sol.node_nl(m_out), Ratio::from_int(10));
        assert!(sol.audit(&d, &machine).is_empty());
    }

    #[test]
    fn min_outputs_mode_is_capacity_capped() {
        let (d, [.., m_out, _]) = figure2();
        let machine = Machine::paper_default();
        let mut req = HashMap::new();
        req.insert(m_out, Ratio::from_int(1_000_000));
        let sol = solve_min_outputs(&d, &machine, &req).unwrap();
        // Capped at the capacity scale: B gets exactly 100 nl.
        assert!(sol.node_nl(m_out) < Ratio::from_int(1_000_000));
        assert!(sol.audit(&d, &machine).is_empty());
    }

    #[test]
    fn capped_solve_respects_observed_availability() {
        let (d, [a, b, ..]) = figure2();
        let machine = Machine::paper_default();
        let free = solve(&d, &machine).unwrap();
        // Cap B (the most loaded node) at half what the free solve gave
        // it: the whole assignment shrinks by exactly that factor.
        let mut caps = HashMap::new();
        caps.insert(b, free.node_nl(b) / Ratio::from_int(2));
        let capped = solve_capped(&d, &machine, &HashMap::new(), &caps).unwrap();
        assert_eq!(capped.scale_nl, free.scale_nl / Ratio::from_int(2));
        assert_eq!(capped.node_nl(a), free.node_nl(a) / Ratio::from_int(2));
        // Caps above the free solution change nothing.
        let mut loose = HashMap::new();
        loose.insert(b, Ratio::from_int(1_000_000));
        let same = solve_capped(&d, &machine, &HashMap::new(), &loose).unwrap();
        assert_eq!(same.scale_nl, free.scale_nl);
    }

    #[test]
    fn rescaled_preserves_ratios() {
        let (d, [a, b, ..]) = figure2();
        let machine = Machine::paper_default();
        let sol = solve(&d, &machine).unwrap();
        let half = sol.rescaled(&d, &machine, r(1, 2));
        assert_eq!(half.scale_nl, sol.scale_nl / Ratio::from_int(2));
        assert_eq!(
            half.node_nl(a) / half.node_nl(b),
            sol.node_nl(a) / sol.node_nl(b)
        );
    }

    #[test]
    fn separation_capacity_binds_on_input() {
        // Input -> separate(1/10) -> output: the separator's input load
        // is 10x its output, so the input edge gets the full 100 nl.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let s = d.add_separate("sep", a, Some(r(1, 10)));
        d.add_output("o", s);
        let machine = Machine::paper_default();
        let sol = solve(&d, &machine).unwrap();
        let in_edge = d.in_edges(s)[0];
        assert_eq!(sol.edge_nl(in_edge), Ratio::from_int(100));
        assert_eq!(sol.node_nl(s), Ratio::from_int(10));
        assert!(sol.audit(&d, &machine).is_empty());
    }
}
