//! The backward `Vnorm` pass of DAGSolve (Figure 4, lines 2–7).
//!
//! A node's *Vnorm* is its output volume relative to the assay's final
//! outputs (which are pinned to Vnorm 1, or to caller-provided weights).
//! An edge's Vnorm is the relative volume of the fluid transferred along
//! it. The pass walks the DAG in reverse topological order, applying:
//!
//! * flow conservation — a node produces exactly the sum of its uses
//!   (DAGSolve's second artificial constraint);
//! * ratio constraints — each in-edge takes its fraction of the node's
//!   total input;
//! * output-to-input relations — a separation's input is `output /
//!   fraction`;
//! * excess handling — cascading's discard edges take a fixed share of
//!   the *producer's* output, so `V = useful / (1 - discard_share)`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aqua_dag::{Dag, DagError, NodeId, NodeKind, Ratio};
use aqua_rational::RatioError;

/// Per-node and per-edge relative volumes computed by the backward pass.
#[derive(Debug, Clone, PartialEq)]
pub struct VnormTable {
    /// Output-volume Vnorm per node, indexed by [`NodeId::index`].
    pub node: Vec<Ratio>,
    /// Volume Vnorm per edge, indexed by [`aqua_dag::EdgeId::index`].
    /// Cut edges hold zero.
    pub edge: Vec<Ratio>,
    /// Input-side load per node (`max(output, sum of in-edges)`), the
    /// quantity bounded by the hardware capacity.
    pub load: Vec<Ratio>,
}

impl VnormTable {
    /// The largest load Vnorm across the DAG — the paper's `Max_Vnorm`
    /// used by the dispensing pass.
    pub fn max_load(&self) -> Ratio {
        self.load
            .iter()
            .copied()
            .fold(Ratio::ZERO, |acc, v| acc.max(v))
    }
}

/// Error from the Vnorm pass.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VnormError {
    /// The DAG failed structural validation.
    Dag(DagError),
    /// A node with statically-unknown output volume still has consumers;
    /// partition the DAG first (see [`crate::unknown`]).
    UnknownVolumeInterior {
        /// The offending node's name.
        node: String,
    },
    /// A node discards 100% or more of its output to excess.
    ExcessShareTooLarge {
        /// The offending node's name.
        node: String,
    },
    /// The DAG has no output (leaf) node to normalize against.
    NoOutputs,
    /// Exact arithmetic overflowed (absurdly deep or skewed DAG).
    Arithmetic(RatioError),
}

impl fmt::Display for VnormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VnormError::Dag(e) => write!(f, "invalid assay DAG: {e}"),
            VnormError::UnknownVolumeInterior { node } => write!(
                f,
                "node `{node}` has a statically-unknown output volume but still has consumers; \
                 apply unknown-volume partitioning first"
            ),
            VnormError::ExcessShareTooLarge { node } => {
                write!(f, "node `{node}` discards its entire output to excess")
            }
            VnormError::NoOutputs => write!(f, "assay DAG has no output node"),
            VnormError::Arithmetic(e) => write!(f, "vnorm arithmetic failed: {e}"),
        }
    }
}

impl Error for VnormError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VnormError::Dag(e) => Some(e),
            VnormError::Arithmetic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DagError> for VnormError {
    fn from(e: DagError) -> VnormError {
        VnormError::Dag(e)
    }
}

impl From<RatioError> for VnormError {
    fn from(e: RatioError) -> VnormError {
        VnormError::Arithmetic(e)
    }
}

/// Computes the Vnorm table with every leaf weighted 1 (the paper's
/// default of equal output volumes).
///
/// # Errors
///
/// See [`VnormError`].
pub fn compute(dag: &Dag) -> Result<VnormTable, VnormError> {
    compute_weighted(dag, &HashMap::new())
}

/// Computes the Vnorm table with explicit leaf weights.
///
/// Any sink node (a node without live out-edges) that is not an
/// [`NodeKind::Excess`] node counts as a leaf: final outputs, and —
/// after partitioning — unknown-volume separations whose consumers were
/// cut. Leaves absent from `weights` default to 1; weights must be
/// positive.
///
/// # Errors
///
/// See [`VnormError`].
pub fn compute_weighted(
    dag: &Dag,
    weights: &HashMap<NodeId, Ratio>,
) -> Result<VnormTable, VnormError> {
    dag.validate()?;
    let order = dag.topological_order()?;
    let mut node_v = vec![Ratio::ZERO; dag.num_nodes()];
    let mut edge_v = vec![Ratio::ZERO; dag.num_edges()];

    let mut leaves = 0usize;
    for &id in order.iter().rev() {
        let node = dag.node(id);
        if node.kind == NodeKind::Excess {
            continue; // assigned by its producer, below
        }
        let outs = dag.out_edges(id);
        if outs.is_empty() {
            if node.kind.is_source() {
                // An input nobody uses: load nothing.
                node_v[id.index()] = Ratio::ZERO;
                continue;
            }
            // Leaf: pinned by weight (default 1).
            node_v[id.index()] = weights.get(&id).copied().unwrap_or(Ratio::ONE);
            leaves += 1;
        } else {
            // Fig. 4, line 5 — plus the excess refinement of §3.4.1.
            let mut useful = Ratio::ZERO;
            let mut discard_share = Ratio::ZERO;
            for &e in outs {
                let edge = dag.edge(e);
                if dag.node(edge.dst).kind == NodeKind::Excess {
                    discard_share = discard_share.checked_add(edge.fraction)?;
                } else {
                    useful = useful.checked_add(edge_v[e.index()])?;
                }
            }
            if discard_share >= Ratio::ONE {
                return Err(VnormError::ExcessShareTooLarge {
                    node: node.name.clone(),
                });
            }
            let total = useful.checked_div(Ratio::ONE.checked_sub(discard_share)?)?;
            node_v[id.index()] = total;
            for &e in outs {
                let edge = dag.edge(e);
                if dag.node(edge.dst).kind == NodeKind::Excess {
                    let v = edge.fraction.checked_mul(total)?;
                    edge_v[e.index()] = v;
                    node_v[edge.dst.index()] = v;
                }
            }
        }
        // Fig. 4, line 7: propagate demand to in-edges, adjusted for the
        // node's output-to-input relation.
        let demand = match &node.kind {
            NodeKind::Separate { fraction: Some(f) } => node_v[id.index()].checked_div(*f)?,
            NodeKind::Separate { fraction: None } => {
                if !outs.is_empty() {
                    return Err(VnormError::UnknownVolumeInterior {
                        node: node.name.clone(),
                    });
                }
                // As a partition sink, the unknown node's *input* is what
                // gets normalized; demand equals its pinned Vnorm.
                node_v[id.index()]
            }
            _ => node_v[id.index()],
        };
        for &e in dag.in_edges(id) {
            edge_v[e.index()] = dag.edge(e).fraction.checked_mul(demand)?;
        }
    }
    if leaves == 0 {
        return Err(VnormError::NoOutputs);
    }

    // Loads: what capacity must hold at each node.
    let mut load = vec![Ratio::ZERO; dag.num_nodes()];
    for id in dag.node_ids() {
        let in_sum = Ratio::checked_sum(dag.in_edges(id).iter().map(|&e| edge_v[e.index()]))?;
        load[id.index()] = in_sum.max(node_v[id.index()]);
    }

    Ok(VnormTable {
        node: node_v,
        edge: edge_v,
        load,
    })
}

/// Recomputes the table entries for `nodes` (which must be given in
/// reverse topological order and must contain every node whose own
/// Vnorm could have changed — for a ratio or output-weight edit, the
/// backward slice of the edited node). Entries outside `nodes` are
/// reused; the loads of the touched nodes and of their excess
/// consumers are refreshed.
///
/// This is the incremental replanner's workhorse: on a dirty slice of
/// `k` nodes it does `O(k + adjacent edges)` exact-rational work
/// instead of re-walking the whole DAG.
///
/// # Errors
///
/// Same conditions as [`compute_weighted`] (excluding validation,
/// which the caller already holds); on error the table is partially
/// updated and must be discarded.
pub fn recompute_weighted(
    table: &mut VnormTable,
    dag: &Dag,
    weights: &HashMap<NodeId, Ratio>,
    nodes: &[NodeId],
) -> Result<(), VnormError> {
    let node_v = &mut table.node;
    let edge_v = &mut table.edge;
    for &id in nodes {
        let node = dag.node(id);
        if node.kind == NodeKind::Excess {
            continue; // assigned by its producer
        }
        let outs = dag.out_edges(id);
        if outs.is_empty() {
            if node.kind.is_source() {
                node_v[id.index()] = Ratio::ZERO;
                continue;
            }
            node_v[id.index()] = weights.get(&id).copied().unwrap_or(Ratio::ONE);
        } else {
            let mut useful = Ratio::ZERO;
            let mut discard_share = Ratio::ZERO;
            for &e in outs {
                let edge = dag.edge(e);
                if dag.node(edge.dst).kind == NodeKind::Excess {
                    discard_share = discard_share.checked_add(edge.fraction)?;
                } else {
                    useful = useful.checked_add(edge_v[e.index()])?;
                }
            }
            if discard_share >= Ratio::ONE {
                return Err(VnormError::ExcessShareTooLarge {
                    node: node.name.clone(),
                });
            }
            let total = useful.checked_div(Ratio::ONE.checked_sub(discard_share)?)?;
            node_v[id.index()] = total;
            for &e in outs {
                let edge = dag.edge(e);
                if dag.node(edge.dst).kind == NodeKind::Excess {
                    let v = edge.fraction.checked_mul(total)?;
                    edge_v[e.index()] = v;
                    node_v[edge.dst.index()] = v;
                }
            }
        }
        let demand = match &node.kind {
            NodeKind::Separate { fraction: Some(f) } => node_v[id.index()].checked_div(*f)?,
            NodeKind::Separate { fraction: None } => {
                if !outs.is_empty() {
                    return Err(VnormError::UnknownVolumeInterior {
                        node: node.name.clone(),
                    });
                }
                node_v[id.index()]
            }
            _ => node_v[id.index()],
        };
        for &e in dag.in_edges(id) {
            edge_v[e.index()] = dag.edge(e).fraction.checked_mul(demand)?;
        }
    }
    // Refresh the loads of everything whose node or in-edge values the
    // pass above could have touched: the slice itself, plus the excess
    // consumers of slice nodes (their Vnorm is producer-assigned).
    let mut affected: Vec<NodeId> = Vec::with_capacity(nodes.len());
    for &id in nodes {
        affected.push(id);
        for &e in dag.out_edges(id) {
            let dst = dag.edge(e).dst;
            if dag.node(dst).kind == NodeKind::Excess {
                affected.push(dst);
            }
        }
    }
    for t in affected {
        let in_sum = Ratio::checked_sum(dag.in_edges(t).iter().map(|&e| table.edge[e.index()]))?;
        table.load[t.index()] = in_sum.max(table.node[t.index()]);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    /// Figure 2 / Figure 5(a): the paper's worked Vnorm numbers.
    #[test]
    fn figure5_vnorms_are_exact() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
        let l = d.add_mix("L", &[(b, 2), (c, 1)], 0).unwrap();
        let m = d.add_mix("M", &[(k, 2), (l, 1)], 0).unwrap();
        let n = d.add_mix("N", &[(l, 2), (c, 3)], 0).unwrap();
        d.add_output("M_out", m);
        d.add_output("N_out", n);
        let t = compute(&d).unwrap();

        // Outputs pinned to 1; M and N conserve flow.
        assert_eq!(t.node[m.index()], Ratio::ONE);
        assert_eq!(t.node[n.index()], Ratio::ONE);
        // L feeds 1/3 of M and 2/5 of N: Vnorm = 1/3 + 2/5 = 11/15.
        assert_eq!(t.node[l.index()], r(11, 15));
        // K feeds 2/3 of M.
        assert_eq!(t.node[k.index()], r(2, 3));
        // Edge B->L = 2/3 * 11/15 = 22/45; C->L = 11/45 (paper's example).
        let b_l = d
            .in_edges(l)
            .iter()
            .find(|&&e| d.edge(e).src == b)
            .copied()
            .unwrap();
        let c_l = d
            .in_edges(l)
            .iter()
            .find(|&&e| d.edge(e).src == c)
            .copied()
            .unwrap();
        assert_eq!(t.edge[b_l.index()], r(22, 45));
        assert_eq!(t.edge[c_l.index()], r(11, 45));
        // B is used in K (4/5 * 2/3 = 8/15) and L (22/45): 24/45+22/45=46/45.
        assert_eq!(t.node[b.index()], r(46, 45));
        // A = 1/5 * 2/3 = 2/15.
        assert_eq!(t.node[a.index()], r(2, 15));
        // C = 11/45 + 3/5 * 1 = 11/45 + 27/45 = 38/45.
        assert_eq!(t.node[c.index()], r(38, 45));
        // B carries the maximum load.
        assert_eq!(t.max_load(), r(46, 45));
    }

    #[test]
    fn separation_fraction_inflates_input_demand() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let s = d.add_separate("sep", a, Some(r(1, 4)));
        d.add_output("o", s);
        let t = compute(&d).unwrap();
        // Output needs 1, separation keeps 1/4 => input edge needs 4.
        assert_eq!(t.node[s.index()], Ratio::ONE);
        assert_eq!(t.edge[d.in_edges(s)[0].index()], Ratio::from_int(4));
        assert_eq!(t.node[a.index()], Ratio::from_int(4));
        // The separator's load is its input (4), not its output (1).
        assert_eq!(t.load[s.index()], Ratio::from_int(4));
        assert_eq!(t.max_load(), Ratio::from_int(4));
    }

    #[test]
    fn excess_nodes_scale_producer_vnorm() {
        // Cascaded 1:99 as in Figure 7: C' = A:B 1:9 with 9/10 excess,
        // C = C':B 1:9.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c1 = d.add_mix("C'", &[(a, 1), (b, 9)], 0).unwrap();
        d.add_excess("ex", c1, r(9, 10));
        let c = d.add_mix("C", &[(c1, 1), (b, 9)], 0).unwrap();
        d.add_output("o", c);
        let t = compute(&d).unwrap();
        assert_eq!(t.node[c.index()], Ratio::ONE);
        // C' supplies 1/10 of C but produces 10x that due to excess:
        // V(C') = (1/10) / (1 - 9/10) = 1.
        assert_eq!(t.node[c1.index()], Ratio::ONE);
        // A's metered volume into C' is 1/10 — 10x the direct 1/100.
        let a_edge = d.in_edges(c1)[0];
        assert_eq!(t.edge[a_edge.index()], r(1, 10));
    }

    #[test]
    fn weighted_outputs_shift_allocation() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p1 = d.add_process("p1", "incubate", a);
        let p2 = d.add_process("p2", "incubate", a);
        let o1 = d.add_output("o1", p1);
        d.add_output("o2", p2);
        let mut w = HashMap::new();
        w.insert(o1, Ratio::from_int(3));
        let t = compute_weighted(&d, &w).unwrap();
        assert_eq!(t.node[o1.index()], Ratio::from_int(3));
        assert_eq!(t.node[a.index()], Ratio::from_int(4));
    }

    #[test]
    fn interior_unknown_volume_is_rejected() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let s = d.add_separate("sep", a, None);
        d.add_output("o", s);
        assert!(matches!(
            compute(&d),
            Err(VnormError::UnknownVolumeInterior { .. })
        ));
    }

    #[test]
    fn sink_unknown_volume_is_a_leaf() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1)], 0).unwrap();
        let s = d.add_separate("sep", m, None);
        let t = compute(&d).unwrap();
        assert_eq!(t.node[s.index()], Ratio::ONE);
        assert_eq!(t.node[m.index()], Ratio::ONE);
        assert_eq!(t.node[a.index()], r(1, 2));
    }

    #[test]
    fn empty_dag_has_no_outputs() {
        let d = Dag::new();
        assert!(matches!(compute(&d), Err(VnormError::NoOutputs)));
    }

    /// Edits an in-edge fraction pair and recomputes only the dirty
    /// slice: the table must match a fresh full pass exactly.
    #[test]
    fn recompute_on_dirty_slice_matches_fresh_pass() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
        let l = d.add_mix("L", &[(b, 2), (c, 1)], 0).unwrap();
        let m = d.add_mix("M", &[(k, 2), (l, 1)], 0).unwrap();
        let n = d.add_mix("N", &[(l, 2), (c, 3)], 0).unwrap();
        d.add_output("M_out", m);
        d.add_output("N_out", n);
        let mut table = compute(&d).unwrap();

        // Edit K's ratio from 1:4 to 3:2.
        let ins: Vec<_> = d.in_edges(k).to_vec();
        d.set_edge_fraction(ins[0], r(3, 5));
        d.set_edge_fraction(ins[1], r(2, 5));

        // Dirty slice: K and its ancestors, in reverse topological order.
        let order = d.topological_order().unwrap();
        let mut pos = vec![0usize; d.num_nodes()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        let mut slice = d.backward_slice(k);
        slice.sort_by_key(|id| std::cmp::Reverse(pos[id.index()]));
        recompute_weighted(&mut table, &d, &HashMap::new(), &slice).unwrap();

        assert_eq!(table, compute(&d).unwrap());
    }

    /// Weight edits are a dirty slice seeded at the output leaf.
    #[test]
    fn recompute_applies_weight_changes() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p1 = d.add_process("p1", "incubate", a);
        let p2 = d.add_process("p2", "incubate", a);
        let o1 = d.add_output("o1", p1);
        d.add_output("o2", p2);
        let mut table = compute(&d).unwrap();
        let mut w = HashMap::new();
        w.insert(o1, Ratio::from_int(3));
        // Reverse-topo slice of o1: o1, p1, a.
        recompute_weighted(&mut table, &d, &w, &[o1, p1, a]).unwrap();
        assert_eq!(table, compute_weighted(&d, &w).unwrap());
    }

    /// Recompute refreshes producer-assigned excess consumers too.
    #[test]
    fn recompute_updates_excess_consumers() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c1 = d.add_mix("C'", &[(a, 1), (b, 9)], 0).unwrap();
        d.add_excess("ex", c1, r(9, 10));
        let c = d.add_mix("C", &[(c1, 1), (b, 9)], 0).unwrap();
        d.add_output("o", c);
        let mut table = compute(&d).unwrap();
        let ins: Vec<_> = d.in_edges(c).to_vec();
        d.set_edge_fraction(ins[0], r(1, 5));
        d.set_edge_fraction(ins[1], r(4, 5));
        // Reverse-topo slice of C: C, C', then the inputs.
        recompute_weighted(&mut table, &d, &HashMap::new(), &[c, c1, b, a]).unwrap();
        assert_eq!(table, compute(&d).unwrap());
    }

    #[test]
    fn full_excess_discard_is_rejected() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_process("p", "incubate", a);
        d.add_excess("ex", p, Ratio::ONE);
        // p has only the excess consumer: useful = 0, share = 1.
        assert!(matches!(
            compute(&d),
            Err(VnormError::ExcessShareTooLarge { .. }) | Err(VnormError::NoOutputs)
        ));
    }
}
