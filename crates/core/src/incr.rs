//! Incremental recompilation: trace recording and dirty-slice replay.
//!
//! A push-mode session edits an already-compiled assay — one mix ratio,
//! one output weight — and wants the new plan without paying for a cold
//! run of the Figure 6 hierarchy. The contract is strict: the
//! incremental result must be **byte-identical** to a cold compile of
//! the edited DAG, so the replay never *approximates* the hierarchy; it
//! re-verifies the recorded decision trace against the edited graph and
//! recomputes only the dirty slice of each table. Any decision that no
//! longer holds (an underflow disappears, the LP stops being provably
//! infeasible, a mix crosses the extreme-ratio threshold, a replication
//! stops being blocked) is a *divergence*: the caller discards the
//! trace and recompiles cold.
//!
//! Recording happens inside the real [`crate::manage_volumes`] loop —
//! there is no shadow interpreter to drift out of sync. Two trace
//! shapes replay:
//!
//! - **Shape A**: round 0 DAGSolve solved outright. Replay is one
//!   dirty-slice Vnorm pass plus a full-table rescan for the scale.
//! - **Shape B**: every round underflowed, was proven LP-infeasible by
//!   the exact pre-check, and cascaded all extreme mixes cleanly, until
//!   replication was blocked by machine resources. Replay re-verifies
//!   each round's verdicts on the stored per-round DAGs.
//!
//! Everything else — simplex runs, rewrites that solve, regeneration
//! fallbacks, errors — is recorded as non-replayable and served by cold
//! compiles.

use std::collections::HashMap;

use aqua_dag::{Dag, EdgeId, NodeId, NodeKind, Ratio};

use crate::cascade::CascadeInfo;
use crate::dagsolve::VolumeAssignment;
use crate::feascheck::{self, DemandTable};
use crate::hierarchy::{manage_volumes_impl, ManagedOutcome, VolumeManagerOptions};
use crate::machine::Machine;
use crate::replicate::{self, ReplicateError};
use crate::vnorm::{self, VnormTable};

/// One cascade rewrite applied during a recorded round.
#[derive(Debug, Clone)]
pub struct CascadeRec {
    /// The cascaded (extreme) mix node.
    pub target: NodeId,
    /// Stage count reported in the solve log.
    pub depth: usize,
    /// Nodes the rewrite created, in creation order.
    pub generated: Vec<NodeId>,
}

/// Everything the replay needs about one hierarchy round.
#[derive(Debug, Clone)]
pub struct RoundRec {
    /// The working DAG as the round began (mutated in place by edits).
    pub dag: Dag,
    /// The weighted Vnorm table DAGSolve computed this round.
    pub vnorms: Option<VnormTable>,
    /// Whether DAGSolve underflowed this round.
    pub underflow: bool,
    /// The exact demand table that proved the LP infeasible, if it did.
    pub demand: Option<DemandTable>,
    /// Extreme mixes found this round (empty in the final round).
    pub extremes: Vec<NodeId>,
    /// Cascades applied, in application order.
    pub cascades: Vec<CascadeRec>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Pending,
    SolvedRound0,
    Blocked,
}

/// A decision trace of one [`crate::manage_volumes`] run.
///
/// Built by [`compile_with_trace`]; consumed by [`IncrSolver`].
#[derive(Debug, Clone)]
pub struct Recording {
    /// Per-round records, in round order.
    pub rounds: Vec<RoundRec>,
    /// The *unweighted* Vnorm table behind the final round's bottleneck
    /// scan (the hierarchy ranks replication candidates unweighted).
    pub final_vnorms: Option<VnormTable>,
    /// The resource-exhaustion reason, verbatim (Shape B).
    pub reason: Option<String>,
    replayable: bool,
    shape: Shape,
}

impl Recording {
    fn new() -> Recording {
        Recording {
            rounds: Vec::new(),
            final_vnorms: None,
            reason: None,
            replayable: true,
            shape: Shape::Pending,
        }
    }

    /// Whether the trace ended in a replayable shape with every table
    /// the replay needs.
    pub fn is_replayable(&self) -> bool {
        if !self.replayable {
            return false;
        }
        match self.shape {
            Shape::Pending => false,
            Shape::SolvedRound0 => {
                self.rounds.len() == 1
                    && self.rounds[0].vnorms.is_some()
                    && !self.rounds[0].underflow
            }
            Shape::Blocked => {
                !self.rounds.is_empty()
                    && self.reason.is_some()
                    && self.final_vnorms.is_some()
                    && self.rounds.iter().enumerate().all(|(i, r)| {
                        let last = i + 1 == self.rounds.len();
                        r.vnorms.is_some()
                            && r.underflow
                            && r.demand.is_some()
                            && (!last || (r.extremes.is_empty() && r.cascades.is_empty()))
                    })
            }
        }
    }

    fn cur(&mut self) -> Option<&mut RoundRec> {
        if self.replayable {
            self.rounds.last_mut()
        } else {
            None
        }
    }

    pub(crate) fn begin_round(&mut self, work: &Dag) {
        if !self.replayable {
            return;
        }
        self.rounds.push(RoundRec {
            dag: work.clone(),
            vnorms: None,
            underflow: false,
            demand: None,
            extremes: Vec::new(),
            cascades: Vec::new(),
        });
    }

    pub(crate) fn invalidate(&mut self) {
        self.replayable = false;
    }

    pub(crate) fn on_dagsolve(&mut self, sol: &VolumeAssignment) {
        if let Some(r) = self.cur() {
            r.vnorms = Some(sol.vnorms.clone());
            r.underflow = sol.underflow.is_some();
        }
    }

    pub(crate) fn on_solved(&mut self, round: usize) {
        if round == 0 && self.replayable {
            self.shape = Shape::SolvedRound0;
        } else {
            self.invalidate();
        }
    }

    pub(crate) fn on_proven_infeasible(&mut self, table: &DemandTable) {
        if let Some(r) = self.cur() {
            r.demand = Some(table.clone());
        }
    }

    pub(crate) fn on_extremes(&mut self, extremes: &[NodeId]) {
        if let Some(r) = self.cur() {
            r.extremes = extremes.to_vec();
        }
    }

    pub(crate) fn on_cascade(&mut self, info: &CascadeInfo) {
        // Cascading a node that an earlier cascade generated would make
        // cold-order reconstruction recursive; punt those traces.
        let base_nodes = self.rounds.first().map_or(0, |r| r.dag.num_nodes());
        if info.node.index() >= base_nodes {
            self.invalidate();
            return;
        }
        let generated: Vec<NodeId> = info
            .intermediates
            .iter()
            .zip(&info.excess_nodes)
            .flat_map(|(&m, &x)| [m, x])
            .collect();
        let depth = info.plan.depth();
        if let Some(r) = self.cur() {
            r.cascades.push(CascadeRec {
                target: info.node,
                depth,
                generated,
            });
        }
    }

    pub(crate) fn on_bottleneck(&mut self, table: &VnormTable) {
        if self.replayable {
            self.final_vnorms = Some(table.clone());
        }
    }

    pub(crate) fn on_blocked(&mut self, reason: &str) {
        if self.replayable {
            self.reason = Some(reason.to_string());
            self.shape = Shape::Blocked;
        }
    }
}

/// Runs the hierarchy once, recording a decision trace alongside the
/// normal outcome. The trace is returned only when it is replayable;
/// the outcome is identical to [`crate::manage_volumes`] either way.
pub fn compile_with_trace(
    dag: &Dag,
    machine: &Machine,
    opts: &VolumeManagerOptions,
) -> (ManagedOutcome, Option<Recording>) {
    let mut rec = Recording::new();
    let out = manage_volumes_impl(dag, machine, opts, Some(&mut rec));
    let rec = rec.is_replayable().then_some(rec);
    (out, rec)
}

/// An edit expressed against the trace's *base* DAG (the canonical DAG
/// the trace was recorded on; round-0 node and edge ids).
#[derive(Debug, Clone)]
pub enum IncrEdit {
    /// New fractions for some of one mix node's in-edges.
    Fractions {
        /// The edited mix.
        node: NodeId,
        /// `(in-edge, new fraction)` pairs; fractions of the node's
        /// full in-edge set must still sum to one.
        changes: Vec<(EdgeId, Ratio)>,
    },
    /// A new relative output weight for one output node.
    Weight {
        /// The output node.
        node: NodeId,
        /// The new weight.
        weight: Ratio,
    },
}

/// Result of a successful replay.
#[derive(Debug, Clone)]
pub enum ReplayOutcome {
    /// Shape A: the edited assay still solves in round 0. Volumes are
    /// indexed by the base DAG's node/edge ids.
    Solved {
        /// Absolute per-node volumes in nl.
        node_volumes_nl: Vec<Ratio>,
        /// Absolute per-edge volumes in nl.
        edge_volumes_nl: Vec<Ratio>,
    },
    /// Shape B: the edited assay still exhausts machine resources.
    /// `log` is fully rendered in the edited DAG's canonical namespace.
    Blocked {
        /// The resource-exhaustion reason, byte-identical to a cold
        /// compile's.
        reason: String,
        /// The full solve log, byte-identical to a cold compile's.
        log: Vec<String>,
    },
}

/// A recorded decision no longer holds under the edit; the caller must
/// recompile cold. The label names the first check that failed (fed to
/// observability counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence(pub &'static str);

/// Replays edits against a recorded trace.
///
/// The solver owns the trace and mutates it as edits apply, so a
/// session can push many successful edits through one trace. After a
/// [`Divergence`] the solver is poisoned — discard it and rebuild from
/// a fresh [`compile_with_trace`].
#[derive(Debug, Clone)]
pub struct IncrSolver {
    machine: Machine,
    weights: HashMap<NodeId, Ratio>,
    rec: Recording,
    /// Cached topological positions per round (round topology never
    /// changes under fraction/weight edits).
    topo: Vec<Option<Vec<usize>>>,
}

impl IncrSolver {
    /// Wraps a replayable recording. `weights` must be the output
    /// weights the trace was compiled with (base-DAG node ids).
    pub fn new(
        machine: Machine,
        weights: HashMap<NodeId, Ratio>,
        rec: Recording,
    ) -> Option<IncrSolver> {
        if !rec.is_replayable() {
            return None;
        }
        let topo = vec![None; rec.rounds.len()];
        Some(IncrSolver {
            machine,
            weights,
            rec,
            topo,
        })
    }

    /// Number of nodes in the base (round 0) DAG.
    pub fn base_nodes(&self) -> usize {
        self.rec.rounds[0].dag.num_nodes()
    }

    /// Replays one edit. `base_to_cur[i]` maps base-DAG node `i` to its
    /// rank in the *edited* DAG's canonical order — the replay renders
    /// node names (and orders cascade log lines and replication
    /// tie-breaks) exactly as a cold compile of the edited DAG would.
    ///
    /// Returns the number of dirty nodes alongside the outcome so
    /// callers can report slice sizes.
    ///
    /// # Errors
    ///
    /// [`Divergence`] when any recorded decision no longer holds; the
    /// solver must then be discarded.
    pub fn replay_edit(
        &mut self,
        edit: &IncrEdit,
        base_to_cur: &[usize],
    ) -> Result<(ReplayOutcome, usize), Divergence> {
        let base_n = self.base_nodes();
        let (touched, changes) = match edit {
            IncrEdit::Fractions { node, changes } => (*node, Some(changes)),
            IncrEdit::Weight { node, weight } => {
                self.weights.insert(*node, *weight);
                (*node, None)
            }
        };
        if touched.index() >= base_n || base_to_cur.len() < base_n {
            return Err(Divergence("bad-edit-target"));
        }
        // A fraction edit on a node the trace cascaded would invalidate
        // the stored rewrites themselves.
        if self
            .rec
            .rounds
            .iter()
            .any(|r| r.cascades.iter().any(|c| c.target == touched))
        {
            return Err(Divergence("edited-cascaded-node"));
        }

        let shape = self.rec.shape;
        let nrounds = self.rec.rounds.len();
        let mut underflow_vols: Vec<Ratio> = Vec::with_capacity(nrounds);
        let mut solved: Option<(Vec<Ratio>, Vec<Ratio>)> = None;
        let mut slice_len = 0usize;

        for r in 0..nrounds {
            if self.topo[r].is_none() {
                let pos = self.rec.rounds[r]
                    .dag
                    .topo_positions()
                    .map_err(|_| Divergence("cyclic-round-dag"))?;
                self.topo[r] = Some(pos);
            }
            let round = &mut self.rec.rounds[r];
            if let Some(changes) = changes {
                for &(e, f) in changes {
                    round.dag.set_edge_fraction(e, f);
                }
            }
            let pos = self.topo[r].as_ref().expect("cached above");
            let slice = round.dag.dirty_slice(touched, pos);
            slice_len = slice_len.max(slice.len());
            let table = round.vnorms.as_mut().expect("replayable trace");
            vnorm::recompute_weighted(table, &round.dag, &self.weights, &slice)
                .map_err(|_| Divergence("vnorm-error"))?;

            // Forward dispensing verdict on the updated table.
            let max_load = table.max_load();
            if !max_load.is_positive() {
                return Err(Divergence("zero-demand"));
            }
            let scale = self.machine.max_capacity_nl() / max_load;
            let mut min_w: Option<Ratio> = None;
            for e in round.dag.edge_ids() {
                if !round.dag.edge_is_live(e) {
                    continue;
                }
                if round.dag.node(round.dag.edge(e).dst).kind == NodeKind::Excess {
                    continue;
                }
                let v = table.edge[e.index()];
                if min_w.is_none_or(|m| v < m) {
                    min_w = Some(v);
                }
            }
            let min_vol = min_w.map(|w| w * scale);
            let underflows = min_vol.is_some_and(|v| v < self.machine.least_count_nl());
            if underflows != round.underflow {
                return Err(Divergence("underflow-flipped"));
            }
            if underflows {
                underflow_vols.push(min_vol.expect("underflowing edge exists"));
            } else {
                // Shape A's single round; Shape B rounds always
                // underflow, checked just above.
                let node_volumes_nl = table.node.iter().map(|&v| v * scale).collect();
                let edge_volumes_nl = table.edge.iter().map(|&v| v * scale).collect();
                solved = Some((node_volumes_nl, edge_volumes_nl));
                break;
            }

            if changes.is_some() {
                // The exact LP pre-check must still prove infeasibility,
                // or a cold compile would run the simplex. (Weight edits
                // skip this: the demand reduction is weight-free.)
                let demand = round.demand.as_mut().expect("replayable trace");
                feascheck::recompute(demand, &round.dag, &self.machine, &slice)
                    .map_err(|_| Divergence("feascheck-unsupported"))?;
                if !demand.infeasible() {
                    return Err(Divergence("lp-not-proven"));
                }
                // The touched mix must stay on its side of the
                // extreme-ratio threshold; no other node's fractions
                // moved, so no other membership can change.
                let threshold = self
                    .machine
                    .span()
                    .checked_recip()
                    .map_err(|_| Divergence("bad-span"))?;
                let was_extreme = round.extremes.contains(&touched);
                let is_extreme = round
                    .dag
                    .in_edges(touched)
                    .iter()
                    .any(|&e| round.dag.edge(e).fraction <= threshold);
                if was_extreme != is_extreme {
                    return Err(Divergence("extreme-flipped"));
                }
            }
        }

        if let Some((node_volumes_nl, edge_volumes_nl)) = solved {
            if shape != Shape::SolvedRound0 {
                return Err(Divergence("underflow-flipped"));
            }
            return Ok((
                ReplayOutcome::Solved {
                    node_volumes_nl,
                    edge_volumes_nl,
                },
                slice_len,
            ));
        }
        if shape != Shape::Blocked {
            return Err(Divergence("shape-mismatch"));
        }

        // Final round: re-rank the bottleneck unweighted and confirm
        // its replication is still blocked by the same resource.
        let last = nrounds - 1;
        if changes.is_some() {
            let pos = self.topo[last].as_ref().expect("cached above");
            let slice = self.rec.rounds[last].dag.dirty_slice(touched, pos);
            let ftable = self.rec.final_vnorms.as_mut().expect("replayable trace");
            vnorm::recompute_weighted(ftable, &self.rec.rounds[last].dag, &HashMap::new(), &slice)
                .map_err(|_| Divergence("vnorm-error"))?;
        }
        let cold = self.cold_positions(base_to_cur);
        let fdag = &self.rec.rounds[last].dag;
        let ftable = self.rec.final_vnorms.as_ref().expect("replayable trace");
        let mut order: Vec<NodeId> = fdag.node_ids().collect();
        order.sort_by_key(|n| cold[n.index()]);
        // Mirror `replicate::bottleneck_candidate`: max load over
        // parked interior nodes, last maximum in cold node order.
        let mut best: Option<(Ratio, NodeId)> = None;
        for n in order {
            if fdag.num_uses(n) >= 2 && !fdag.node(n).kind.is_sink() {
                let load = ftable.load[n.index()];
                if best.is_none_or(|(b, _)| load >= b) {
                    best = Some((load, n));
                }
            }
        }
        let (_, candidate) = best.ok_or(Divergence("no-candidate"))?;
        let reason = match replicate::projected_fits(fdag, candidate, 2, &self.machine) {
            Err(ReplicateError::ResourcesExceeded { what }) => what,
            _ => return Err(Divergence("replication-unblocked")),
        };

        let mut log = Vec::new();
        for (r, (round, vol)) in self.rec.rounds.iter().zip(&underflow_vols).enumerate() {
            log.push(format!("round {r}: DAGSolve underflowed ({vol})"));
            log.push(format!("round {r}: LP infeasible"));
            let mut cascades: Vec<&CascadeRec> = round.cascades.iter().collect();
            cascades.sort_by_key(|c| cold[c.target.index()]);
            for c in cascades {
                log.push(format!(
                    "round {r}: cascaded `f{}` into {} stages",
                    base_to_cur[c.target.index()],
                    c.depth
                ));
            }
        }
        log.push(format!("round {last}: replication blocked: {reason}"));
        Ok((ReplayOutcome::Blocked { reason, log }, slice_len))
    }

    /// Total order of the final round's nodes as a cold compile of the
    /// edited DAG would create them: base nodes in edited canonical
    /// rank order, then cascade-generated nodes round by round, each
    /// round's cascades ordered by their target's rank.
    fn cold_positions(&self, base_to_cur: &[usize]) -> Vec<u64> {
        let base_n = self.base_nodes();
        let total = self.rec.rounds.last().map_or(base_n, |r| r.dag.num_nodes());
        let mut cold = vec![0u64; total];
        for (i, slot) in cold.iter_mut().enumerate().take(base_n) {
            *slot = base_to_cur[i] as u64;
        }
        let mut next = base_n as u64;
        for round in &self.rec.rounds {
            let mut cascades: Vec<&CascadeRec> = round.cascades.iter().collect();
            cascades.sort_by_key(|c| cold[c.target.index()]);
            for c in cascades {
                for &g in &c.generated {
                    if g.index() < total {
                        cold[g.index()] = next;
                    }
                    next += 1;
                }
            }
        }
        cold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::manage_volumes;

    fn machine() -> Machine {
        Machine::paper_default()
    }

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    /// Round-0 solvable assay: trace is Shape A, and a ratio edit
    /// replays to exactly the volumes a cold compile produces.
    #[test]
    fn shape_a_replay_matches_cold_compile() {
        let mut d = Dag::new();
        let a = d.add_input("f0");
        let b = d.add_input("f1");
        let m = d.add_mix("f2", &[(a, 1), (b, 4)], 0).unwrap();
        d.add_process("f3", "sense.OD", m);
        let opts = VolumeManagerOptions::default();
        let (out, rec) = compile_with_trace(&d, &machine(), &opts);
        assert!(out.is_solved());
        let rec = rec.expect("shape A is replayable");
        let mut solver = IncrSolver::new(machine(), HashMap::new(), rec).unwrap();

        // Edit 1:4 -> 3:7 and replay.
        let mut edited = d.clone();
        let changes = aqua_dag::set_mix_ratio(&mut edited, m, &[(a, 3), (b, 7)]).unwrap();
        let (outcome, dirty) = solver
            .replay_edit(
                &IncrEdit::Fractions { node: m, changes },
                &identity(d.num_nodes()),
            )
            .expect("replay succeeds");
        assert!(dirty >= 3);
        let cold = manage_volumes(&edited, &machine(), &opts);
        match (outcome, cold) {
            (
                ReplayOutcome::Solved {
                    node_volumes_nl,
                    edge_volumes_nl,
                },
                ManagedOutcome::Solved { volumes, .. },
            ) => {
                assert_eq!(node_volumes_nl, volumes.node_volumes_nl);
                assert_eq!(edge_volumes_nl, volumes.edge_volumes_nl);
            }
            other => panic!("expected solved/solved, got {other:?}"),
        }
    }

    /// Consecutive edits accumulate: each replay applies on top of the
    /// previous edit's state.
    #[test]
    fn consecutive_edits_accumulate() {
        let mut d = Dag::new();
        let a = d.add_input("f0");
        let b = d.add_input("f1");
        let m = d.add_mix("f2", &[(a, 1), (b, 4)], 0).unwrap();
        d.add_process("f3", "sense.OD", m);
        let opts = VolumeManagerOptions::default();
        let (_, rec) = compile_with_trace(&d, &machine(), &opts);
        let mut solver = IncrSolver::new(machine(), HashMap::new(), rec.unwrap()).unwrap();
        let ident = identity(d.num_nodes());

        let mut edited = d.clone();
        for parts in [(2u64, 3u64), (1, 1), (5, 3)] {
            let changes =
                aqua_dag::set_mix_ratio(&mut edited, m, &[(a, parts.0), (b, parts.1)]).unwrap();
            let (outcome, _) = solver
                .replay_edit(&IncrEdit::Fractions { node: m, changes }, &ident)
                .expect("replay succeeds");
            let cold = manage_volumes(&edited, &machine(), &opts);
            match (outcome, cold) {
                (
                    ReplayOutcome::Solved {
                        node_volumes_nl, ..
                    },
                    ManagedOutcome::Solved { volumes, .. },
                ) => assert_eq!(node_volumes_nl, volumes.node_volumes_nl),
                other => panic!("expected solved/solved, got {other:?}"),
            }
        }
    }

    /// A weight edit replays through the weighted Vnorm pass.
    #[test]
    fn weight_edit_replays() {
        let mut d = Dag::new();
        let a = d.add_input("f0");
        let b = d.add_input("f1");
        let m = d.add_mix("f2", &[(a, 1), (b, 1)], 0).unwrap();
        let o = d.add_output("f3", m);
        let opts = VolumeManagerOptions::default();
        let (_, rec) = compile_with_trace(&d, &machine(), &opts);
        let mut solver = IncrSolver::new(machine(), HashMap::new(), rec.unwrap()).unwrap();

        let w = Ratio::from_int(3);
        let (outcome, _) = solver
            .replay_edit(
                &IncrEdit::Weight { node: o, weight: w },
                &identity(d.num_nodes()),
            )
            .expect("replay succeeds");
        let mut opts_w = VolumeManagerOptions::default();
        opts_w.output_weights.insert(o, w);
        let cold = manage_volumes(&d, &machine(), &opts_w);
        match (outcome, cold) {
            (
                ReplayOutcome::Solved {
                    node_volumes_nl, ..
                },
                ManagedOutcome::Solved { volumes, .. },
            ) => assert_eq!(node_volumes_nl, volumes.node_volumes_nl),
            other => panic!("expected solved/solved, got {other:?}"),
        }
    }

    /// An edit that changes the solve shape (the underflow disappears
    /// or appears) must report a divergence, never a wrong plan.
    #[test]
    fn shape_change_diverges() {
        // 1:1500 is extreme enough that DAGSolve underflows.
        let mut d = Dag::new();
        let a = d.add_input("f0");
        let b = d.add_input("f1");
        let m = d.add_mix("f2", &[(a, 1), (b, 4)], 0).unwrap();
        d.add_process("f3", "sense.OD", m);
        let opts = VolumeManagerOptions::default();
        let (_, rec) = compile_with_trace(&d, &machine(), &opts);
        let mut solver = IncrSolver::new(machine(), HashMap::new(), rec.unwrap()).unwrap();
        let mut edited = d.clone();
        let changes = aqua_dag::set_mix_ratio(&mut edited, m, &[(a, 1), (b, 1500)]).unwrap();
        let err = solver
            .replay_edit(
                &IncrEdit::Fractions { node: m, changes },
                &identity(d.num_nodes()),
            )
            .expect_err("underflow appears; must diverge");
        assert_eq!(err, Divergence("underflow-flipped"));
    }

    /// Shape B: a resource-blocked assay replays a ratio edit to the
    /// byte-identical reason and log of a cold compile.
    #[test]
    fn shape_b_replay_matches_cold_compile() {
        let (d, edit_node, srcs) = blocked_assay();
        let opts = VolumeManagerOptions::default();
        let mut machine = machine();
        machine.reservoirs = 8;
        let (out, rec) = compile_with_trace(&d, &machine, &opts);
        assert!(
            matches!(out, ManagedOutcome::ResourcesExceeded { .. }),
            "{out:?}"
        );
        let rec = rec.expect("shape B is replayable");
        let mut solver = IncrSolver::new(machine.clone(), HashMap::new(), rec).unwrap();

        let mut edited = d.clone();
        let changes =
            aqua_dag::set_mix_ratio(&mut edited, edit_node, &[(srcs.0, 2), (srcs.1, 3)]).unwrap();
        assert!(!changes.is_empty());
        let (outcome, _) = solver
            .replay_edit(
                &IncrEdit::Fractions {
                    node: edit_node,
                    changes,
                },
                &identity(d.num_nodes()),
            )
            .expect("replay succeeds");
        let cold = manage_volumes(&edited, &machine, &opts);
        match (outcome, cold) {
            (
                ReplayOutcome::Blocked { reason, log },
                ManagedOutcome::ResourcesExceeded {
                    reason: cold_reason,
                    log: cold_log,
                },
            ) => {
                assert_eq!(reason, cold_reason);
                assert_eq!(log, cold_log);
            }
            other => panic!("expected blocked/blocked, got {other:?}"),
        }
    }

    /// An assay whose extreme mixes cascade cleanly but whose
    /// replication is blocked by a tiny reservoir bank. Node names
    /// follow the canonical `f{i}` scheme so rendered logs line up
    /// with the identity rank map.
    fn blocked_assay() -> (Dag, NodeId, (NodeId, NodeId)) {
        let mut d = Dag::new();
        let mut idx = 0;
        let mut name = || {
            let n = format!("f{idx}");
            idx += 1;
            n
        };
        let stock = d.add_input(name());
        let other = d.add_input(name());
        // One extreme mix (cascades), many shared uses of `stock` so
        // replication is the only remaining rewrite, then blocked.
        let extreme = d.add_mix(name(), &[(stock, 1), (other, 1999)], 0).unwrap();
        d.add_process(name(), "sense.OD", extreme);
        let mild = d.add_mix(name(), &[(stock, 1), (other, 1)], 0).unwrap();
        d.add_process(name(), "sense.OD", mild);
        for _ in 0..40 {
            let m = d.add_mix(name(), &[(stock, 1), (other, 2999)], 0).unwrap();
            d.add_process(name(), "sense.OD", m);
        }
        (d, mild, (stock, other))
    }
}
