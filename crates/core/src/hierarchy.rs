//! The volume-management hierarchy of Figure 6.
//!
//! The preferred solver is DAGSolve (fast, occasionally infeasible);
//! its underflows fall back to the LP (slow, strictly more general);
//! LP failures trigger the DAG rewrites — cascading for extreme mix
//! ratios, static replication for numerous uses — and the rewritten DAG
//! re-enters the hierarchy. When everything fails within budget, the
//! assay must rely on reactive regeneration at run time (Biostream's
//! policy, provided by the simulator) — better a slow solution than
//! none.

use std::fmt;

use aqua_dag::{Dag, Ratio};

use crate::cascade;
use crate::dagsolve::{self, VolumeAssignment};
use crate::feascheck;
use crate::lpform::{self, LpOptions};
use crate::machine::Machine;
use crate::replicate;
use crate::round;
use crate::vnorm;

/// Which solver finally produced the accepted assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Plain DAGSolve on the original DAG.
    DagSolve,
    /// LP fallback on the original DAG.
    Lp,
    /// DAGSolve after cascading and/or replication rewrites.
    DagSolveAfterRewrites,
    /// LP after cascading and/or replication rewrites.
    LpAfterRewrites,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::DagSolve => write!(f, "DAGSolve"),
            Method::Lp => write!(f, "LP"),
            Method::DagSolveAfterRewrites => write!(f, "DAGSolve (after rewrites)"),
            Method::LpAfterRewrites => write!(f, "LP (after rewrites)"),
        }
    }
}

/// Budgets for the hierarchy.
#[derive(Debug, Clone)]
pub struct VolumeManagerOptions {
    /// Maximum rewrite rounds (each round cascades every extreme mix or
    /// replicates one bottleneck).
    pub max_rewrite_rounds: usize,
    /// Whether excess production (and hence cascading) is allowed; some
    /// fluids forbid discarding for safety/cost/regulatory reasons.
    pub allow_excess: bool,
    /// Whether the LP fallback runs at all (DAGSolve-only mode for
    /// run-time use).
    pub use_lp: bool,
    /// Relative output weights by node id (absent = 1): the paper's
    /// `Va:Vb:Vc` proportions, fed to DAGSolve's Vnorm initialization.
    pub output_weights: std::collections::HashMap<aqua_dag::NodeId, Ratio>,
    /// Fluids (by node name) for which excess production is forbidden —
    /// cascading never rewrites a mix that consumes them (§3.4.1:
    /// "because of safety, cost, regulation, or even correctness").
    pub no_excess_fluids: Vec<String>,
    /// Observability handle: spans (`vol.manage`, `vol.dagsolve`,
    /// `vol.lp`) and counters (`vol.vnorm_passes`,
    /// `vol.cascade_rewrites`, `vol.replicate_rewrites`,
    /// `vol.lp_fallbacks`, `vol.escalations`) flow through here and into
    /// the LP solver beneath. The default [`aqua_obs::Obs::off`] handle
    /// reduces every probe to one branch.
    pub obs: aqua_obs::Obs,
}

impl Default for VolumeManagerOptions {
    fn default() -> VolumeManagerOptions {
        VolumeManagerOptions {
            max_rewrite_rounds: 6,
            allow_excess: true,
            use_lp: true,
            output_weights: std::collections::HashMap::new(),
            no_excess_fluids: Vec::new(),
            obs: aqua_obs::Obs::off(),
        }
    }
}

/// Volumes accepted by the hierarchy, tagged by solver.
#[derive(Debug, Clone)]
pub struct ManagedVolumes {
    /// Exact per-edge volumes in nl, indexed by edge id of the
    /// *transformed* DAG.
    pub edge_volumes_nl: Vec<Ratio>,
    /// Exact per-node production in nl.
    pub node_volumes_nl: Vec<Ratio>,
    /// Which solver produced this.
    pub method: Method,
}

/// Final outcome of the hierarchy.
///
/// Variants intentionally carry the (large) rewritten DAG by value: the
/// caller owns it from here on and the hierarchy runs once per
/// compilation, so boxing would only add indirection.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ManagedOutcome {
    /// An underflow-free assignment was found; `dag` is the (possibly
    /// rewritten) DAG the volumes refer to.
    Solved {
        /// The DAG the volumes index into (original or rewritten).
        dag: Dag,
        /// The accepted volumes.
        volumes: ManagedVolumes,
        /// Human-readable solve log (one line per attempt).
        log: Vec<String>,
    },
    /// No static assignment exists within budget; execution must rely on
    /// run-time regeneration. The best-effort assignment (with
    /// underflows) is included so execution can still be attempted.
    NeedsRegeneration {
        /// The last rewritten DAG attempted.
        dag: Dag,
        /// Best-effort DAGSolve result on that DAG (may underflow).
        best_effort: Option<VolumeAssignment>,
        /// Human-readable solve log.
        log: Vec<String>,
    },
    /// A rewrite exceeded the machine's fluid-path resources:
    /// compilation fails (§3.4.2).
    ResourcesExceeded {
        /// Description of the exhausted resource.
        reason: String,
        /// Human-readable solve log.
        log: Vec<String>,
    },
}

impl ManagedOutcome {
    /// Whether a full assignment was produced.
    pub fn is_solved(&self) -> bool {
        matches!(self, ManagedOutcome::Solved { .. })
    }
}

/// Runs the Figure 6 hierarchy on an assay DAG.
///
/// # Examples
///
/// ```
/// use aqua_dag::Dag;
/// use aqua_volume::{manage_volumes, Machine, Method, VolumeManagerOptions};
///
/// let mut dag = Dag::new();
/// let a = dag.add_input("A");
/// let b = dag.add_input("B");
/// let m = dag.add_mix("mx", &[(a, 1), (b, 4)], 0)?;
/// dag.add_process("sense", "sense.OD", m);
/// let out = manage_volumes(&dag, &Machine::paper_default(), &VolumeManagerOptions::default());
/// assert!(out.is_solved());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn manage_volumes(dag: &Dag, machine: &Machine, opts: &VolumeManagerOptions) -> ManagedOutcome {
    manage_volumes_impl(dag, machine, opts, None)
}

/// [`manage_volumes`] with an optional decision-trace recorder for
/// incremental replay ([`crate::incr`]). The recorder observes the real
/// loop — there is no shadow interpreter — so a recorded trace is by
/// construction the trace of the returned outcome. Passing `None`
/// reduces every hook to one branch.
pub(crate) fn manage_volumes_impl(
    dag: &Dag,
    machine: &Machine,
    opts: &VolumeManagerOptions,
    mut rec: Option<&mut crate::incr::Recording>,
) -> ManagedOutcome {
    let _manage_span = opts.obs.span("vol.manage");
    let mut work = dag.clone();
    let mut log = Vec::new();
    let mut rewritten = false;
    let mut best_effort: Option<VolumeAssignment> = None;

    for round in 0..=opts.max_rewrite_rounds {
        if let Some(r) = rec.as_deref_mut() {
            r.begin_round(&work);
        }
        // --- 1. DAGSolve ---
        let dag_result = {
            let _span = opts.obs.span("vol.dagsolve");
            // Every DAGSolve attempt is one backward Vnorm pass.
            opts.obs.add("vol.vnorm_passes", 1);
            dagsolve::solve_weighted(&work, machine, &opts.output_weights)
        };
        match dag_result {
            Ok(sol) => match sol.underflow {
                None => {
                    if let Some(r) = rec.as_deref_mut() {
                        r.on_dagsolve(&sol);
                        r.on_solved(round);
                    }
                    log.push(format!("round {round}: DAGSolve succeeded"));
                    let method = if rewritten {
                        Method::DagSolveAfterRewrites
                    } else {
                        Method::DagSolve
                    };
                    return ManagedOutcome::Solved {
                        volumes: ManagedVolumes {
                            edge_volumes_nl: sol.edge_volumes_nl.clone(),
                            node_volumes_nl: sol.node_volumes_nl.clone(),
                            method,
                        },
                        dag: work,
                        log,
                    };
                }
                Some(ref under) => {
                    if let Some(r) = rec.as_deref_mut() {
                        r.on_dagsolve(&sol);
                    }
                    log.push(format!(
                        "round {round}: DAGSolve underflowed ({})",
                        under.volume_nl
                    ));
                    best_effort = Some(sol);
                }
            },
            Err(e) => {
                if let Some(r) = rec.as_deref_mut() {
                    r.invalidate();
                }
                log.push(format!("round {round}: DAGSolve error: {e}"));
            }
        }

        // --- 2. LP fallback ---
        if opts.use_lp {
            opts.obs.add("vol.lp_fallbacks", 1);
            let _lp_span = opts.obs.span("vol.lp");
            // Exact infeasibility pre-check: when the rational demand
            // propagation certifies the LP has no solution, skip the
            // simplex entirely (the verdict — and hence the log — is
            // identical, just ~100x cheaper on infeasible rounds).
            let analysis = {
                let _pre_span = opts.obs.span("vol.precheck");
                feascheck::analyze(&work, machine)
            };
            let proven_infeasible = analysis.is_proven();
            if let Some(r) = rec.as_deref_mut() {
                // The simplex path (and hence any LP success) depends
                // on state a dirty-slice replay does not carry.
                match &analysis {
                    feascheck::Analysis::Proven(table) => r.on_proven_infeasible(table),
                    _ => r.invalidate(),
                }
            }
            if proven_infeasible {
                opts.obs.add("vol.precheck_infeasible", 1);
                log.push(format!("round {round}: LP infeasible"));
            }
            // Explicit output weights override the default anti-skew
            // band (which would force outputs equal-ish and fight the
            // requested proportions).
            let lp_opts = if opts.output_weights.is_empty() {
                LpOptions::rvol()
            } else {
                LpOptions {
                    output_band: None,
                    ..LpOptions::rvol()
                }
            };
            let out_status = if proven_infeasible {
                None
            } else {
                let form = lpform::build(&work, machine, &lp_opts);
                let config = aqua_lp::SimplexConfig {
                    obs: opts.obs.clone(),
                    ..Default::default()
                };
                Some((aqua_lp::solve_with(&form.model, &config), form))
            };
            if let Some((out, form)) = out_status {
                match out.status {
                    aqua_lp::Status::Optimal(sol) => {
                        let vols = form.volumes(&work, machine, &sol);
                        // RVol → IVol with the clamp-and-measure discipline:
                        // sub-least-count transfers are raised to one count
                        // (never silently emitted or dropped). When such a
                        // clamp breaks a mix ratio beyond the paper's 2%
                        // tolerance, the plan escalates to the rewrite tier
                        // instead of shipping. Ordinary rounding noise on
                        // meterable transfers does not escalate — §4.2
                        // measures it and the chemistry tolerates it.
                        let ra = round::round_lp_edges(&work, machine, &vols.edge_nl);
                        if !ra.underflows.is_empty() && !ra.within_paper_tolerance() {
                            opts.obs.add("vol.escalations", 1);
                            log.push(format!(
                                "round {round}: LP clamped {} sub-least-count transfer(s) \
                             and broke a mix ratio ({} > {} tolerance); escalating",
                                ra.underflows.len(),
                                ra.max_ratio_error,
                                round::PAPER_RATIO_TOLERANCE,
                            ));
                        } else {
                            log.push(format!(
                                "round {round}: LP succeeded ({} constraints)",
                                form.num_constraints
                            ));
                            let round::RoundedAssignment {
                                edge_volumes_nl,
                                node_volumes_nl: mut rounded_nodes,
                                ..
                            } = ra;
                            // Source nodes must load at least what they
                            // dispense (non-deficit); the rounded out-edge
                            // sum already guarantees that, but never load
                            // *less* than the LP asked for.
                            for n in work.node_ids() {
                                if work.in_edges(n).is_empty() {
                                    let lp_load = machine.round_to_least_count(float_to_ratio_nl(
                                        vols.node_nl[n.index()],
                                    ));
                                    rounded_nodes[n.index()] =
                                        rounded_nodes[n.index()].max(lp_load);
                                }
                            }
                            let method = if rewritten {
                                Method::LpAfterRewrites
                            } else {
                                Method::Lp
                            };
                            return ManagedOutcome::Solved {
                                volumes: ManagedVolumes {
                                    edge_volumes_nl,
                                    node_volumes_nl: rounded_nodes,
                                    method,
                                },
                                dag: work,
                                log,
                            };
                        }
                    }
                    aqua_lp::Status::Infeasible => {
                        log.push(format!("round {round}: LP infeasible"));
                    }
                    other => {
                        log.push(format!("round {round}: LP failed: {other:?}"));
                    }
                }
            }
        }

        if round == opts.max_rewrite_rounds {
            break;
        }

        // --- 3. Rewrites: cascade extreme ratios, else replicate the
        // bottleneck. ---
        let mut changed = false;
        if opts.allow_excess {
            let extremes = cascade::find_extreme_mixes(&work, machine);
            if let Some(r) = rec.as_deref_mut() {
                r.on_extremes(&extremes);
            }
            for node in extremes {
                // Respect per-fluid excess bans: skip mixes consuming a
                // protected fluid (their rescue must come from
                // replication or regeneration).
                let protected = work.in_edges(node).iter().any(|&e| {
                    opts.no_excess_fluids
                        .contains(&work.node(work.edge(e).src).name)
                });
                if protected {
                    if let Some(r) = rec.as_deref_mut() {
                        r.invalidate();
                    }
                    log.push(format!(
                        "round {round}: `{}` consumes a no-excess fluid; cascade skipped",
                        work.node(node).name
                    ));
                    continue;
                }
                match cascade::apply_cascade(&mut work, node, machine) {
                    Ok(info) => {
                        opts.obs.add("vol.cascade_rewrites", 1);
                        if let Some(r) = rec.as_deref_mut() {
                            r.on_cascade(&info);
                        }
                        log.push(format!(
                            "round {round}: cascaded `{}` into {} stages",
                            work.node(info.node).name,
                            info.plan.depth()
                        ));
                        changed = true;
                    }
                    Err(e) => {
                        if let Some(r) = rec.as_deref_mut() {
                            r.invalidate();
                        }
                        log.push(format!("round {round}: cascade failed: {e}"));
                    }
                }
            }
        }
        if !changed {
            // Replicate the current bottleneck.
            opts.obs.add("vol.vnorm_passes", 1);
            match vnorm::compute(&work) {
                Ok(t) => {
                    if let Some(r) = rec.as_deref_mut() {
                        r.on_bottleneck(&t);
                    }
                    match replicate::bottleneck_candidate(&work, &t) {
                        Some(node) => {
                            let name = work.node(node).name.clone();
                            match replicate::replicate_node(&mut work, node, 2, machine) {
                                Ok(_) => {
                                    opts.obs.add("vol.replicate_rewrites", 1);
                                    if let Some(r) = rec.as_deref_mut() {
                                        r.invalidate();
                                    }
                                    log.push(format!("round {round}: replicated `{name}` x2"));
                                    changed = true;
                                }
                                Err(replicate::ReplicateError::ResourcesExceeded { what }) => {
                                    if let Some(r) = rec.as_deref_mut() {
                                        r.on_blocked(&what);
                                    }
                                    log.push(format!("round {round}: replication blocked: {what}"));
                                    return ManagedOutcome::ResourcesExceeded { reason: what, log };
                                }
                                Err(e) => {
                                    if let Some(r) = rec.as_deref_mut() {
                                        r.invalidate();
                                    }
                                    log.push(format!("round {round}: replication failed: {e}"));
                                }
                            }
                        }
                        None => {
                            if let Some(r) = rec.as_deref_mut() {
                                r.invalidate();
                            }
                            log.push(format!("round {round}: no replication candidate"));
                        }
                    }
                }
                Err(e) => {
                    if let Some(r) = rec.as_deref_mut() {
                        r.invalidate();
                    }
                    log.push(format!("round {round}: vnorm failed: {e}"));
                }
            }
        }
        if !changed {
            break; // nothing left to try
        }
        rewritten = true;
    }

    if let Some(r) = rec {
        r.invalidate();
    }
    opts.obs.add("vol.escalations", 1);
    log.push("falling back to run-time regeneration".into());
    ManagedOutcome::NeedsRegeneration {
        dag: work,
        best_effort,
        log,
    }
}

/// Run-time re-entry of the hierarchy (§3.5 + Fig. 6's regeneration
/// tier): re-solves an assay's volumes with *observed* node
/// availability (in nl) as hard production caps.
///
/// This is the DAGSolve-only fast path — no LP and no rewrites, since
/// it runs mid-execution where a rewritten DAG could no longer be
/// mapped back onto the already-emitted instruction stream. If the
/// capped assignment underflows (the observed volumes are too small to
/// meter), the caller must fall back to regeneration; that is reported
/// as [`ManagedOutcome::NeedsRegeneration`] with the best-effort
/// assignment attached.
pub fn replan_with_observations(
    dag: &Dag,
    machine: &Machine,
    opts: &VolumeManagerOptions,
    observed_nl: &std::collections::HashMap<aqua_dag::NodeId, Ratio>,
) -> ManagedOutcome {
    let mut log = vec![format!(
        "run-time replan with {} observed volumes",
        observed_nl.len()
    )];
    match dagsolve::solve_capped(dag, machine, &opts.output_weights, observed_nl) {
        Ok(sol) => match sol.underflow {
            None => {
                log.push("replan: DAGSolve (capped) succeeded".into());
                ManagedOutcome::Solved {
                    volumes: ManagedVolumes {
                        edge_volumes_nl: sol.edge_volumes_nl.clone(),
                        node_volumes_nl: sol.node_volumes_nl.clone(),
                        method: Method::DagSolve,
                    },
                    dag: dag.clone(),
                    log,
                }
            }
            Some(ref under) => {
                log.push(format!(
                    "replan: capped DAGSolve underflowed ({})",
                    under.volume_nl
                ));
                ManagedOutcome::NeedsRegeneration {
                    dag: dag.clone(),
                    best_effort: Some(sol),
                    log,
                }
            }
        },
        Err(e) => {
            log.push(format!("replan: DAGSolve error: {e}"));
            ManagedOutcome::NeedsRegeneration {
                dag: dag.clone(),
                best_effort: None,
                log,
            }
        }
    }
}

/// Runs the Figure 6 hierarchy on many independent assays in parallel
/// (one task per DAG on [`aqua_lp::batch`]'s work-stealing pool).
///
/// Results are in input order and identical to calling
/// [`manage_volumes`] sequentially on each DAG — the hierarchy is a
/// pure function of its inputs, so parallelism affects wall time only.
///
/// # Examples
///
/// ```
/// use aqua_dag::Dag;
/// use aqua_volume::{solve_assays_parallel, Machine, VolumeManagerOptions};
///
/// let dags: Vec<Dag> = (0..3)
///     .map(|k| {
///         let mut d = Dag::new();
///         let a = d.add_input("A");
///         let b = d.add_input("B");
///         let m = d.add_mix("mx", &[(a, 1), (b, k + 1)], 0).unwrap();
///         d.add_process("s", "sense.OD", m);
///         d
///     })
///     .collect();
/// let outs = solve_assays_parallel(&dags, &Machine::paper_default(), &Default::default());
/// assert!(outs.iter().all(|o| o.is_solved()));
/// ```
pub fn solve_assays_parallel(
    dags: &[Dag],
    machine: &Machine,
    opts: &VolumeManagerOptions,
) -> Vec<ManagedOutcome> {
    aqua_lp::batch::run_parallel(dags.len(), |i| manage_volumes(&dags[i], machine, opts))
}

/// [`solve_assays_parallel`] with an explicit worker-thread count.
/// Results are in input order and identical for every `threads` value;
/// the determinism tests pin exactly this across 1, 2, and 8 workers.
pub fn solve_assays_parallel_threads(
    dags: &[Dag],
    machine: &Machine,
    opts: &VolumeManagerOptions,
    threads: usize,
) -> Vec<ManagedOutcome> {
    aqua_lp::batch::run_parallel_threads(dags.len(), threads, |i| {
        manage_volumes(&dags[i], machine, opts)
    })
}

/// Converts an LP float (nl) to an exact ratio via milli-least-count
/// quantization; only used for reporting source loads.
fn float_to_ratio_nl(v: f64) -> Ratio {
    let scaled = (v * 1_000_000.0).round() as i128;
    Ratio::new(scaled, 1_000_000).unwrap_or(Ratio::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_assay_solves_with_dagsolve() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let out = manage_volumes(&d, &Machine::paper_default(), &Default::default());
        match out {
            ManagedOutcome::Solved { volumes, .. } => {
                assert_eq!(volumes.method, Method::DagSolve);
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn extreme_ratio_is_rescued_by_cascading() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let out = manage_volumes(&d, &Machine::paper_default(), &Default::default());
        match out {
            ManagedOutcome::Solved { volumes, dag, .. } => {
                assert_eq!(volumes.method, Method::DagSolveAfterRewrites);
                // The rewritten DAG gained cascade stages.
                assert!(dag.num_nodes() > d.num_nodes());
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn numerous_uses_are_rescued_by_replication() {
        // 1500 equal uses of one fluid: each transfer is 100/1500 nl
        // = 0.067 < 0.1 least count. No extreme ratios (all mixes 1:1),
        // so only replication can help.
        let mut d = Dag::new();
        let stock = d.add_input("stock");
        let other = d.add_input("other");
        for i in 0..1500 {
            let m = d
                .add_mix(format!("m{i}"), &[(stock, 1), (other, 1)], 0)
                .unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let mut machine = Machine::paper_default();
        machine.reservoirs = 64;
        machine.input_ports = 64;
        let opts = VolumeManagerOptions {
            use_lp: false, // LP can't fix a structural underflow either
            ..Default::default()
        };
        let out = manage_volumes(&d, &machine, &opts);
        match out {
            ManagedOutcome::Solved { volumes, .. } => {
                assert_eq!(volumes.method, Method::DagSolveAfterRewrites);
                let min = volumes
                    .edge_volumes_nl
                    .iter()
                    .filter(|v| v.is_positive())
                    .min()
                    .unwrap();
                assert!(*min >= machine.least_count_nl());
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn resource_exhaustion_fails_compilation() {
        let mut d = Dag::new();
        let stock = d.add_input("stock");
        let other = d.add_input("other");
        for i in 0..1500 {
            let m = d
                .add_mix(format!("m{i}"), &[(stock, 1), (other, 1)], 0)
                .unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let mut machine = Machine::paper_default();
        machine.input_ports = 2; // replication cannot add inputs
        let opts = VolumeManagerOptions {
            use_lp: false,
            ..Default::default()
        };
        let out = manage_volumes(&d, &machine, &opts);
        assert!(matches!(out, ManagedOutcome::ResourcesExceeded { .. }));
    }

    #[test]
    fn impossible_assay_falls_back_to_regeneration() {
        // Forbid excess production: the extreme mix cannot be cascaded,
        // LP is infeasible, replication does not change ratios.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let opts = VolumeManagerOptions {
            allow_excess: false,
            ..Default::default()
        };
        let out = manage_volumes(&d, &Machine::paper_default(), &opts);
        match out {
            ManagedOutcome::NeedsRegeneration { best_effort, .. } => {
                assert!(best_effort.expect("has best effort").underflow.is_some());
            }
            other => panic!("expected regeneration fallback, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    /// Determinism across thread counts: the same assay batch managed
    /// with 1, 2, and 8 workers must produce identical outcomes in
    /// input order — same method, same log, same exact volumes.
    #[test]
    fn parallel_assays_are_identical_across_thread_counts() {
        let dags: Vec<Dag> = (0..12)
            .map(|k: u64| {
                let mut d = Dag::new();
                let a = d.add_input("A");
                let b = d.add_input("B");
                // Ratios from mild (1:3) to extreme (1:1603) so the
                // batch exercises DAGSolve, LP, and cascade paths.
                let m = d
                    .add_mix("mx", &[(a, 1), (b, (k % 5) * 400 + 3)], 0)
                    .unwrap();
                d.add_process("s", "sense.OD", m);
                d
            })
            .collect();
        let machine = Machine::paper_default();
        let opts = VolumeManagerOptions::default();
        let baseline = solve_assays_parallel_threads(&dags, &machine, &opts, 1);
        for threads in [2usize, 8] {
            let run = solve_assays_parallel_threads(&dags, &machine, &opts, threads);
            assert_eq!(run.len(), baseline.len());
            for (i, (a, b)) in baseline.iter().zip(&run).enumerate() {
                match (a, b) {
                    (
                        ManagedOutcome::Solved {
                            volumes: va,
                            log: la,
                            ..
                        },
                        ManagedOutcome::Solved {
                            volumes: vb,
                            log: lb,
                            ..
                        },
                    ) => {
                        assert_eq!(va.method, vb.method, "assay {i}, {threads} threads");
                        assert_eq!(va.edge_volumes_nl, vb.edge_volumes_nl, "assay {i}");
                        assert_eq!(va.node_volumes_nl, vb.node_volumes_nl, "assay {i}");
                        assert_eq!(la, lb, "assay {i}");
                    }
                    other => panic!("outcome mismatch at assay {i}: {other:?}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod replan_tests {
    use super::*;
    use std::collections::HashMap;

    fn simple() -> (Dag, aqua_dag::NodeId) {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 4)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        (d, b)
    }

    #[test]
    fn observations_cap_the_replan() {
        let (d, b) = simple();
        let machine = Machine::paper_default();
        let mut obs = HashMap::new();
        obs.insert(b, Ratio::from_int(40));
        let out = replan_with_observations(&d, &machine, &Default::default(), &obs);
        match out {
            ManagedOutcome::Solved { volumes, .. } => {
                assert_eq!(volumes.method, Method::DagSolve);
                assert!(volumes.node_volumes_nl[b.index()] <= Ratio::from_int(40));
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }

    #[test]
    fn starved_observation_forces_regeneration() {
        // Observed availability below the least count: capped DAGSolve
        // underflows, so the replan reports the regeneration fallback.
        let (d, b) = simple();
        let machine = Machine::paper_default();
        let mut obs = HashMap::new();
        obs.insert(b, Ratio::new(1, 100).unwrap());
        let out = replan_with_observations(&d, &machine, &Default::default(), &obs);
        assert!(matches!(out, ManagedOutcome::NeedsRegeneration { .. }));
    }
}

#[cfg(test)]
mod no_excess_tests {
    use super::*;

    #[test]
    fn protected_fluids_are_never_cascaded() {
        let mut d = Dag::new();
        let a = d.add_input("PreciousSample");
        let b = d.add_input("Buffer");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let opts = VolumeManagerOptions {
            no_excess_fluids: vec!["PreciousSample".into()],
            ..Default::default()
        };
        let out = manage_volumes(&d, &Machine::paper_default(), &opts);
        match out {
            ManagedOutcome::NeedsRegeneration { dag, log, .. } => {
                // No cascade stages were added for the protected mix.
                assert_eq!(dag.num_nodes(), d.num_nodes());
                assert!(log.iter().any(|l| l.contains("cascade skipped")), "{log:?}");
            }
            other => panic!("expected regeneration fallback, got {other:?}"),
        }
    }

    #[test]
    fn unprotected_fluids_still_cascade() {
        let mut d = Dag::new();
        let a = d.add_input("Dye");
        let b = d.add_input("Buffer");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let opts = VolumeManagerOptions {
            no_excess_fluids: vec!["SomethingElse".into()],
            ..Default::default()
        };
        let out = manage_volumes(&d, &Machine::paper_default(), &opts);
        assert!(out.is_solved());
    }
}

#[cfg(test)]
mod weighted_lp_tests {
    use super::*;
    use aqua_rational::Ratio;

    /// A weighted assay that DAGSolve cannot satisfy directly (extreme
    /// ratio forces the LP / rewrites): the LP fallback must honor the
    /// weights instead of fighting them with the anti-skew band.
    #[test]
    fn lp_fallback_respects_output_weights() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let heavy = d.add_mix("heavy", &[(a, 1), (b, 1)], 0).unwrap();
        let light = d.add_mix("light", &[(a, 1), (b, 999)], 0).unwrap();
        let oh = d.add_output("oh", heavy);
        let ol = d.add_output("ol", light);
        let mut opts = VolumeManagerOptions::default();
        opts.output_weights.insert(oh, Ratio::from_int(5));
        opts.output_weights.insert(ol, Ratio::ONE);
        let out = manage_volumes(&d, &Machine::paper_default(), &opts);
        match out {
            ManagedOutcome::Solved { volumes, dag, .. } => {
                // Whatever solver won, the outcome satisfies the least
                // count everywhere.
                let lc = Machine::paper_default().least_count_nl();
                for e in dag.edge_ids() {
                    if !dag.edge_is_live(e) {
                        continue;
                    }
                    if dag.node(dag.edge(e).dst).kind == aqua_dag::NodeKind::Excess {
                        continue;
                    }
                    assert!(volumes.edge_volumes_nl[e.index()] >= lc);
                }
            }
            other => panic!("expected solved, got {other:?}"),
        }
    }
}
