//! Statically-unknown volumes: DAG partitioning and run-time dispensing
//! (§3.5, Figures 8 and 13).
//!
//! Two kinds of nodes get their out-edges cut at compile time:
//!
//! 1. *unknown-volume* nodes (separations whose yield is measured at run
//!    time) — their consumers become constrained inputs bound to the
//!    measurement;
//! 2. *multi-use* nodes any of whose uses transitively reaches an
//!    unknown-volume node — the relative split among such uses cannot
//!    be decided statically, so the node becomes an output of its
//!    producing partition and each use conservatively receives an
//!    `m/N` share (the paper's refinement merges `m` same-partition
//!    uses into one constrained input).
//!
//! The remaining weakly-connected components are the partitions. Vnorm
//! computation stays at compile time (per partition); only the final
//! dispensing step moves to run time, where it costs microseconds on
//! the electronic controller.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use aqua_dag::{Dag, EdgeId, NodeId, NodeKind, Ratio};

use crate::dagsolve::{dispense, VolumeAssignment};
use crate::machine::Machine;
use crate::vnorm::{self, VnormError, VnormTable};

/// How a constrained input's available volume is determined.
#[derive(Debug, Clone, PartialEq)]
pub enum Binding {
    /// Fixed at compile time: an input fluid split across partitions
    /// gets `share` of the machine maximum.
    Static {
        /// Available volume in nl.
        volume_nl: Ratio,
    },
    /// Bound at run time to `share` of the volume produced (or measured,
    /// for unknown-volume nodes) by a node of an earlier partition.
    Runtime {
        /// Index of the producing partition in [`PartitionPlan`].
        partition: usize,
        /// The producing node, in that partition's local ids.
        source: NodeId,
        /// This consumer's share of the produced volume.
        share: Ratio,
    },
}

/// One compile-time partition: a self-contained sub-DAG whose leaves are
/// original outputs, unknown-volume separations, or cut multi-use nodes.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The partition's local DAG (constrained inputs included).
    pub dag: Dag,
    /// Binding for each constrained-input node (local id).
    pub bindings: HashMap<NodeId, Binding>,
    /// Map from original DAG node ids to local ids.
    pub node_map: HashMap<NodeId, NodeId>,
    /// Map from original DAG edge ids to this partition's local edge
    /// ids. Covers internal edges and cut edges (a cut edge maps to the
    /// constrained-input edge that replaces it on the consumer side).
    pub edge_map: HashMap<EdgeId, EdgeId>,
    /// Compile-time Vnorm table for the local DAG.
    pub vnorms: VnormTable,
}

impl Partition {
    /// Looks up a local node id by original-DAG node id.
    pub fn local(&self, original: NodeId) -> Option<NodeId> {
        self.node_map.get(&original).copied()
    }
}

/// The full compile-time plan: partitions in execution order.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// Partitions, topologically ordered by their runtime bindings.
    pub partitions: Vec<Partition>,
}

impl PartitionPlan {
    /// The partition containing an original node, with its local id.
    pub fn locate(&self, original: NodeId) -> Option<(usize, NodeId)> {
        self.partitions
            .iter()
            .enumerate()
            .find_map(|(i, p)| p.local(original).map(|l| (i, l)))
    }
}

/// Error from partitioning or run-time dispensing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The Vnorm pass failed inside a partition.
    Vnorm(VnormError),
    /// A runtime binding referenced a measurement that was not provided.
    MissingMeasurement {
        /// Index of the partition whose node needed measuring.
        partition: usize,
        /// Name of the node.
        node: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Vnorm(e) => write!(f, "{e}"),
            PartitionError::MissingMeasurement { partition, node } => write!(
                f,
                "no run-time measurement provided for `{node}` of partition {partition}"
            ),
        }
    }
}

impl Error for PartitionError {}

impl From<VnormError> for PartitionError {
    fn from(e: VnormError) -> PartitionError {
        PartitionError::Vnorm(e)
    }
}

/// Whether the DAG needs partitioning at all.
pub fn has_unknown_volumes(dag: &Dag) -> bool {
    dag.node_ids()
        .any(|n| matches!(dag.node(n).kind, NodeKind::Separate { fraction: None }))
}

/// Builds the compile-time partition plan.
///
/// # Errors
///
/// Returns [`PartitionError::Vnorm`] if a partition's Vnorm pass fails
/// (structural DAG problems).
pub fn partition(dag: &Dag, machine: &Machine) -> Result<PartitionPlan, PartitionError> {
    let n = dag.num_nodes();

    // --- Which nodes' out-edges get cut? ---
    let unknown: Vec<NodeId> = dag
        .node_ids()
        .filter(|&id| matches!(dag.node(id).kind, NodeKind::Separate { fraction: None }))
        .collect();
    let mut reaches_unknown = vec![false; n];
    for &u in &unknown {
        for id in dag.backward_slice(u) {
            reaches_unknown[id.index()] = true;
        }
    }
    let mut cut_source = vec![false; n];
    for id in dag.node_ids() {
        let is_unknown = matches!(dag.node(id).kind, NodeKind::Separate { fraction: None });
        let multi_use_tainted = !is_unknown
            && dag.num_uses(id) >= 2
            && dag
                .out_edges(id)
                .iter()
                .any(|&e| reaches_unknown[dag.edge(e).dst.index()]);
        cut_source[id.index()] = is_unknown || multi_use_tainted;
    }

    // --- Component labelling over the uncut edges. ---
    // Cut *input* nodes are dissolved entirely (their volume is a static
    // split); other cut nodes stay in their producing component.
    let dissolved =
        |id: NodeId| -> bool { cut_source[id.index()] && dag.node(id).kind.is_source() };
    let mut comp = vec![usize::MAX; n];
    let mut next_comp = 0usize;
    for start in dag.node_ids() {
        if comp[start.index()] != usize::MAX || dissolved(start) {
            continue;
        }
        let c = next_comp;
        next_comp += 1;
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if comp[id.index()] != usize::MAX || dissolved(id) {
                continue;
            }
            comp[id.index()] = c;
            if !cut_source[id.index()] {
                for &e in dag.out_edges(id) {
                    stack.push(dag.edge(e).dst);
                }
            }
            for &e in dag.in_edges(id) {
                let src = dag.edge(e).src;
                if !cut_source[src.index()] {
                    stack.push(src);
                }
            }
        }
    }

    // --- Execution order: a cut node's partition precedes its
    // consumers' partitions.
    let mut comp_deps: Vec<Vec<usize>> = vec![Vec::new(); next_comp];
    for id in dag.node_ids() {
        if !cut_source[id.index()] || dissolved(id) {
            continue;
        }
        let producer_comp = comp[id.index()];
        for &e in dag.out_edges(id) {
            let consumer_comp = comp[dag.edge(e).dst.index()];
            if consumer_comp != producer_comp {
                comp_deps[consumer_comp].push(producer_comp);
            }
        }
    }
    let comp_order = topo_components(&comp_deps);
    // comp id -> position in execution order.
    let mut comp_rank = vec![usize::MAX; next_comp];
    for (rank, &c) in comp_order.iter().enumerate() {
        comp_rank[c] = rank;
    }

    // --- Materialize each partition (in execution order). ---
    let mut partitions: Vec<Partition> = Vec::with_capacity(next_comp);
    for &c in &comp_order {
        let mut local = Dag::new();
        let mut node_map: HashMap<NodeId, NodeId> = HashMap::new();
        for id in dag.node_ids() {
            if comp[id.index()] == c {
                let node = dag.node(id);
                let lid = local.add_node(node.name.clone(), node.kind.clone());
                node_map.insert(id, lid);
            }
        }
        let mut edge_map = HashMap::new();
        for e in dag.edge_ids() {
            if !dag.edge_is_live(e) {
                continue;
            }
            let edge = dag.edge(e);
            if cut_source[edge.src.index()] {
                continue; // cut edge: becomes a constrained input below
            }
            if let (Some(&ls), Some(&ld)) = (node_map.get(&edge.src), node_map.get(&edge.dst)) {
                let le = local.add_edge(ls, ld, edge.fraction);
                edge_map.insert(e, le);
            }
        }
        partitions.push(Partition {
            dag: local,
            bindings: HashMap::new(),
            node_map,
            edge_map,
            vnorms: VnormTable {
                node: Vec::new(),
                edge: Vec::new(),
                load: Vec::new(),
            },
        });
    }

    // --- Constrained inputs for cut edges, merged per (source,
    // consumer partition) — the paper's m/N refinement.
    for id in dag.node_ids() {
        if !cut_source[id.index()] {
            continue;
        }
        let uses: Vec<EdgeId> = dag.out_edges(id).to_vec();
        let total_uses = uses.len();
        if total_uses == 0 {
            continue;
        }
        let mut by_part: HashMap<usize, Vec<EdgeId>> = HashMap::new();
        for &e in &uses {
            let consumer = dag.edge(e).dst;
            by_part
                .entry(comp_rank[comp[consumer.index()]])
                .or_default()
                .push(e);
        }
        for (part_rank, edges) in by_part {
            let m = edges.len();
            let share = Ratio::new(m as i128, total_uses as i128).expect("nonzero uses");
            let binding = if dag.node(id).kind.is_source() {
                Binding::Static {
                    volume_nl: machine.max_capacity_nl() * share,
                }
            } else {
                let src_rank = comp_rank[comp[id.index()]];
                let src_local = partitions[src_rank].node_map[&id];
                Binding::Runtime {
                    partition: src_rank,
                    source: src_local,
                    share,
                }
            };
            let part = &mut partitions[part_rank];
            let ci = part
                .dag
                .add_constrained_input(format!("{}'", dag.node(id).name));
            for e in edges {
                let edge = dag.edge(e);
                let ld = part.node_map[&edge.dst];
                let le = part.dag.add_edge(ci, ld, edge.fraction);
                part.edge_map.insert(e, le);
            }
            part.bindings.insert(ci, binding);
        }
    }

    // --- Compile-time Vnorms per partition: each partition's table
    // depends only on its own local DAG, so the (potentially many)
    // computations fan out across the work-stealing pool. ---
    let tables =
        aqua_lp::batch::run_parallel(partitions.len(), |i| vnorm::compute(&partitions[i].dag));
    for (part, table) in partitions.iter_mut().zip(tables) {
        part.vnorms = table?;
    }

    Ok(PartitionPlan { partitions })
}

impl PartitionPlan {
    /// Dispenses every partition in order, resolving constrained inputs.
    ///
    /// `measure` supplies run-time measurements: called with
    /// `(partition index, local node id)` for unknown-volume nodes; for
    /// known-volume cut nodes the already-dispensed production is used
    /// and `measure` is not consulted.
    ///
    /// The scale of each partition is the paper's rule: the minimum over
    /// constrained inputs of `available / Vnorm`, further capped by the
    /// machine-capacity scale.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::MissingMeasurement`] if `measure`
    /// returns `None` for a needed unknown-volume node.
    pub fn dispense_all(
        &self,
        machine: &Machine,
        measure: impl FnMut(usize, NodeId) -> Option<Ratio>,
    ) -> Result<Vec<VolumeAssignment>, PartitionError> {
        self.dispense_upto(self.partitions.len().saturating_sub(1), machine, measure)
    }

    /// Dispenses partitions `0..=upto` only — the incremental form used
    /// by executors, which dispense each partition just before running
    /// it (later partitions' measurements do not exist yet).
    ///
    /// # Errors
    ///
    /// See [`PartitionPlan::dispense_all`].
    pub fn dispense_upto(
        &self,
        upto: usize,
        machine: &Machine,
        mut measure: impl FnMut(usize, NodeId) -> Option<Ratio>,
    ) -> Result<Vec<VolumeAssignment>, PartitionError> {
        let mut results: Vec<VolumeAssignment> = Vec::with_capacity(upto + 1);
        for part in self.partitions.iter().take(upto + 1) {
            let max_load = part.vnorms.max_load();
            let mut scale = if max_load.is_positive() {
                machine.max_capacity_nl() / max_load
            } else {
                Ratio::ZERO
            };
            for (&ci, binding) in &part.bindings {
                let available = match binding {
                    Binding::Static { volume_nl } => *volume_nl,
                    Binding::Runtime {
                        partition,
                        source,
                        share,
                    } => {
                        let src_part = &self.partitions[*partition];
                        let produced = if matches!(
                            src_part.dag.node(*source).kind,
                            NodeKind::Separate { fraction: None }
                        ) {
                            measure(*partition, *source).ok_or_else(|| {
                                PartitionError::MissingMeasurement {
                                    partition: *partition,
                                    node: src_part.dag.node(*source).name.clone(),
                                }
                            })?
                        } else {
                            results[*partition].node_nl(*source)
                        };
                        produced * *share
                    }
                };
                let demand = part.vnorms.node[ci.index()];
                if demand.is_positive() {
                    scale = scale.min(available / demand);
                }
            }
            results.push(dispense(&part.dag, machine, part.vnorms.clone(), scale));
        }
        Ok(results)
    }
}

fn topo_components(deps: &[Vec<usize>]) -> Vec<usize> {
    let n = deps.len();
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 new, 1 visiting, 2 done
    fn visit(c: usize, deps: &[Vec<usize>], state: &mut [u8], order: &mut Vec<usize>) {
        if state[c] != 0 {
            return;
        }
        state[c] = 1;
        for &d in &deps[c] {
            visit(d, deps, state, order);
        }
        state[c] = 2;
        order.push(c);
    }
    for c in 0..n {
        visit(c, deps, &mut state, &mut order);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    /// A glycomics-shaped chain: mix -> unknown separate -> mix -> ...
    fn glycomics_like() -> (Dag, NodeId, NodeId, NodeId) {
        let mut d = Dag::new();
        let buf1a = d.add_input("buffer1a");
        let sample = d.add_input("sample");
        let m1 = d.add_mix("m1", &[(buf1a, 1), (sample, 1)], 30).unwrap();
        let sep1 = d.add_separate("sep1", m1, None);
        let buf2 = d.add_input("buffer2");
        let m2 = d.add_mix("m2", &[(sep1, 1), (buf2, 1)], 30).unwrap();
        let buf3a = d.add_input("buffer3a");
        let m3 = d.add_mix("m3", &[(m2, 1), (buf3a, 10)], 30).unwrap();
        let sep2 = d.add_separate("sep2", m3, None);
        let naoh = d.add_input("NaOH");
        let buf4 = d.add_input("buffer4");
        let m4 = d
            .add_mix("m4", &[(sep2, 1), (buf4, 100), (naoh, 1)], 30)
            .unwrap();
        let m5 = d.add_mix("m5", &[(m4, 1), (buf3a, 1)], 30).unwrap();
        let sep3 = d.add_separate("sep3", m5, None);
        let buf5 = d.add_input("buffer5");
        let m6 = d.add_mix("m6", &[(sep3, 1), (buf5, 1)], 30).unwrap();
        let _ = m6;
        (d, buf3a, sep2, m4)
    }

    #[test]
    fn glycomics_partitions_into_four() {
        let (d, _, _, _) = glycomics_like();
        let plan = partition(&d, &Machine::paper_default()).unwrap();
        assert_eq!(plan.partitions.len(), 4);
    }

    #[test]
    fn shared_buffer_is_split_fifty_fifty() {
        // buffer3a is used by partitions 2 and 3: each constrained input
        // gets 50 nl (Figure 13).
        let (d, buf3a, _, _) = glycomics_like();
        let machine = Machine::paper_default();
        let plan = partition(&d, &machine).unwrap();
        let mut static_bindings = Vec::new();
        for part in &plan.partitions {
            for b in part.bindings.values() {
                if let Binding::Static { volume_nl } = b {
                    static_bindings.push(*volume_nl);
                }
            }
        }
        let _ = buf3a;
        assert_eq!(
            static_bindings,
            vec![Ratio::from_int(50), Ratio::from_int(50)]
        );
    }

    #[test]
    fn x2_vnorm_is_1_over_204() {
        // Figure 13: in the third partition the constrained input coming
        // from sep2 has Vnorm 1/204 (1/102 of the 1:100:1 mix, which is
        // half of the following 1:1 mix, which feeds the sink).
        let (d, _, sep2, m4) = glycomics_like();
        let machine = Machine::paper_default();
        let plan = partition(&d, &machine).unwrap();
        // Find the partition containing m4.
        let (pi, m4_local) = plan.locate(m4).unwrap();
        let part = &plan.partitions[pi];
        // Its constrained input bound to sep2's measurement:
        let (ci, binding) = part
            .bindings
            .iter()
            .find(|(_, b)| matches!(b, Binding::Runtime { .. }))
            .expect("has runtime binding");
        if let Binding::Runtime { share, .. } = binding {
            assert_eq!(*share, Ratio::ONE);
        }
        assert_eq!(part.vnorms.node[ci.index()], r(1, 204));
        let _ = (sep2, m4_local);
    }

    #[test]
    fn dispense_scales_to_measured_volume() {
        let (d, _, _, _) = glycomics_like();
        let machine = Machine::paper_default();
        let plan = partition(&d, &machine).unwrap();
        // Measurements: every unknown separation yields 10 nl.
        let results = plan
            .dispense_all(&machine, |_, _| Some(Ratio::from_int(10)))
            .unwrap();
        assert_eq!(results.len(), 4);
        // Every partition's constrained inputs stay within availability.
        for (pi, part) in plan.partitions.iter().enumerate() {
            for (&ci, binding) in &part.bindings {
                let available = match binding {
                    Binding::Static { volume_nl } => *volume_nl,
                    Binding::Runtime { share, .. } => Ratio::from_int(10) * *share,
                };
                assert!(
                    results[pi].node_nl(ci) <= available,
                    "partition {pi} overdraws its constrained input"
                );
            }
        }
    }

    #[test]
    fn missing_measurement_is_reported() {
        let (d, _, _, _) = glycomics_like();
        let machine = Machine::paper_default();
        let plan = partition(&d, &machine).unwrap();
        let err = plan.dispense_all(&machine, |_, _| None).unwrap_err();
        assert!(matches!(err, PartitionError::MissingMeasurement { .. }));
    }

    #[test]
    fn figure8_multi_use_node_is_cut_and_split() {
        // X feeds Y (plain sink) and, transitively, unknown U.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let x = d.add_process("X", "incubate", a);
        let _y = d.add_process("Y", "sense.OD", x);
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(x, 1), (b, 1)], 0).unwrap();
        let _u = d.add_separate("U", m, None);
        let machine = Machine::paper_default();
        let plan = partition(&d, &machine).unwrap();
        // X's producing partition + Y's partition + U's partition = 3.
        assert_eq!(plan.partitions.len(), 3);
        // Both consumers got a constrained input with share 1/2.
        let mut shares = Vec::new();
        for part in &plan.partitions {
            for b in part.bindings.values() {
                if let Binding::Runtime { share, .. } = b {
                    shares.push(*share);
                }
            }
        }
        assert_eq!(shares, vec![r(1, 2), r(1, 2)]);
    }

    #[test]
    fn no_unknowns_is_one_partition() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        assert!(!has_unknown_volumes(&d));
        let plan = partition(&d, &Machine::paper_default()).unwrap();
        assert_eq!(plan.partitions.len(), 1);
        assert!(plan.partitions[0].bindings.is_empty());
    }
}
