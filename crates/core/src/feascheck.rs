//! Exact feasibility pre-check for the RVol LP (the perfect-mixability
//! direction of arXiv:1806.08875, specialized to Figure 3's formulation).
//!
//! The LP's ratio rows force every live in-edge of a node to carry a
//! fixed share of that node's total inflow, so the whole system reduces
//! to one variable per node: its total inflow `t` in least-count units
//! (for sources, the load variable). All remaining constraint classes
//! become *monotone* lower bounds on `t` — minimum transfer volumes,
//! excess-edge floors, and non-deficit demands that propagate from
//! consumers to producers — plus per-node capacity ceilings. On a DAG
//! the pointwise-minimal solution is therefore computed by one reverse-
//! topological pass, and the system is infeasible whenever some node's
//! minimal inflow already exceeds its ceiling.
//!
//! The check is **sound but not complete**: it deliberately relaxes the
//! anti-skew output band (dropping constraints can only shrink the set
//! of provable infeasibilities) and bails out as [`Unsupported`] on
//! structures whose reduction is not a pure lower-bound system (an
//! excess node with several live in-edges couples its producers through
//! the ratio rows). A `Proven` verdict is a constructive certificate
//! that the exact rational LP — and hence the f64 LP the simplex sees —
//! has no solution; anything else means "run the solver".
//!
//! [`crate::manage_volumes`] consults this check before every LP
//! fallback, which removes the dominant cost of compiling assays whose
//! LPs are infeasible (the enzyme-family DAGs spend ~80% of a cold
//! compile proving two infeasibilities the hard way). The incremental
//! replanner reuses the table across edits by recomputing only the
//! dirty backward slice.

use aqua_dag::{Dag, NodeId, NodeKind, Ratio};

use crate::machine::Machine;

/// Result of analyzing a DAG's LP feasibility structure.
#[derive(Debug, Clone, PartialEq)]
pub enum Analysis {
    /// The LP is infeasible, with an exact certificate.
    Proven(DemandTable),
    /// No infeasibility certificate found; the LP may well be feasible.
    Unproven(DemandTable),
    /// The DAG uses a structure the reduction does not model exactly;
    /// nothing can be concluded.
    Unsupported,
}

impl Analysis {
    /// Whether infeasibility was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, Analysis::Proven(_))
    }
}

/// Minimal-inflow table in least-count units, one entry per node.
///
/// `lb[n]` is a valid lower bound on node `n`'s total inflow (its load
/// variable for sources) in *any* feasible LP solution; `cap[n]` is its
/// ceiling (`None` when the LP has no capacity row for the node). The
/// table is a pure function of the DAG's isomorphism class, so values
/// computed on a session's retained DAG transfer to the canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTable {
    /// Lower bound per node, indexed by [`NodeId::index`].
    pub lb: Vec<Ratio>,
    /// Capacity ceiling per node (least-count units), where the LP has
    /// a cap row.
    pub cap: Vec<Option<Ratio>>,
}

impl DemandTable {
    /// Whether any node's minimal inflow exceeds its ceiling — the
    /// infeasibility certificate.
    pub fn infeasible(&self) -> bool {
        self.lb
            .iter()
            .zip(&self.cap)
            .any(|(lb, cap)| cap.map(|c| *lb > c).unwrap_or(false))
    }
}

/// Analyzes a DAG against the RVol LP's feasibility structure.
///
/// `Proven` means the LP built by [`crate::lpform::build`] with the
/// least-count floor enabled has no solution; `Unproven` carries the
/// demand table anyway (the incremental replanner caches it);
/// `Unsupported` means the reduction does not apply.
pub fn analyze(dag: &Dag, machine: &Machine) -> Analysis {
    let Ok(order) = dag.topological_order() else {
        return Analysis::Unsupported;
    };
    let mut table = DemandTable {
        lb: vec![Ratio::ZERO; dag.num_nodes()],
        cap: vec![None; dag.num_nodes()],
    };
    for &id in order.iter().rev() {
        match node_bounds(dag, machine, id, &table.lb) {
            Ok(Some((lb, cap))) => {
                table.lb[id.index()] = lb;
                table.cap[id.index()] = cap;
            }
            Ok(None) => {}
            Err(Unsupported) => return Analysis::Unsupported,
        }
    }
    if table.infeasible() {
        Analysis::Proven(table)
    } else {
        Analysis::Unproven(table)
    }
}

/// Marker for structures outside the reduction (or overflowing exact
/// arithmetic mid-proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unsupported;

/// Recomputes the table entries for `nodes` (which must be given in
/// reverse topological order and must contain every node whose
/// downstream bounds changed). Entries outside `nodes` are reused.
///
/// # Errors
///
/// Returns [`Unsupported`] under the same conditions as [`analyze`];
/// callers must then discard the table and fall back to a full
/// recompile.
pub fn recompute(
    table: &mut DemandTable,
    dag: &Dag,
    machine: &Machine,
    nodes: &[NodeId],
) -> Result<(), Unsupported> {
    for &id in nodes {
        match node_bounds(dag, machine, id, &table.lb)? {
            Some((lb, cap)) => {
                table.lb[id.index()] = lb;
                table.cap[id.index()] = cap;
            }
            None => {
                table.lb[id.index()] = Ratio::ZERO;
                table.cap[id.index()] = None;
            }
        }
    }
    Ok(())
}

/// Computes one node's `(lower bound, ceiling)` from its own structure
/// and its consumers' already-final lower bounds. `None` means the node
/// has no variable in the reduction (an excess sink, or an unused
/// non-source).
#[allow(clippy::type_complexity)]
fn node_bounds(
    dag: &Dag,
    machine: &Machine,
    id: NodeId,
    lb: &[Ratio],
) -> Result<Option<(Ratio, Option<Ratio>)>, Unsupported> {
    let node = dag.node(id);
    let span = machine.span();
    let is_source = node.kind.is_source();

    let live_in: Vec<_> = dag
        .in_edges(id)
        .iter()
        .copied()
        .filter(|&e| dag.edge_is_live(e))
        .collect();
    let live_out: Vec<_> = dag
        .out_edges(id)
        .iter()
        .copied()
        .filter(|&e| dag.edge_is_live(e))
        .collect();

    if node.kind == NodeKind::Excess {
        // An excess sink's inflow is fixed by its producer's excess
        // rows; with one in-edge every constraint on it is already
        // expressed at the producer. Several in-edges would couple the
        // producers through the ratio rows — outside the reduction.
        return if live_in.len() > 1 {
            Err(Unsupported)
        } else {
            Ok(None)
        };
    }
    if !is_source && live_in.is_empty() && live_out.is_empty() {
        return Ok(None);
    }

    // Production factor: output volume per unit of inflow.
    let prod_factor = match &node.kind {
        NodeKind::Separate { fraction: Some(f) } => {
            if !f.is_positive() {
                return Err(Unsupported);
            }
            *f
        }
        NodeKind::Separate { fraction: None } if !live_out.is_empty() => {
            // Interior unknown volume: the hierarchy rejects this DAG
            // before any LP, but stay conservative.
            return Err(Unsupported);
        }
        _ => Ratio::ONE,
    };

    let mut bound = Ratio::ZERO;

    // Class 1 (minimum transfer) through the ratio rows: every live
    // in-edge carries fraction/sum(fractions) of the inflow, so the
    // smallest-fraction edge pins the floor.
    if !live_in.is_empty() {
        let mut frac_sum = Ratio::ZERO;
        let mut min_frac: Option<Ratio> = None;
        for &e in &live_in {
            let f = dag.edge(e).fraction;
            if !f.is_positive() {
                return Err(Unsupported);
            }
            frac_sum = frac_sum.checked_add(f).map_err(|_| Unsupported)?;
            min_frac = Some(min_frac.map_or(f, |m| m.min(f)));
        }
        let min_frac = min_frac.expect("nonempty");
        bound = bound.max(frac_sum.checked_div(min_frac).map_err(|_| Unsupported)?);
    }

    // Consumer demand and excess floors (classes 3, 5, 7).
    let mut useful = Ratio::ZERO;
    let mut discard_share = Ratio::ZERO;
    let mut excess_cap: Option<Ratio> = None;
    for &e in &live_out {
        let edge = dag.edge(e);
        if dag.node(edge.dst).kind == NodeKind::Excess {
            let share = edge.fraction;
            if !share.is_positive() {
                return Err(Unsupported);
            }
            discard_share = discard_share.checked_add(share).map_err(|_| Unsupported)?;
            // x = share * prod_factor * t, with 1 <= x <= span.
            let scale = share.checked_mul(prod_factor).map_err(|_| Unsupported)?;
            bound = bound.max(scale.checked_recip().map_err(|_| Unsupported)?);
            let ceil = span.checked_div(scale).map_err(|_| Unsupported)?;
            excess_cap = Some(excess_cap.map_or(ceil, |c| c.min(ceil)));
        } else {
            // This edge carries fraction/sum(dst fractions) of the
            // consumer's inflow, whose minimum is already final.
            let dst = edge.dst;
            let mut dst_sum = Ratio::ZERO;
            for &de in dag.in_edges(dst) {
                if dag.edge_is_live(de) {
                    dst_sum = dst_sum
                        .checked_add(dag.edge(de).fraction)
                        .map_err(|_| Unsupported)?;
                }
            }
            if !dst_sum.is_positive() {
                return Err(Unsupported);
            }
            let share = edge
                .fraction
                .checked_div(dst_sum)
                .map_err(|_| Unsupported)?;
            let need = share
                .checked_mul(lb[dst.index()])
                .map_err(|_| Unsupported)?;
            useful = useful.checked_add(need).map_err(|_| Unsupported)?;
        }
    }
    if !live_out.is_empty() {
        // Non-deficit: useful + discard_share * prod <= prod.
        let keep = Ratio::ONE
            .checked_sub(discard_share)
            .map_err(|_| Unsupported)?;
        if !keep.is_positive() {
            if useful.is_positive() || discard_share > Ratio::ONE {
                // Demands at least one least count from a node that
                // keeps nothing (or discards more than it makes).
                return Ok(Some((
                    span.checked_add(Ratio::ONE).map_err(|_| Unsupported)?,
                    Some(span),
                )));
            }
        } else {
            let denom = prod_factor.checked_mul(keep).map_err(|_| Unsupported)?;
            bound = bound.max(useful.checked_div(denom).map_err(|_| Unsupported)?);
        }
        if !is_source && live_in.is_empty() && bound.is_positive() {
            // No inflow variable exists (t = 0), yet consumers demand
            // fluid: the non-deficit row is unsatisfiable.
            return Ok(Some((
                span.checked_add(Ratio::ONE).map_err(|_| Unsupported)?,
                Some(span),
            )));
        }
    }

    // Class 2: capacity rows exist for sources and for nodes with live
    // inflow; excess out-edges tighten the ceiling further.
    let cap = if is_source || !live_in.is_empty() {
        Some(excess_cap.map_or(span, |c| c.min(span)))
    } else {
        excess_cap
    };
    Ok(Some((bound, cap)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lpform::{self, LpOptions};

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    fn figure2() -> Dag {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).unwrap();
        let l = d.add_mix("L", &[(b, 2), (c, 1)], 0).unwrap();
        d.add_mix("M", &[(k, 2), (l, 1)], 0).unwrap();
        d.add_mix("N", &[(l, 2), (c, 3)], 0).unwrap();
        d
    }

    /// Every `Proven` verdict must agree with the simplex; exercised
    /// over a family of mixes straddling the extreme-ratio threshold.
    #[test]
    fn proven_verdicts_match_the_simplex() {
        let machine = Machine::paper_default();
        for parts in [1u64, 9, 99, 500, 998, 999, 1000, 1500, 1999, 5000] {
            let mut d = Dag::new();
            let a = d.add_input("A");
            let b = d.add_input("B");
            let m = d.add_mix("mx", &[(a, 1), (b, parts)], 0).unwrap();
            d.add_process("s", "sense.OD", m);
            let verdict = analyze(&d, &machine);
            let form = lpform::build(&d, &machine, &LpOptions::rvol());
            let lp = aqua_lp::solve(&form.model);
            if verdict.is_proven() {
                assert!(
                    matches!(lp.status, aqua_lp::Status::Infeasible),
                    "1:{parts}: precheck proved infeasible but LP said {:?}",
                    lp.status
                );
            }
            if parts >= 1999 {
                // Strictly past the span: the certificate must be found.
                assert!(verdict.is_proven(), "1:{parts} should be proven");
            }
        }
    }

    #[test]
    fn feasible_paper_dag_is_unproven() {
        let verdict = analyze(&figure2(), &Machine::paper_default());
        assert!(matches!(verdict, Analysis::Unproven(_)));
    }

    #[test]
    fn shared_reagent_demand_overflow_is_proven() {
        // 200 consumers each drawing >= 5 least counts of one reagent:
        // the source's minimal load is >= 1000 least counts... push past
        // the span with 2001 consumers of >= 0.5 each.
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let stock = d.add_input("stock");
        let other = d.add_input("other");
        for i in 0..2001 {
            let m = d
                .add_mix(format!("m{i}"), &[(stock, 1), (other, 1)], 0)
                .unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        // Each mix needs inflow >= 2 (two edges, each >= 1 count), so
        // stock >= 2001 > 1000 = span.
        let verdict = analyze(&d, &machine);
        assert!(verdict.is_proven(), "{verdict:?}");
        let form = lpform::build(&d, &machine, &LpOptions::rvol());
        assert!(matches!(
            aqua_lp::solve(&form.model).status,
            aqua_lp::Status::Infeasible
        ));
    }

    #[test]
    fn excess_floor_tightens_the_proof() {
        // A producer discarding 999/1000 of its output must make 1000
        // counts per useful count; stacking two such stages overflows
        // capacity. Certificate comes from the excess floor.
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let a = d.add_input("A");
        let p = d.add_process("p", "incubate", a);
        d.add_excess("ex", p, r(9999, 10000));
        d.add_output("o", p);
        // useful >= 1, keep = 1/10000 => t >= 10000 > span.
        let verdict = analyze(&d, &machine);
        assert!(verdict.is_proven(), "{verdict:?}");
        let form = lpform::build(&d, &machine, &LpOptions::rvol());
        assert!(matches!(
            aqua_lp::solve(&form.model).status,
            aqua_lp::Status::Infeasible
        ));
    }

    #[test]
    fn multi_input_excess_is_unsupported() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let p = d.add_process("p", "incubate", a);
        let q = d.add_process("q", "incubate", b);
        let ex = d.add_excess("ex", p, r(1, 2));
        d.add_edge(q, ex, r(1, 2));
        d.add_output("o", p);
        d.add_output("o2", q);
        assert_eq!(
            analyze(&d, &Machine::paper_default()),
            Analysis::Unsupported
        );
    }

    #[test]
    fn table_recompute_matches_fresh_analysis() {
        // Change a fraction, recompute only the backward slice, and
        // compare against analyzing the edited DAG from scratch.
        let machine = Machine::paper_default();
        let mut d = figure2();
        let l = d.find_node("L").unwrap();
        let table = match analyze(&d, &machine) {
            Analysis::Unproven(t) => t,
            other => panic!("{other:?}"),
        };
        let e = d.in_edges(l)[0];
        let partner = d.in_edges(l)[1];
        d.set_edge_fraction(e, r(3, 4));
        d.set_edge_fraction(partner, r(1, 4));
        let dirty: Vec<NodeId> = {
            let slice = d.backward_slice(l);
            let order = d.topological_order().unwrap();
            let mut rev: Vec<NodeId> = order
                .iter()
                .rev()
                .copied()
                .filter(|n| slice.contains(n))
                .collect();
            if !rev.contains(&l) {
                rev.insert(0, l);
            }
            rev
        };
        let mut patched = table;
        recompute(&mut patched, &d, &machine, &dirty).unwrap();
        match analyze(&d, &machine) {
            Analysis::Unproven(fresh) | Analysis::Proven(fresh) => assert_eq!(patched, fresh),
            other => panic!("{other:?}"),
        }
    }
}
