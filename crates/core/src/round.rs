//! RVol → IVol rounding (§3.2, evaluated in §4.2).
//!
//! DAGSolve and LP solve the *rational* relaxation; real hardware meters
//! integer multiples of the least count. Rounding each transfer to the
//! nearest least-count multiple perturbs mix ratios slightly; the
//! chemistry tolerates small errors (the paper measured ≤ 2% on its
//! benchmarks), and this module measures exactly that error.

use std::error::Error;
use std::fmt;

use aqua_dag::{Dag, NodeKind, Ratio};

use crate::dagsolve::VolumeAssignment;
use crate::machine::Machine;

/// A least-count-integral volume assignment plus its rounding error.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundedAssignment {
    /// Rounded transfer volume per edge, in nl (exact least-count
    /// multiples).
    pub edge_volumes_nl: Vec<Ratio>,
    /// Rounded production per node: the sum of its rounded in-edge
    /// volumes (inputs keep their rounded total demand).
    pub node_volumes_nl: Vec<Ratio>,
    /// Largest relative mix-ratio error across all mix-node inputs.
    pub max_ratio_error: Ratio,
    /// Mean relative mix-ratio error across all mix-node inputs.
    pub mean_ratio_error: Ratio,
    /// Edges whose rounded volume fell below the least count (rounding
    /// can only cause this for transfers already within half a least
    /// count of the floor). Under [`round_assignment`] and
    /// [`round_lp_edges`] these edges are *clamped up to one least
    /// count* in `edge_volumes_nl` / `node_volumes_nl` — the hardware
    /// cannot meter less — while the ratio-error metrics are measured
    /// on the raw (unclamped) rounding, the paper's §4.2 metric, where
    /// a dropped transfer is a 100% error on its mix. Either way an
    /// underflowed mix fails [`Self::within_paper_tolerance`], so the
    /// hierarchy escalates instead of shipping the broken plan.
    /// [`round_apportioned`] records but does not clamp (its guarantee
    /// is per-node conservation, which a clamp would break).
    pub underflows: Vec<usize>,
}

impl RoundedAssignment {
    /// Whether the rounded volumes stay within the paper's measured
    /// mix-ratio tolerance (≤ 2% on its benchmarks, §4.2).
    pub fn within_paper_tolerance(&self) -> bool {
        self.max_ratio_error <= paper_ratio_tolerance()
    }
}

/// The paper's mix-ratio error tolerance: 2% (§4.2 measured ≤ 2% across
/// its benchmarks). The hierarchy rejects rounded assignments whose
/// clamped underflows push a mix ratio beyond this.
pub fn paper_ratio_tolerance() -> Ratio {
    // 1/50 is a valid, canonical rational.
    Ratio::new(1, 50).unwrap_or(Ratio::ZERO)
}

/// Constant alias for documentation; see [`paper_ratio_tolerance`].
pub const PAPER_RATIO_TOLERANCE: &str = "2%";

/// Typed error from [`round_assignment_strict`]: a productive transfer
/// rounds below the machine's least count, so the plan as given cannot
/// be metered without perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundingError {
    /// Index of the underflowing edge.
    pub edge: usize,
    /// The exact (pre-rounding) transfer volume in nl.
    pub volume_nl: Ratio,
    /// The least count it fails to reach, in nl.
    pub least_count_nl: Ratio,
}

impl fmt::Display for RoundingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transfer of {} nl on edge {} rounds below the least count of {} nl",
            self.volume_nl, self.edge, self.least_count_nl
        )
    }
}

impl Error for RoundingError {}

/// Rounds a rational assignment to least-count multiples and measures
/// the resulting mix-ratio error.
///
/// # Examples
///
/// ```
/// use aqua_dag::Dag;
/// use aqua_volume::{dagsolve, round::round_assignment, Machine};
///
/// let mut dag = Dag::new();
/// let a = dag.add_input("A");
/// let b = dag.add_input("B");
/// let m = dag.add_mix("mx", &[(a, 1), (b, 3)], 0)?;
/// dag.add_output("o", m);
/// let machine = Machine::paper_default();
/// let sol = dagsolve::solve(&dag, &machine)?;
/// let rounded = round_assignment(&dag, &machine, &sol);
/// assert!(rounded.underflows.is_empty());
/// // 25 + 75 nl are exact least-count multiples: zero error.
/// assert!(rounded.max_ratio_error.is_zero());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn round_assignment(
    dag: &Dag,
    machine: &Machine,
    assignment: &VolumeAssignment,
) -> RoundedAssignment {
    let (edge_volumes_nl, underflows) = rounded_edges(dag, machine, assignment);
    clamp_and_finish(dag, machine, edge_volumes_nl, underflows)
}

/// Shared tail of the clamping entry points: measure ratio errors on
/// the raw rounded table (§4.2's metric — an underflowed transfer
/// counts as dropped, a 100% error), then clamp each underflowed edge
/// up to one least count for the emitted volumes, since the hardware
/// cannot meter less. A clamped plan therefore never ships a
/// sub-least-count transfer, and its distorted mix still fails
/// [`RoundedAssignment::within_paper_tolerance`].
fn clamp_and_finish(
    dag: &Dag,
    machine: &Machine,
    mut edge_volumes_nl: Vec<Ratio>,
    underflows: Vec<usize>,
) -> RoundedAssignment {
    let (max_ratio_error, mean_ratio_error) = ratio_errors(dag, &edge_volumes_nl);
    let lc = machine.least_count_nl();
    for &e in &underflows {
        edge_volumes_nl[e] = lc;
    }
    let node_volumes_nl = node_totals(dag, &edge_volumes_nl);
    RoundedAssignment {
        edge_volumes_nl,
        node_volumes_nl,
        max_ratio_error,
        mean_ratio_error,
        underflows,
    }
}

/// Like [`round_assignment`] but *strict*: instead of clamping, the
/// first productive transfer that rounds below the least count is
/// surfaced as a typed [`RoundingError`]. For callers that must not
/// perturb volumes (e.g. plans already committed to hardware).
///
/// # Errors
///
/// Returns [`RoundingError`] for the first underflowing edge.
pub fn round_assignment_strict(
    dag: &Dag,
    machine: &Machine,
    assignment: &VolumeAssignment,
) -> Result<RoundedAssignment, RoundingError> {
    let (edge_volumes_nl, underflows) = rounded_edges(dag, machine, assignment);
    if let Some(&e) = underflows.first() {
        return Err(RoundingError {
            edge: e,
            volume_nl: assignment.edge_volumes_nl[e],
            least_count_nl: machine.least_count_nl(),
        });
    }
    Ok(finish_rounding(dag, edge_volumes_nl, underflows))
}

/// Rounds each live edge independently; returns the rounded table plus
/// the indices of productive transfers that fell below the least count
/// (only transfers the plan actually needs: positive exact volume,
/// destination not an excess node).
fn rounded_edges(
    dag: &Dag,
    machine: &Machine,
    assignment: &VolumeAssignment,
) -> (Vec<Ratio>, Vec<usize>) {
    let mut edge_volumes_nl = vec![Ratio::ZERO; dag.num_edges()];
    let mut underflows = Vec::new();
    for e in dag.edge_ids() {
        if !dag.edge_is_live(e) {
            continue;
        }
        let exact = assignment.edge_volumes_nl[e.index()];
        let rounded = machine.round_to_least_count(exact);
        edge_volumes_nl[e.index()] = rounded;
        let is_excess = dag.node(dag.edge(e).dst).kind == NodeKind::Excess;
        if rounded < machine.least_count_nl() && exact.is_positive() && !is_excess {
            underflows.push(e.index());
        }
    }
    (edge_volumes_nl, underflows)
}

/// Rounds LP solution volumes (floats, nl) to least-count multiples
/// with the same clamp-and-measure discipline as [`round_assignment`]:
/// productive transfers that round to zero but carry real volume are
/// raised to one least count, and the returned ratio errors reflect
/// the clamped table. This is the LP-path RVol → IVol step used by
/// `hierarchy::manage_volumes`.
pub fn round_lp_edges(dag: &Dag, machine: &Machine, edge_nl: &[f64]) -> RoundedAssignment {
    let lc = machine.least_count_nl();
    let lc_f = lc.to_f64();
    // Anything below this is LP float noise around zero, not a real
    // transfer the plan depends on; clamping it would invent fluid.
    let noise = lc_f * 1e-6;
    let mut edge_volumes_nl = vec![Ratio::ZERO; dag.num_edges()];
    let mut underflows = Vec::new();
    for e in dag.edge_ids() {
        if !dag.edge_is_live(e) {
            continue;
        }
        let exact = edge_nl[e.index()];
        let counts = (exact / lc_f).round() as i128;
        let rounded = Ratio::from_int(counts.max(0)) * lc;
        edge_volumes_nl[e.index()] = rounded;
        let is_excess = dag.node(dag.edge(e).dst).kind == NodeKind::Excess;
        if rounded < lc && exact > noise && !is_excess {
            underflows.push(e.index());
        }
    }
    clamp_and_finish(dag, machine, edge_volumes_nl, underflows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dagsolve;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn rounding_error_is_bounded_by_half_count_over_volume() {
        // Glucose-like mix 1:8 at 100 nl scale: shares 11.11/88.89 round
        // to 11.1/88.9 — tiny relative error.
        let mut d = Dag::new();
        let a = d.add_input("G");
        let b = d.add_input("R");
        let m = d.add_mix("mx", &[(a, 1), (b, 8)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let rounded = round_assignment(&d, &machine, &sol);
        assert!(rounded.underflows.is_empty());
        // The paper reports <= 2% on its assays; this toy case is far
        // below that.
        assert!(rounded.max_ratio_error < r(2, 100));
        // All volumes are least-count multiples.
        for id in d.edge_ids() {
            assert!(machine.is_least_count_multiple(rounded.edge_volumes_nl[id.index()]));
        }
    }

    #[test]
    fn near_least_count_transfer_can_round_into_underflow() {
        // A 1:2999 mix underflows before rounding: 100 nl / 3000 =
        // 0.0333 nl rounds to 0.0, a recorded underflow.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 2999)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        assert!(sol.underflow.is_some());
        let rounded = round_assignment(&d, &machine, &sol);
        assert_eq!(rounded.underflows.len(), 1);
        // The underflowed transfer is clamped up to exactly one least
        // count — never emitted as a sub-least-count (unmeterable)
        // volume, never silently dropped to zero.
        let e = rounded.underflows[0];
        assert_eq!(rounded.edge_volumes_nl[e], machine.least_count_nl());
        // The clamp is reflected in the mix node's total...
        let mix_total = rounded.node_volumes_nl[m.index()];
        let b_edge: Ratio = d
            .in_edges(m)
            .iter()
            .map(|&ed| rounded.edge_volumes_nl[ed.index()])
            .sum();
        assert_eq!(mix_total, b_edge);
        // ...and in the ratio error: the raw rounding drops the
        // transfer entirely (a 100% error on its mix), far beyond the
        // paper's 2% — the hierarchy must not ship this plan.
        assert!(!rounded.within_paper_tolerance());
        assert!(rounded.max_ratio_error > r(1, 2));
    }

    #[test]
    fn regression_1_to_1999_mix_rounds_to_one_count_and_breaks_tolerance() {
        // Regression for the span-limit case from dagsolve: a 1:1999 mix
        // at 100 nl capacity wants 0.05 nl of A — half a least count.
        // Half-away-from-zero rounding lands it at exactly one count
        // (0.1 nl), doubling A's share. The result must be a meterable
        // table (no sub-least-count transfers) whose ratio error
        // honestly reports the ~100% distortion so the hierarchy
        // escalates instead of shipping the broken mix.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1999)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        // The rational solution already flags the underflow...
        assert!(sol.underflow.is_some());
        let rounded = round_assignment(&d, &machine, &sol);
        // ...and after rounding every live transfer is a least-count
        // multiple of at least one count.
        for e in d.edge_ids() {
            let v = rounded.edge_volumes_nl[e.index()];
            assert!(machine.is_least_count_multiple(v));
            assert!(
                v >= machine.least_count_nl(),
                "edge {e} emitted sub-least-count volume {v}"
            );
        }
        // 0.1 / 100.1 against a spec of 1/2000 is ~2x: flagged.
        assert!(!rounded.within_paper_tolerance());
        assert!(rounded.max_ratio_error > r(9, 10));
        assert!(rounded.max_ratio_error < r(11, 10));
    }

    #[test]
    fn strict_rounding_surfaces_typed_error_on_underflow() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 2999)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let err = round_assignment_strict(&d, &machine, &sol).unwrap_err();
        assert_eq!(err.least_count_nl, machine.least_count_nl());
        assert!(err.volume_nl.is_positive());
        assert!(err.volume_nl < machine.least_count_nl());
        let msg = err.to_string();
        assert!(msg.contains("least count"), "message: {msg}");
        // A clean mix passes strict rounding.
        let mut ok = Dag::new();
        let x = ok.add_input("X");
        let y = ok.add_input("Y");
        let mx = ok.add_mix("mx", &[(x, 1), (y, 3)], 0).unwrap();
        ok.add_output("o", mx);
        let sol = dagsolve::solve(&ok, &machine).unwrap();
        assert!(round_assignment_strict(&ok, &machine, &sol).is_ok());
    }

    #[test]
    fn lp_edge_rounding_clamps_and_ignores_float_noise() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        // Edge order: a->m, b->m, m->o. Give A solver noise (treated as
        // zero, not clamped) and B a real sub-count volume (clamped).
        let edge_nl = vec![1e-12, 0.04, 50.0];
        let ra = round_lp_edges(&d, &machine, &edge_nl);
        assert_eq!(ra.edge_volumes_nl[0], Ratio::ZERO);
        assert_eq!(ra.edge_volumes_nl[1], machine.least_count_nl());
        assert_eq!(ra.underflows, vec![1]);
        assert_eq!(ra.edge_volumes_nl[2], Ratio::from_int(50));
    }

    #[test]
    fn zero_error_when_volumes_divide_exactly() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let rounded = round_assignment(&d, &machine, &sol);
        assert!(rounded.max_ratio_error.is_zero());
        assert!(rounded.mean_ratio_error.is_zero());
    }
}

/// The paper defers "more sophisticated rounding techniques to the
/// future" (§3.2); this is one such technique: **apportioned rounding**.
///
/// Instead of rounding each transfer independently (which lets a node's
/// uses drift away from both its production and the specified mix
/// ratios), each node's total input is rounded once and the least-count
/// units are apportioned among its in-edges by the largest-remainder
/// method. This guarantees per-node conservation (the rounded parts sum
/// exactly to the rounded total) and minimizes the worst ratio error
/// for that total.
///
/// Returns the same structure as [`round_assignment`] so the two
/// schemes can be compared head to head (see the `rounding_ablation`
/// bench binary).
pub fn round_apportioned(
    dag: &Dag,
    machine: &Machine,
    assignment: &VolumeAssignment,
) -> RoundedAssignment {
    let lc = machine.least_count_nl();
    let mut edge_volumes_nl = vec![Ratio::ZERO; dag.num_edges()];
    let mut underflows = Vec::new();

    for id in dag.node_ids() {
        let ins: Vec<_> = dag
            .in_edges(id)
            .iter()
            .copied()
            .filter(|&e| dag.edge_is_live(e))
            .collect();
        if ins.is_empty() {
            continue;
        }
        // Total counts for this node's input, rounded once.
        let exact_total =
            Ratio::checked_sum(ins.iter().map(|&e| assignment.edge_volumes_nl[e.index()]))
                .unwrap_or(Ratio::ZERO);
        let total_counts = (exact_total / lc).round().max(0);
        // Quotas per edge; floor first, then hand out the remaining
        // counts by largest fractional remainder.
        let mut floors: Vec<i128> = Vec::with_capacity(ins.len());
        let mut remainders: Vec<(usize, Ratio)> = Vec::with_capacity(ins.len());
        let mut used = 0i128;
        for (i, &e) in ins.iter().enumerate() {
            let quota = assignment.edge_volumes_nl[e.index()] / lc;
            let fl = quota.floor().max(0);
            floors.push(fl);
            used += fl;
            let rem = quota - Ratio::from_int(quota.floor());
            remainders.push((i, rem));
        }
        let mut leftover = total_counts - used;
        remainders.sort_by_key(|&(_, rem)| std::cmp::Reverse(rem));
        for (i, _) in remainders {
            if leftover <= 0 {
                break;
            }
            floors[i] += 1;
            leftover -= 1;
        }
        for (i, &e) in ins.iter().enumerate() {
            let v = Ratio::from_int(floors[i]) * lc;
            edge_volumes_nl[e.index()] = v;
            let is_excess = dag.node(dag.edge(e).dst).kind == NodeKind::Excess;
            if v < lc && !is_excess {
                underflows.push(e.index());
            }
        }
    }

    // Shared tail with round_assignment: node totals + error metrics.
    finish_rounding(dag, edge_volumes_nl, underflows)
}

/// Computes node totals and mix-ratio error for a rounded edge table
/// (no clamping — the strict and apportioned paths).
fn finish_rounding(
    dag: &Dag,
    edge_volumes_nl: Vec<Ratio>,
    underflows: Vec<usize>,
) -> RoundedAssignment {
    let node_volumes_nl = node_totals(dag, &edge_volumes_nl);
    let (max_ratio_error, mean_ratio_error) = ratio_errors(dag, &edge_volumes_nl);
    RoundedAssignment {
        edge_volumes_nl,
        node_volumes_nl,
        max_ratio_error,
        mean_ratio_error,
        underflows,
    }
}

/// Per-node production for an edge table: the sum of a node's in-edge
/// volumes (sources keep their total out-edge demand).
fn node_totals(dag: &Dag, edge_volumes_nl: &[Ratio]) -> Vec<Ratio> {
    let mut node_volumes_nl = vec![Ratio::ZERO; dag.num_nodes()];
    for id in dag.node_ids() {
        let ins = dag.in_edges(id);
        node_volumes_nl[id.index()] = if ins.is_empty() {
            Ratio::checked_sum(
                dag.out_edges(id)
                    .iter()
                    .map(|&e| edge_volumes_nl[e.index()]),
            )
            .unwrap_or(Ratio::ZERO)
        } else {
            Ratio::checked_sum(ins.iter().map(|&e| edge_volumes_nl[e.index()]))
                .unwrap_or(Ratio::ZERO)
        };
    }
    node_volumes_nl
}

/// (max, mean) relative mix-ratio error across all mix-node inputs of
/// an edge table — the §4.2 metric.
fn ratio_errors(dag: &Dag, edge_volumes_nl: &[Ratio]) -> (Ratio, Ratio) {
    let node_volumes_nl = node_totals(dag, edge_volumes_nl);
    let mut max_err = Ratio::ZERO;
    let mut total_err = Ratio::ZERO;
    let mut samples: i128 = 0;
    for id in dag.node_ids() {
        if !matches!(dag.node(id).kind, NodeKind::Mix { .. }) {
            continue;
        }
        let total = node_volumes_nl[id.index()];
        if !total.is_positive() {
            continue;
        }
        for &e in dag.in_edges(id) {
            let spec = dag.edge(e).fraction;
            let got = edge_volumes_nl[e.index()] / total;
            let err = (got - spec).abs() / spec;
            max_err = max_err.max(err);
            total_err += err;
            samples += 1;
        }
    }
    let mean = if samples > 0 {
        total_err / Ratio::from_int(samples)
    } else {
        Ratio::ZERO
    };
    (max_err, mean)
}

#[cfg(test)]
mod apportion_tests {
    use super::*;
    use crate::dagsolve;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn apportioned_rounding_conserves_per_node_totals() {
        // A 1:1:1 three-way split of 100 nl cannot round each part to
        // 33.3 AND keep the total at 100.0 under independent rounding;
        // apportionment must.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let m = d.add_mix("m", &[(a, 1), (b, 1), (c, 1)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let ap = round_apportioned(&d, &machine, &sol);
        let total: Ratio = d
            .in_edges(m)
            .iter()
            .map(|&e| ap.edge_volumes_nl[e.index()])
            .sum();
        assert!(machine.is_least_count_multiple(total));
        assert_eq!(total, machine.round_to_least_count(sol.node_nl(m)));
    }

    #[test]
    fn apportioned_never_beats_half_count_per_edge_by_much() {
        // Apportionment moves each edge at most one least count away
        // from its independent rounding.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 3), (b, 7)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let indep = round_assignment(&d, &machine, &sol);
        let ap = round_apportioned(&d, &machine, &sol);
        for e in d.edge_ids() {
            let delta = (indep.edge_volumes_nl[e.index()] - ap.edge_volumes_nl[e.index()]).abs();
            assert!(delta <= machine.least_count_nl(), "edge {e} delta {delta}");
        }
    }

    #[test]
    fn apportioned_error_is_at_most_independent_error_on_enzyme_style_mixes() {
        // The regime the paper cares about: skewed ratios at small
        // volumes. Mean error under apportionment must not exceed the
        // independent scheme's.
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let stock = d.add_input("stock");
        let dil = d.add_input("dil");
        for (i, parts) in [(1u64, 9u64), (1, 99), (3, 7), (2, 5)].iter().enumerate() {
            let m = d
                .add_mix(format!("m{i}"), &[(stock, parts.0), (dil, parts.1)], 0)
                .unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let indep = round_assignment(&d, &machine, &sol);
        let ap = round_apportioned(&d, &machine, &sol);
        assert!(
            ap.mean_ratio_error <= indep.mean_ratio_error + r(1, 1000),
            "apportioned {} vs independent {}",
            ap.mean_ratio_error,
            indep.mean_ratio_error
        );
    }
}
