//! RVol → IVol rounding (§3.2, evaluated in §4.2).
//!
//! DAGSolve and LP solve the *rational* relaxation; real hardware meters
//! integer multiples of the least count. Rounding each transfer to the
//! nearest least-count multiple perturbs mix ratios slightly; the
//! chemistry tolerates small errors (the paper measured ≤ 2% on its
//! benchmarks), and this module measures exactly that error.

use aqua_dag::{Dag, NodeKind, Ratio};

use crate::dagsolve::VolumeAssignment;
use crate::machine::Machine;

/// A least-count-integral volume assignment plus its rounding error.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundedAssignment {
    /// Rounded transfer volume per edge, in nl (exact least-count
    /// multiples).
    pub edge_volumes_nl: Vec<Ratio>,
    /// Rounded production per node: the sum of its rounded in-edge
    /// volumes (inputs keep their rounded total demand).
    pub node_volumes_nl: Vec<Ratio>,
    /// Largest relative mix-ratio error across all mix-node inputs.
    pub max_ratio_error: Ratio,
    /// Mean relative mix-ratio error across all mix-node inputs.
    pub mean_ratio_error: Ratio,
    /// Edges whose rounded volume fell below the least count (rounding
    /// can only cause this for transfers already within half a least
    /// count of the floor).
    pub underflows: Vec<usize>,
}

/// Rounds a rational assignment to least-count multiples and measures
/// the resulting mix-ratio error.
///
/// # Examples
///
/// ```
/// use aqua_dag::Dag;
/// use aqua_volume::{dagsolve, round::round_assignment, Machine};
///
/// let mut dag = Dag::new();
/// let a = dag.add_input("A");
/// let b = dag.add_input("B");
/// let m = dag.add_mix("mx", &[(a, 1), (b, 3)], 0)?;
/// dag.add_output("o", m);
/// let machine = Machine::paper_default();
/// let sol = dagsolve::solve(&dag, &machine)?;
/// let rounded = round_assignment(&dag, &machine, &sol);
/// assert!(rounded.underflows.is_empty());
/// // 25 + 75 nl are exact least-count multiples: zero error.
/// assert!(rounded.max_ratio_error.is_zero());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn round_assignment(
    dag: &Dag,
    machine: &Machine,
    assignment: &VolumeAssignment,
) -> RoundedAssignment {
    let mut edge_volumes_nl = vec![Ratio::ZERO; dag.num_edges()];
    let mut underflows = Vec::new();
    for e in dag.edge_ids() {
        if !dag.edge_is_live(e) {
            continue;
        }
        let exact = assignment.edge_volumes_nl[e.index()];
        let rounded = machine.round_to_least_count(exact);
        edge_volumes_nl[e.index()] = rounded;
        let is_excess = dag.node(dag.edge(e).dst).kind == NodeKind::Excess;
        if rounded < machine.least_count_nl() && !is_excess {
            underflows.push(e.index());
        }
    }

    // Node production after rounding = rounded input total (for sources:
    // rounded output demand).
    let mut node_volumes_nl = vec![Ratio::ZERO; dag.num_nodes()];
    for id in dag.node_ids() {
        let ins = dag.in_edges(id);
        node_volumes_nl[id.index()] = if ins.is_empty() {
            Ratio::checked_sum(
                dag.out_edges(id)
                    .iter()
                    .map(|&e| edge_volumes_nl[e.index()]),
            )
            .unwrap_or(Ratio::ZERO)
        } else {
            Ratio::checked_sum(ins.iter().map(|&e| edge_volumes_nl[e.index()]))
                .unwrap_or(Ratio::ZERO)
        };
    }

    // Mix-ratio error: for each in-edge of each mix node, compare the
    // achieved input share against the specified fraction.
    let mut max_err = Ratio::ZERO;
    let mut total_err = Ratio::ZERO;
    let mut samples: i128 = 0;
    for id in dag.node_ids() {
        if !matches!(dag.node(id).kind, NodeKind::Mix { .. }) {
            continue;
        }
        let total = node_volumes_nl[id.index()];
        if !total.is_positive() {
            continue;
        }
        for &e in dag.in_edges(id) {
            let spec = dag.edge(e).fraction;
            let got = edge_volumes_nl[e.index()] / total;
            let err = (got - spec).abs() / spec;
            max_err = max_err.max(err);
            total_err += err;
            samples += 1;
        }
    }
    let mean_ratio_error = if samples > 0 {
        total_err / Ratio::from_int(samples)
    } else {
        Ratio::ZERO
    };

    RoundedAssignment {
        edge_volumes_nl,
        node_volumes_nl,
        max_ratio_error: max_err,
        mean_ratio_error,
        underflows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dagsolve;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn rounding_error_is_bounded_by_half_count_over_volume() {
        // Glucose-like mix 1:8 at 100 nl scale: shares 11.11/88.89 round
        // to 11.1/88.9 — tiny relative error.
        let mut d = Dag::new();
        let a = d.add_input("G");
        let b = d.add_input("R");
        let m = d.add_mix("mx", &[(a, 1), (b, 8)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let rounded = round_assignment(&d, &machine, &sol);
        assert!(rounded.underflows.is_empty());
        // The paper reports <= 2% on its assays; this toy case is far
        // below that.
        assert!(rounded.max_ratio_error < r(2, 100));
        // All volumes are least-count multiples.
        for id in d.edge_ids() {
            assert!(machine.is_least_count_multiple(rounded.edge_volumes_nl[id.index()]));
        }
    }

    #[test]
    fn near_least_count_transfer_can_round_into_underflow() {
        // A 1:1999 mix underflows before rounding; rounding the 0.05 nl
        // transfer lands at 0.1 or 0.0 depending on the exact value.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 2999)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        assert!(sol.underflow.is_some());
        let rounded = round_assignment(&d, &machine, &sol);
        // 100 nl / 3000 = 0.0333 nl -> rounds to 0.0: recorded underflow.
        assert_eq!(rounded.underflows.len(), 1);
    }

    #[test]
    fn zero_error_when_volumes_divide_exactly() {
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("mx", &[(a, 1), (b, 1)], 0).unwrap();
        d.add_output("o", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let rounded = round_assignment(&d, &machine, &sol);
        assert!(rounded.max_ratio_error.is_zero());
        assert!(rounded.mean_ratio_error.is_zero());
    }
}

/// The paper defers "more sophisticated rounding techniques to the
/// future" (§3.2); this is one such technique: **apportioned rounding**.
///
/// Instead of rounding each transfer independently (which lets a node's
/// uses drift away from both its production and the specified mix
/// ratios), each node's total input is rounded once and the least-count
/// units are apportioned among its in-edges by the largest-remainder
/// method. This guarantees per-node conservation (the rounded parts sum
/// exactly to the rounded total) and minimizes the worst ratio error
/// for that total.
///
/// Returns the same structure as [`round_assignment`] so the two
/// schemes can be compared head to head (see the `rounding_ablation`
/// bench binary).
pub fn round_apportioned(
    dag: &Dag,
    machine: &Machine,
    assignment: &VolumeAssignment,
) -> RoundedAssignment {
    let lc = machine.least_count_nl();
    let mut edge_volumes_nl = vec![Ratio::ZERO; dag.num_edges()];
    let mut underflows = Vec::new();

    for id in dag.node_ids() {
        let ins: Vec<_> = dag
            .in_edges(id)
            .iter()
            .copied()
            .filter(|&e| dag.edge_is_live(e))
            .collect();
        if ins.is_empty() {
            continue;
        }
        // Total counts for this node's input, rounded once.
        let exact_total =
            Ratio::checked_sum(ins.iter().map(|&e| assignment.edge_volumes_nl[e.index()]))
                .unwrap_or(Ratio::ZERO);
        let total_counts = (exact_total / lc).round().max(0);
        // Quotas per edge; floor first, then hand out the remaining
        // counts by largest fractional remainder.
        let mut floors: Vec<i128> = Vec::with_capacity(ins.len());
        let mut remainders: Vec<(usize, Ratio)> = Vec::with_capacity(ins.len());
        let mut used = 0i128;
        for (i, &e) in ins.iter().enumerate() {
            let quota = assignment.edge_volumes_nl[e.index()] / lc;
            let fl = quota.floor().max(0);
            floors.push(fl);
            used += fl;
            let rem = quota - Ratio::from_int(quota.floor());
            remainders.push((i, rem));
        }
        let mut leftover = total_counts - used;
        remainders.sort_by_key(|&(_, rem)| std::cmp::Reverse(rem));
        for (i, _) in remainders {
            if leftover <= 0 {
                break;
            }
            floors[i] += 1;
            leftover -= 1;
        }
        for (i, &e) in ins.iter().enumerate() {
            let v = Ratio::from_int(floors[i]) * lc;
            edge_volumes_nl[e.index()] = v;
            let is_excess = dag.node(dag.edge(e).dst).kind == NodeKind::Excess;
            if v < lc && !is_excess {
                underflows.push(e.index());
            }
        }
    }

    // Shared tail with round_assignment: node totals + error metrics.
    finish_rounding(dag, edge_volumes_nl, underflows)
}

/// Computes node totals and mix-ratio error for a rounded edge table.
fn finish_rounding(
    dag: &Dag,
    edge_volumes_nl: Vec<Ratio>,
    underflows: Vec<usize>,
) -> RoundedAssignment {
    let mut node_volumes_nl = vec![Ratio::ZERO; dag.num_nodes()];
    for id in dag.node_ids() {
        let ins = dag.in_edges(id);
        node_volumes_nl[id.index()] = if ins.is_empty() {
            Ratio::checked_sum(
                dag.out_edges(id)
                    .iter()
                    .map(|&e| edge_volumes_nl[e.index()]),
            )
            .unwrap_or(Ratio::ZERO)
        } else {
            Ratio::checked_sum(ins.iter().map(|&e| edge_volumes_nl[e.index()]))
                .unwrap_or(Ratio::ZERO)
        };
    }
    let mut max_err = Ratio::ZERO;
    let mut total_err = Ratio::ZERO;
    let mut samples: i128 = 0;
    for id in dag.node_ids() {
        if !matches!(dag.node(id).kind, NodeKind::Mix { .. }) {
            continue;
        }
        let total = node_volumes_nl[id.index()];
        if !total.is_positive() {
            continue;
        }
        for &e in dag.in_edges(id) {
            let spec = dag.edge(e).fraction;
            let got = edge_volumes_nl[e.index()] / total;
            let err = (got - spec).abs() / spec;
            max_err = max_err.max(err);
            total_err += err;
            samples += 1;
        }
    }
    let mean_ratio_error = if samples > 0 {
        total_err / Ratio::from_int(samples)
    } else {
        Ratio::ZERO
    };
    RoundedAssignment {
        edge_volumes_nl,
        node_volumes_nl,
        max_ratio_error: max_err,
        mean_ratio_error,
        underflows,
    }
}

#[cfg(test)]
mod apportion_tests {
    use super::*;
    use crate::dagsolve;

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    #[test]
    fn apportioned_rounding_conserves_per_node_totals() {
        // A 1:1:1 three-way split of 100 nl cannot round each part to
        // 33.3 AND keep the total at 100.0 under independent rounding;
        // apportionment must.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let c = d.add_input("C");
        let m = d.add_mix("m", &[(a, 1), (b, 1), (c, 1)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let ap = round_apportioned(&d, &machine, &sol);
        let total: Ratio = d
            .in_edges(m)
            .iter()
            .map(|&e| ap.edge_volumes_nl[e.index()])
            .sum();
        assert!(machine.is_least_count_multiple(total));
        assert_eq!(total, machine.round_to_least_count(sol.node_nl(m)));
    }

    #[test]
    fn apportioned_never_beats_half_count_per_edge_by_much() {
        // Apportionment moves each edge at most one least count away
        // from its independent rounding.
        let mut d = Dag::new();
        let a = d.add_input("A");
        let b = d.add_input("B");
        let m = d.add_mix("m", &[(a, 3), (b, 7)], 0).unwrap();
        d.add_process("s", "sense.OD", m);
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let indep = round_assignment(&d, &machine, &sol);
        let ap = round_apportioned(&d, &machine, &sol);
        for e in d.edge_ids() {
            let delta = (indep.edge_volumes_nl[e.index()] - ap.edge_volumes_nl[e.index()]).abs();
            assert!(delta <= machine.least_count_nl(), "edge {e} delta {delta}");
        }
    }

    #[test]
    fn apportioned_error_is_at_most_independent_error_on_enzyme_style_mixes() {
        // The regime the paper cares about: skewed ratios at small
        // volumes. Mean error under apportionment must not exceed the
        // independent scheme's.
        let machine = Machine::paper_default();
        let mut d = Dag::new();
        let stock = d.add_input("stock");
        let dil = d.add_input("dil");
        for (i, parts) in [(1u64, 9u64), (1, 99), (3, 7), (2, 5)].iter().enumerate() {
            let m = d
                .add_mix(format!("m{i}"), &[(stock, parts.0), (dil, parts.1)], 0)
                .unwrap();
            d.add_process(format!("s{i}"), "sense.OD", m);
        }
        let sol = dagsolve::solve(&d, &machine).unwrap();
        let indep = round_assignment(&d, &machine, &sol);
        let ap = round_apportioned(&d, &machine, &sol);
        assert!(
            ap.mean_ratio_error <= indep.mean_ratio_error + r(1, 1000),
            "apportioned {} vs independent {}",
            ap.mean_ratio_error,
            indep.mean_ratio_error
        );
    }
}
