//! End-to-end compiler pipeline benchmarks (parse -> unroll -> DAG ->
//! volume management -> AIS), plus ablations of the individual rewrite
//! passes (cascade planning, replication) that DESIGN.md calls out.

use aqua_assays::{synthetic, Benchmark};
use aqua_compiler::{compile, CompileOptions};
use aqua_rational::Ratio;
use aqua_volume::{cascade, replicate, vnorm, Machine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let machine = Machine::paper_default();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for bench in [Benchmark::Glucose, Benchmark::Glycomics, Benchmark::Enzyme] {
        let src = bench.source();
        group.bench_with_input(BenchmarkId::new("compile", bench.name()), &src, |b, src| {
            b.iter(|| {
                black_box(
                    compile(black_box(src), &machine, &CompileOptions::default())
                        .expect("compiles"),
                )
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("rewrites");
    // Cascade ablation: planning + application on an extreme mix.
    group.bench_function("cascade_plan_1e6", |b| {
        b.iter(|| {
            black_box(cascade::plan_cascade(
                Ratio::from_int(1_000_000),
                Ratio::from_int(1000),
            ))
        });
    });
    group.bench_function("cascade_apply", |b| {
        b.iter(|| {
            let mut dag = synthetic::extreme_ratio_dag(99_999);
            let m = dag.find_node("extreme").unwrap();
            black_box(cascade::apply_cascade(&mut dag, m, &machine).unwrap());
        });
    });
    // Replication ablation on a many-uses stress DAG.
    group.bench_function("replicate_200_uses", |b| {
        b.iter(|| {
            let mut dag = synthetic::many_uses_dag(200);
            let stock = dag.find_node("stock").unwrap();
            let mut machine = machine.clone();
            machine.reservoirs = 64;
            black_box(replicate::replicate_node(&mut dag, stock, 4, &machine).unwrap());
        });
    });
    // Vnorm pass alone on a wide synthetic DAG.
    let big = synthetic::layered_dag(
        3,
        &synthetic::LayeredConfig {
            inputs: 8,
            layers: 8,
            width: 32,
            fanin: 3,
            max_part: 9,
        },
    );
    group.bench_function("vnorm_layered_8x32", |b| {
        b.iter(|| black_box(vnorm::compute(black_box(&big)).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
