//! End-to-end compiler pipeline benchmarks (parse -> unroll -> DAG ->
//! volume management -> AIS), plus ablations of the individual rewrite
//! passes (cascade planning, replication) that DESIGN.md calls out.
//!
//! Uses the in-repo harness (`aqua_bench::harness`) instead of
//! criterion, which is unavailable offline.

use aqua_assays::{synthetic, Benchmark};
use aqua_bench::harness::{report, time};
use aqua_compiler::{compile, CompileOptions};
use aqua_rational::Ratio;
use aqua_volume::{cascade, replicate, vnorm, Machine};
use std::hint::black_box;

fn main() {
    let machine = Machine::paper_default();
    for bench in [Benchmark::Glucose, Benchmark::Glycomics, Benchmark::Enzyme] {
        let src = bench.source();
        let m = time(&format!("compile/{}", bench.name()), 2, 10, || {
            black_box(
                compile(black_box(&src), &machine, &CompileOptions::default()).expect("compiles"),
            )
        });
        report(&m);
    }

    // Cascade ablation: planning + application on an extreme mix.
    let m = time("rewrites/cascade_plan_1e6", 3, 20, || {
        black_box(cascade::plan_cascade(
            Ratio::from_int(1_000_000),
            Ratio::from_int(1000),
        ))
    });
    report(&m);
    let m = time("rewrites/cascade_apply", 3, 20, || {
        let mut dag = synthetic::extreme_ratio_dag(99_999);
        let n = dag.find_node("extreme").unwrap();
        black_box(cascade::apply_cascade(&mut dag, n, &machine).unwrap());
    });
    report(&m);
    // Replication ablation on a many-uses stress DAG.
    let m = time("rewrites/replicate_200_uses", 2, 10, || {
        let mut dag = synthetic::many_uses_dag(200);
        let stock = dag.find_node("stock").unwrap();
        let mut machine = machine.clone();
        machine.reservoirs = 64;
        black_box(replicate::replicate_node(&mut dag, stock, 4, &machine).unwrap());
    });
    report(&m);
    // Vnorm pass alone on a wide synthetic DAG.
    let big = synthetic::layered_dag(
        3,
        &synthetic::LayeredConfig {
            inputs: 8,
            layers: 8,
            width: 32,
            fanin: 3,
            max_part: 9,
        },
    );
    let m = time("rewrites/vnorm_layered_8x32", 3, 20, || {
        black_box(vnorm::compute(black_box(&big)).unwrap())
    });
    report(&m);
}
