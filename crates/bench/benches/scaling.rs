//! The Enzyme-N scaling study behind Table 2's Enzyme10 row: DAGSolve
//! stays linear in DAG size while the LP's cost grows polynomially —
//! the crossover the paper uses to justify DAGSolve as the run-time
//! default.

use aqua_lang::compile_to_flat;
use aqua_lp::solve;
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{dagsolve, Machine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn enzyme_dag(n: u32) -> aqua_dag::Dag {
    let flat = compile_to_flat(&aqua_assays::enzyme::source_n(n)).expect("parses");
    aqua_compiler::lower_to_dag(&flat).expect("lowers").0
}

fn bench_scaling(c: &mut Criterion) {
    let machine = Machine::paper_default();
    let mut group = c.benchmark_group("enzyme_scaling");
    group.sample_size(10);
    for n in [2u32, 4, 6, 8] {
        let dag = enzyme_dag(n);
        group.bench_with_input(BenchmarkId::new("dagsolve", n), &dag, |b, dag| {
            b.iter(|| black_box(dagsolve::solve(black_box(dag), &machine).unwrap()));
        });
        if n <= 6 {
            group.bench_with_input(BenchmarkId::new("lp", n), &dag, |b, dag| {
                b.iter(|| {
                    let form = lpform::build(black_box(dag), &machine, &LpOptions::rvol());
                    black_box(solve(&form.model))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
