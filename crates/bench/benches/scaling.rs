//! The Enzyme-N scaling study behind Table 2's Enzyme10 row: DAGSolve
//! stays linear in DAG size while the LP's cost grows polynomially —
//! the crossover the paper uses to justify DAGSolve as the run-time
//! default.
//!
//! Uses the in-repo harness (`aqua_bench::harness`) instead of
//! criterion, which is unavailable offline.

use aqua_bench::harness::{report, time};
use aqua_lang::compile_to_flat;
use aqua_lp::solve;
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{dagsolve, Machine};
use std::hint::black_box;

fn enzyme_dag(n: u32) -> aqua_dag::Dag {
    let flat = compile_to_flat(&aqua_assays::enzyme::source_n(n)).expect("parses");
    aqua_compiler::lower_to_dag(&flat).expect("lowers").0
}

fn main() {
    let machine = Machine::paper_default();
    for n in [2u32, 4, 6, 8] {
        let dag = enzyme_dag(n);
        let m = time(&format!("enzyme_scaling/dagsolve/{n}"), 2, 10, || {
            black_box(dagsolve::solve(black_box(&dag), &machine).unwrap())
        });
        report(&m);
        if n <= 6 {
            let m = time(&format!("enzyme_scaling/lp/{n}"), 1, 5, || {
                let form = lpform::build(black_box(&dag), &machine, &LpOptions::rvol());
                black_box(solve(&form.model))
            });
            report(&m);
        }
    }
}
