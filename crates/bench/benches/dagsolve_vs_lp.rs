//! Criterion version of Table 2's timing columns: DAGSolve vs LP on
//! the paper's assays (the Enzyme10 LP is too slow for a statistics
//! run; see the `scaling` bench and the `table2` binary for it).

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_lp::solve;
use aqua_rational::Ratio;
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{dagsolve, unknown, Machine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_assays(c: &mut Criterion) {
    let machine = Machine::paper_default();
    let mut group = c.benchmark_group("table2");
    for bench in [Benchmark::Glucose, Benchmark::Glycomics, Benchmark::Enzyme] {
        let dag = benchmark_dag(bench);
        group.bench_with_input(
            BenchmarkId::new("dagsolve", bench.name()),
            &dag,
            |b, dag| {
                if unknown::has_unknown_volumes(dag) {
                    b.iter(|| {
                        let plan = unknown::partition(black_box(dag), &machine).unwrap();
                        black_box(
                            plan.dispense_all(&machine, |_, _| Some(Ratio::from_int(10)))
                                .unwrap(),
                        )
                    });
                } else {
                    b.iter(|| black_box(dagsolve::solve(black_box(dag), &machine).unwrap()));
                }
            },
        );
        group.bench_with_input(BenchmarkId::new("lp", bench.name()), &dag, |b, dag| {
            if unknown::has_unknown_volumes(dag) {
                let plan = unknown::partition(dag, &machine).unwrap();
                b.iter(|| {
                    for part in &plan.partitions {
                        let form = lpform::build(&part.dag, &machine, &LpOptions::rvol());
                        black_box(solve(&form.model));
                    }
                });
            } else {
                b.iter(|| {
                    let form = lpform::build(black_box(dag), &machine, &LpOptions::rvol());
                    black_box(solve(&form.model))
                });
            }
        });
        // The with-constraints variant only applies to statically-known
        // DAGs (partitioned assays are covered by the plain LP above).
        if !unknown::has_unknown_volumes(&dag) {
            group.bench_with_input(
                BenchmarkId::new("lp_with_dagsolve_constraints", bench.name()),
                &dag,
                |b, dag| {
                    b.iter(|| {
                        let form = lpform::build(
                            black_box(dag),
                            &machine,
                            &LpOptions::with_dagsolve_constraints(),
                        );
                        black_box(solve(&form.model))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_assays);
criterion_main!(benches);
