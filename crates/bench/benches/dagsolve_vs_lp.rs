//! Table 2's timing columns as a standalone bench: DAGSolve vs LP on
//! the paper's assays (the Enzyme10 LP is too slow for a statistics
//! run; see the `scaling` bench and the `table2` binary for it).
//!
//! Uses the in-repo harness (`aqua_bench::harness`) instead of
//! criterion, which is unavailable offline.

use aqua_bench::harness::{report, time};
use aqua_bench::{benchmark_dag, Benchmark};
use aqua_lp::solve;
use aqua_rational::Ratio;
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{dagsolve, unknown, Machine};
use std::hint::black_box;

fn main() {
    let machine = Machine::paper_default();
    for bench in [Benchmark::Glucose, Benchmark::Glycomics, Benchmark::Enzyme] {
        let dag = benchmark_dag(bench);
        let name = bench.name();

        let m = if unknown::has_unknown_volumes(&dag) {
            time(&format!("dagsolve/{name}"), 3, 20, || {
                let plan = unknown::partition(black_box(&dag), &machine).unwrap();
                black_box(
                    plan.dispense_all(&machine, |_, _| Some(Ratio::from_int(10)))
                        .unwrap(),
                )
            })
        } else {
            time(&format!("dagsolve/{name}"), 3, 20, || {
                black_box(dagsolve::solve(black_box(&dag), &machine).unwrap())
            })
        };
        report(&m);

        let m = if unknown::has_unknown_volumes(&dag) {
            let plan = unknown::partition(&dag, &machine).unwrap();
            time(&format!("lp/{name}"), 2, 10, || {
                for part in &plan.partitions {
                    let form = lpform::build(&part.dag, &machine, &LpOptions::rvol());
                    black_box(solve(&form.model));
                }
            })
        } else {
            time(&format!("lp/{name}"), 2, 10, || {
                let form = lpform::build(black_box(&dag), &machine, &LpOptions::rvol());
                black_box(solve(&form.model))
            })
        };
        report(&m);

        // The with-constraints variant only applies to statically-known
        // DAGs (partitioned assays are covered by the plain LP above).
        if !unknown::has_unknown_volumes(&dag) {
            let m = time(
                &format!("lp_with_dagsolve_constraints/{name}"),
                2,
                10,
                || {
                    let form = lpform::build(
                        black_box(&dag),
                        &machine,
                        &LpOptions::with_dagsolve_constraints(),
                    );
                    black_box(solve(&form.model))
                },
            );
            report(&m);
        }
    }
}
