//! Micro-benchmarks of the LP substrate itself: the two-phase bounded
//! simplex on random dense LPs of growing size, on both the sparse
//! revised backend (default) and the dense tableau fallback.
//!
//! Uses the in-repo harness (`aqua_bench::harness`) instead of
//! criterion, which is unavailable offline.

use aqua_bench::harness::{report, time};
use aqua_lp::{solve_with, Model, Sense, SimplexConfig, SolverBackend};
use aqua_rational::rng::XorShift64Star;
use std::hint::black_box;

/// Feasible-by-construction random LP (witness at the origin + slack).
fn random_lp(seed: u64, nvars: usize, nrows: usize) -> Model {
    let mut rng = XorShift64Star::new(seed);
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..nvars)
        .map(|i| m.add_var(format!("x{i}"), 0.0, 50.0))
        .collect();
    let costs: Vec<_> = vars
        .iter()
        .map(|&v| (v, rng.range_f64(-1.0, 2.0)))
        .collect();
    m.set_objective(costs);
    for r in 0..nrows {
        let terms: Vec<_> = vars
            .iter()
            .map(|&v| (v, rng.range_f64(-1.0, 2.0)))
            .collect();
        let rhs = rng.range_f64(5.0, 50.0);
        m.add_le(format!("r{r}"), terms, rhs);
    }
    m
}

fn main() {
    for (nvars, nrows) in [(10, 10), (40, 40), (100, 100), (200, 150)] {
        let model = random_lp(7, nvars, nrows);
        for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
            let config = SimplexConfig {
                backend,
                ..SimplexConfig::default()
            };
            let m = time(
                &format!("simplex/{backend:?}/{nvars}v_{nrows}r"),
                2,
                10,
                || black_box(solve_with(black_box(&model), &config)),
            );
            report(&m);
        }
    }
}
