//! Micro-benchmarks of the LP substrate itself: the two-phase bounded
//! simplex on random dense LPs of growing size (sanity check that the
//! solver, not the formulation, dominates LP timings).

use aqua_lp::{solve, Model, Sense};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Feasible-by-construction random LP (witness at the origin + slack).
fn random_lp(seed: u64, nvars: usize, nrows: usize) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..nvars)
        .map(|i| m.add_var(format!("x{i}"), 0.0, 50.0))
        .collect();
    m.set_objective(vars.iter().map(|&v| (v, rng.random_range(-1.0..2.0))));
    for r in 0..nrows {
        let terms: Vec<_> = vars
            .iter()
            .map(|&v| (v, rng.random_range(-1.0..2.0)))
            .collect();
        let rhs = rng.random_range(5.0..50.0);
        m.add_le(format!("r{r}"), terms, rhs);
    }
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    group.sample_size(10);
    for (nvars, nrows) in [(10, 10), (40, 40), (100, 100), (200, 150)] {
        let model = random_lp(7, nvars, nrows);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nvars}v_{nrows}r")),
            &model,
            |b, model| {
                b.iter(|| black_box(solve(black_box(model))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplex);
criterion_main!(benches);
