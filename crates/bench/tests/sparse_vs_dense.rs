//! Differential tests: the sparse revised-simplex backend must agree
//! with the dense tableau backend on every assay formulation and on a
//! battery of seeded random models.
//!
//! Agreement means identical status, objectives within 1e-6, and a
//! primal-feasible solution (bounds + constraints within tolerance).

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_lp::{solve_with, Model, SimplexConfig, SolverBackend, Status};
use aqua_rational::rng::XorShift64Star;
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{unknown, Machine};

const OBJ_TOL: f64 = 1e-6;
const FEAS_TOL: f64 = 1e-6;

fn solve(model: &Model, backend: SolverBackend) -> Status {
    let config = SimplexConfig {
        backend,
        ..SimplexConfig::default()
    };
    solve_with(model, &config).status
}

/// Asserts the point satisfies every bound and constraint of `model`.
fn assert_feasible(model: &Model, values: &[f64], context: &str) {
    for var in model.var_ids() {
        let (lb, ub) = model.var_bounds(var);
        let v = values[var.index()];
        assert!(
            v >= lb - FEAS_TOL && v <= ub + FEAS_TOL,
            "{context}: var {var} = {v} outside [{lb}, {ub}]"
        );
    }
    for c in model.constraints() {
        let lhs = c.expr.eval(values);
        let ok = match c.sense {
            aqua_lp::ConstraintSense::Le => lhs <= c.rhs + FEAS_TOL,
            aqua_lp::ConstraintSense::Ge => lhs >= c.rhs - FEAS_TOL,
            aqua_lp::ConstraintSense::Eq => (lhs - c.rhs).abs() <= FEAS_TOL,
        };
        assert!(
            ok,
            "{context}: constraint '{}' violated: {lhs} vs {} {:?}",
            c.name, c.rhs, c.sense
        );
    }
}

/// Solves with both backends and checks full agreement.
fn differential(model: &Model, context: &str) {
    let sparse = solve(model, SolverBackend::Sparse);
    let dense = solve(model, SolverBackend::Dense);
    match (&sparse, &dense) {
        (Status::Optimal(s), Status::Optimal(d)) => {
            assert!(
                (s.objective - d.objective).abs() <= OBJ_TOL,
                "{context}: objectives differ: sparse {} vs dense {}",
                s.objective,
                d.objective
            );
            assert_feasible(model, &s.values, &format!("{context} (sparse)"));
            assert_feasible(model, &d.values, &format!("{context} (dense)"));
        }
        (Status::Infeasible, Status::Infeasible) => {}
        (Status::Unbounded, Status::Unbounded) => {}
        (s, d) => panic!("{context}: status mismatch: sparse {s:?} vs dense {d:?}"),
    }
}

/// Every LP model an assay formulates (one per partition for assays
/// with run-time-unknown volumes).
fn assay_models(bench: Benchmark, machine: &Machine) -> Vec<Model> {
    let dag = benchmark_dag(bench);
    let opts = LpOptions::rvol();
    if unknown::has_unknown_volumes(&dag) {
        let plan = unknown::partition(&dag, machine).expect("partitions");
        plan.partitions
            .iter()
            .map(|part| lpform::build(&part.dag, machine, &opts).model)
            .collect()
    } else {
        vec![lpform::build(&dag, machine, &opts).model]
    }
}

#[test]
fn backends_agree_on_figure2() {
    let machine = Machine::paper_default();
    let (dag, _) = aqua_assays::figure2::dag();
    let form = lpform::build(&dag, &machine, &LpOptions::rvol());
    differential(&form.model, "figure2");
}

#[test]
fn backends_agree_on_glucose() {
    let machine = Machine::paper_default();
    for (i, m) in assay_models(Benchmark::Glucose, &machine)
        .iter()
        .enumerate()
    {
        differential(m, &format!("glucose[{i}]"));
    }
}

#[test]
fn backends_agree_on_glycomics_partitions() {
    let machine = Machine::paper_default();
    let models = assay_models(Benchmark::Glycomics, &machine);
    assert!(models.len() > 1, "glycomics should partition");
    for (i, m) in models.iter().enumerate() {
        differential(m, &format!("glycomics[{i}]"));
    }
}

#[test]
fn backends_agree_on_enzyme_formulations() {
    let machine = Machine::paper_default();
    // Enzyme (4 dilutions) is the paper's infeasible case (§4.2); a
    // 6-dilution variant keeps the differential check cheap enough for
    // debug-mode CI while still exercising a few hundred constraints.
    for bench in [Benchmark::Enzyme, Benchmark::EnzymeN(6)] {
        for (i, m) in assay_models(bench, &machine).iter().enumerate() {
            differential(m, &format!("{}[{i}]", bench.name()));
        }
    }
}

/// Seeded random LPs: dense constraint structure, mixed senses, some
/// bounded and some free variables. Feasibility is guaranteed by
/// generating constraints satisfied at a random interior point.
#[test]
fn backends_agree_on_seeded_random_models() {
    let mut rng = XorShift64Star::new(0x5eed_cafe_f00d_0001);
    for trial in 0..40 {
        let nvars = 2 + (rng.next_u64() % 8) as usize;
        let ncons = 1 + (rng.next_u64() % 12) as usize;
        let sense = if rng.next_u64().is_multiple_of(2) {
            aqua_lp::Sense::Maximize
        } else {
            aqua_lp::Sense::Minimize
        };
        let mut m = Model::new(sense);
        let mut point = Vec::with_capacity(nvars);
        let vars: Vec<_> = (0..nvars)
            .map(|i| {
                let free = rng.next_u64().is_multiple_of(4);
                let (lb, ub) = if free {
                    (f64::NEG_INFINITY, f64::INFINITY)
                } else {
                    (0.0, 1.0 + (rng.next_u64() % 20) as f64)
                };
                // An interior point used to keep the model feasible.
                point.push(if free {
                    (rng.next_u64() % 21) as f64 - 10.0
                } else {
                    ub * 0.5
                });
                m.add_var(format!("x{i}"), lb, ub)
            })
            .collect();
        let obj: Vec<_> = vars
            .iter()
            .map(|&v| (v, (rng.next_u64() % 11) as f64 - 5.0))
            .collect();
        m.set_objective(obj);
        for c in 0..ncons {
            let mut terms = Vec::new();
            for &v in &vars {
                if !rng.next_u64().is_multiple_of(3) {
                    terms.push((v, (rng.next_u64() % 9) as f64 - 4.0));
                }
            }
            if terms.is_empty() {
                continue;
            }
            let at_point: f64 = terms.iter().map(|&(v, coef)| coef * point[v.index()]).sum();
            let slack = (rng.next_u64() % 5) as f64;
            match rng.next_u64() % 3 {
                0 => m.add_le(format!("c{c}"), terms, at_point + slack),
                1 => m.add_ge(format!("c{c}"), terms, at_point - slack),
                _ => m.add_eq(format!("c{c}"), terms, at_point),
            };
        }
        differential(&m, &format!("random trial {trial}"));
    }
}
