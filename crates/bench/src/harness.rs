//! A dependency-free timing harness.
//!
//! `criterion` cannot be fetched in the offline build, so benchmark
//! binaries use this instead: a fixed number of warmup iterations
//! followed by `iters` timed iterations, reported as min / mean /
//! median / p95 wall times. Results can be serialized to a small
//! hand-rolled JSON file (`BENCH_lp.json` at the repo root) so the
//! performance trajectory is tracked across PRs.
//!
//! The JSON schema (`bench_lp/v1`) is documented in EXPERIMENTS.md; it
//! is flat on purpose so `jq`-free scripts can grep it.

use std::fmt::Write as _;
use std::time::Instant;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case name, e.g. `enzyme10/sparse`.
    pub name: String,
    /// Timed iterations (after warmup).
    pub iters: usize,
    /// Minimum observed wall time in nanoseconds.
    pub min_ns: u128,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: u128,
    /// Median in nanoseconds.
    pub median_ns: u128,
    /// 95th percentile in nanoseconds (nearest-rank).
    pub p95_ns: u128,
}

impl Measurement {
    /// Median as seconds.
    pub fn median_secs(&self) -> f64 {
        self.median_ns as f64 / 1e9
    }
}

/// Runs `warmup` untimed then `iters` timed iterations of `f`.
///
/// The closure's return value is passed through [`std::hint::black_box`]
/// so the optimizer cannot elide the work.
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn time<T>(name: &str, warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> Measurement {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns: Vec<u128> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples_ns.push(start.elapsed().as_nanos());
    }
    samples_ns.sort_unstable();
    let min_ns = samples_ns[0];
    let mean_ns = samples_ns.iter().sum::<u128>() / iters as u128;
    let median_ns = samples_ns[iters / 2];
    // Nearest-rank p95 (ceil(0.95 n) th order statistic, 1-based).
    let p95_idx = ((iters as f64 * 0.95).ceil() as usize).clamp(1, iters) - 1;
    let p95_ns = samples_ns[p95_idx];
    Measurement {
        name: name.to_owned(),
        iters,
        min_ns,
        mean_ns,
        median_ns,
        p95_ns,
    }
}

/// Prints a measurement in a fixed-width human-readable row.
pub fn report(m: &Measurement) {
    println!(
        "{:<28} {:>6} iters  min {:>12}  median {:>12}  p95 {:>12}",
        m.name,
        m.iters,
        fmt_ns(m.min_ns),
        fmt_ns(m.median_ns),
        fmt_ns(m.p95_ns)
    );
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Appends the standard host-context extras every BENCH file carries:
/// `host_cpus` (hardware parallelism of the machine that produced the
/// numbers — wall-clock rows are incomparable across hosts without it)
/// and, when the benchmark itself ran worker threads, `*_threads`
/// entries naming each thread count used.
pub fn push_host_extras(extras: &mut Vec<(String, Extra)>, threads: &[(&str, usize)]) {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    extras.push(("host_cpus".into(), Extra::Num(host_cpus.to_string())));
    for &(name, n) in threads {
        extras.push((format!("{name}_threads"), Extra::Num(n.to_string())));
    }
}

/// A `name -> JSON value` pair for [`to_json`] extras.
#[derive(Debug, Clone)]
pub enum Extra {
    /// A JSON number (already rendered, e.g. `"2.5"`).
    Num(String),
    /// A JSON string (escaped by the serializer).
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

/// Renders measurements (+ scalar extras) as a `bench_lp/v1` JSON
/// document. Hand-rolled: the offline build has no serde.
pub fn to_json(schema: &str, measurements: &[Measurement], extras: &[(String, Extra)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", escape(schema));
    for (k, v) in extras {
        match v {
            Extra::Num(n) => {
                let _ = writeln!(out, "  \"{}\": {},", escape(k), n);
            }
            Extra::Str(s) => {
                let _ = writeln!(out, "  \"{}\": \"{}\",", escape(k), escape(s));
            }
            Extra::Bool(b) => {
                let _ = writeln!(out, "  \"{}\": {},", escape(k), b);
            }
        }
    }
    out.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"iters\": {}, \"min_ns\": {}, \"mean_ns\": {}, \"median_ns\": {}, \"p95_ns\": {}}}",
            escape(&m.name),
            m.iters,
            m.min_ns,
            m.mean_ns,
            m.median_ns,
            m.p95_ns
        );
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses `--obs PATH` from argv. Like `--out`, a flag without a path
/// is a hard error (exit 2) — a typo must not silently drop the trace.
pub fn obs_path_from_args(args: &[String]) -> Option<String> {
    let pos = args.iter().position(|a| a == "--obs")?;
    match args.get(pos + 1) {
        Some(p) if !p.starts_with("--") => Some(p.clone()),
        _ => {
            eprintln!("error: --obs requires a path");
            std::process::exit(2);
        }
    }
}

/// Builds a recording observability handle when `--obs` was given, or
/// the no-op handle otherwise. Returns the sink alongside so the caller
/// can export it with [`write_obs_trace`] at exit.
pub fn obs_from_args(
    args: &[String],
) -> (
    aqua_obs::Obs,
    Option<(String, std::sync::Arc<aqua_obs::MemorySink>)>,
) {
    match obs_path_from_args(args) {
        Some(path) => {
            let (obs, sink) = aqua_obs::Obs::recording();
            (obs, Some((path, sink)))
        }
        None => (aqua_obs::Obs::off(), None),
    }
}

/// Writes the Chrome trace-event JSON for a recorded run and prints the
/// compact text summary to stdout.
///
/// # Panics
///
/// Panics if the trace file cannot be written (benchmark binaries treat
/// that as fatal, like their `--out` writes).
pub fn write_obs_trace(path: &str, sink: &aqua_obs::MemorySink) {
    let trace = aqua_obs::export::chrome_trace(sink);
    std::fs::write(path, &trace).expect("write obs trace");
    println!("\n{}", aqua_obs::export::text_summary(sink));
    println!("wrote obs trace to {path}");
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_collects_the_requested_iterations() {
        let mut runs = 0usize;
        let m = time("noop", 2, 5, || runs += 1);
        assert_eq!(runs, 7, "2 warmup + 5 timed");
        assert_eq!(m.iters, 5);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.p95_ns);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let m = time("case", 0, 3, || 1 + 1);
        let json = to_json(
            "bench_lp/v1",
            &[m],
            &[
                ("quick".into(), Extra::Bool(true)),
                ("speedup".into(), Extra::Num("2.50".into())),
                ("note".into(), Extra::Str("a \"quoted\" note".into())),
            ],
        );
        assert!(json.contains("\"schema\": \"bench_lp/v1\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"speedup\": 2.50"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"name\": \"case\""));
        // Balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.50 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
