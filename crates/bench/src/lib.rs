//! Benchmark harness shared by the table/figure regenerator binaries
//! and the Criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§4); run them with `cargo run --release --bin
//! <name>`:
//!
//! | binary            | artifact |
//! |-------------------|----------|
//! | `fig2_example`    | Figures 2/3/5 — running example, LP constraints, DAGSolve numbers |
//! | `fig12_glucose`   | Figure 12 — glucose volumes |
//! | `fig13_glycomics` | Figure 13 — glycomics partitions |
//! | `fig14_enzyme`    | Figure 14 — enzyme cascading + replication story |
//! | `rounding_error`  | §4.2 — RVol→IVol rounding error |
//! | `table2`          | Table 2 — DAGSolve vs LP times, constraints, regenerations |
//! | `lp_constrained`  | §4.3 — LP with DAGSolve's extra constraints |
//! | `ilp_vs_lp`       | §4.3 — ILP (budgeted) vs LP |

#![warn(missing_docs)]

pub mod harness;

use std::time::{Duration, Instant};

use aqua_dag::Dag;
use aqua_lp::{solve_with, SimplexConfig, Status};
use aqua_rational::Ratio;
use aqua_sim::regen::{count_regenerations, RegenConfig};
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::unknown;
use aqua_volume::Machine;

pub use aqua_assays::Benchmark;

/// One measured Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub assay: String,
    /// DAGSolve wall time (compile-time Vnorm + dispensing; for
    /// partitioned assays the sum over all partitions, as in the paper).
    pub dagsolve: Duration,
    /// LP wall time (formulation + solve).
    pub lp: Duration,
    /// Whether the LP found a feasible solution.
    pub lp_feasible: bool,
    /// Number of LP constraints as formulated.
    pub lp_constraints: usize,
    /// Regenerations without volume management.
    pub regen_count: u64,
}

/// Repeats a measurement like the paper ("each number is averaged over
/// 10 runs"): fast measurements are re-run 10x and averaged; anything
/// slower than a second is reported from a single run.
fn averaged<T>(mut f: impl FnMut() -> (Duration, T)) -> (Duration, T) {
    let (first, value) = f();
    if first > Duration::from_secs(1) {
        return (first, value);
    }
    let mut total = first;
    for _ in 0..9 {
        total += f().0;
    }
    (total / 10, value)
}

/// Times DAGSolve end to end on a DAG (averaged over 10 runs). For DAGs
/// with unknown volumes this is partitioning + compile-time Vnorms +
/// one run-time dispensing sweep with synthetic measurements (10 nl
/// yields), matching the paper's glycomics methodology.
pub fn time_dagsolve(dag: &Dag, machine: &Machine) -> (Duration, bool) {
    averaged(|| time_dagsolve_once(dag, machine))
}

fn time_dagsolve_once(dag: &Dag, machine: &Machine) -> (Duration, bool) {
    let start = Instant::now();
    let ok = if unknown::has_unknown_volumes(dag) {
        match unknown::partition(dag, machine) {
            Ok(plan) => plan
                .dispense_all(machine, |_, _| Some(Ratio::from_int(10)))
                .is_ok(),
            Err(_) => false,
        }
    } else {
        aqua_volume::dagsolve::solve(dag, machine)
            .map(|s| s.underflow.is_none())
            .unwrap_or(false)
    };
    (start.elapsed(), ok)
}

/// Times LP formulation + solve on a DAG (per partition when volumes
/// are unknown, like the paper's four-partition glycomics runs),
/// averaged over 10 runs when fast. Returns (time, feasible,
/// constraint count).
pub fn time_lp(dag: &Dag, machine: &Machine, opts: &LpOptions) -> (Duration, bool, usize) {
    time_lp_obs(dag, machine, opts, &aqua_obs::Obs::off())
}

/// [`time_lp`] with an observability handle threaded into the solver
/// (pivot counters and phase spans land in the attached sink).
pub fn time_lp_obs(
    dag: &Dag,
    machine: &Machine,
    opts: &LpOptions,
    obs: &aqua_obs::Obs,
) -> (Duration, bool, usize) {
    let (d, (ok, n)) = averaged(|| {
        let (d, ok, n) = time_lp_once(dag, machine, opts, obs);
        (d, (ok, n))
    });
    (d, ok, n)
}

fn time_lp_once(
    dag: &Dag,
    machine: &Machine,
    opts: &LpOptions,
    obs: &aqua_obs::Obs,
) -> (Duration, bool, usize) {
    let config = SimplexConfig {
        obs: obs.clone(),
        ..SimplexConfig::default()
    };
    let start = Instant::now();
    if unknown::has_unknown_volumes(dag) {
        let Ok(plan) = unknown::partition(dag, machine) else {
            return (start.elapsed(), false, 0);
        };
        let mut constraints = 0;
        let mut feasible = true;
        for part in &plan.partitions {
            let form = lpform::build(&part.dag, machine, opts);
            constraints += form.num_constraints;
            let out = solve_with(&form.model, &config);
            feasible &= matches!(out.status, Status::Optimal(_));
        }
        (start.elapsed(), feasible, constraints)
    } else {
        let form = lpform::build(dag, machine, opts);
        let constraints = form.num_constraints;
        let out = solve_with(&form.model, &config);
        let feasible = matches!(out.status, Status::Optimal(_));
        (start.elapsed(), feasible, constraints)
    }
}

/// Builds a benchmark's DAG without volume management.
///
/// # Panics
///
/// Panics if the bundled benchmark source fails to compile (that would
/// be a bug in this crate).
pub fn benchmark_dag(bench: Benchmark) -> Dag {
    let flat = aqua_lang::compile_to_flat(&bench.source()).expect("benchmark parses");
    let (dag, _) = aqua_compiler::lower_to_dag(&flat).expect("benchmark lowers");
    dag
}

/// Measures one Table 2 row.
pub fn table2_row(bench: Benchmark, machine: &Machine) -> Table2Row {
    table2_row_obs(bench, machine, &aqua_obs::Obs::off())
}

/// [`table2_row`] with an observability handle: each stage is wrapped
/// in a span (`table2.dagsolve` / `table2.lp` / `table2.regen`) and the
/// LP stage reports pivot counters through the handle.
pub fn table2_row_obs(bench: Benchmark, machine: &Machine, obs: &aqua_obs::Obs) -> Table2Row {
    let dag = benchmark_dag(bench);
    let (dagsolve, _) = {
        let _span = obs.span("table2.dagsolve");
        time_dagsolve(&dag, machine)
    };
    let (lp, lp_feasible, lp_constraints) = {
        let _span = obs.span("table2.lp");
        time_lp_obs(&dag, machine, &LpOptions::rvol(), obs)
    };
    let regen = {
        let _span = obs.span("table2.regen");
        count_regenerations(&dag, machine, &RegenConfig::default())
    };
    Table2Row {
        assay: bench.name(),
        dagsolve,
        lp,
        lp_feasible,
        lp_constraints,
        regen_count: regen.regenerations,
    }
}

/// Formats a duration in seconds with three decimals (Table 2 style).
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glucose_row_has_expected_structure() {
        let machine = Machine::paper_default();
        let row = table2_row(Benchmark::Glucose, &machine);
        assert_eq!(row.assay, "Glucose");
        // Constraint count from the paper's accounting (49).
        assert_eq!(row.lp_constraints, 49);
        assert!(row.lp_feasible);
        assert!(row.regen_count > 0, "baseline must regenerate");
    }

    #[test]
    fn glycomics_times_cover_all_partitions() {
        let machine = Machine::paper_default();
        let dag = benchmark_dag(Benchmark::Glycomics);
        let (t, ok) = time_dagsolve(&dag, &machine);
        assert!(ok, "glycomics dispensing failed");
        assert!(t.as_secs_f64() < 5.0);
    }

    #[test]
    fn enzyme_lp_is_infeasible_like_the_paper() {
        // §4.2: "we found that LP also fails to avoid this underflow".
        let machine = Machine::paper_default();
        let dag = benchmark_dag(Benchmark::Enzyme);
        let (_, feasible, constraints) = time_lp(&dag, &machine, &LpOptions::rvol());
        assert!(!feasible);
        // Paper counts 872; our accounting lands in the same regime.
        assert!(
            (800..=1100).contains(&constraints),
            "constraints {constraints}"
        );
    }
}
