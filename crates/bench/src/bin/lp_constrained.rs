//! Regenerates the §4.3 experiment: adding DAGSolve's two artificial
//! constraints (flow conservation + output equalization) to the LP
//! narrows but does not close the speed gap to DAGSolve (paper: ~80x
//! plain, ~60x with the extra constraints, minimum over the assays).

use aqua_bench::{benchmark_dag, secs, time_dagsolve, time_lp, Benchmark};
use aqua_volume::lpform::LpOptions;
use aqua_volume::Machine;

fn main() {
    let machine = Machine::paper_default();
    println!("=== §4.3: LP with DAGSolve's additional constraints ===\n");
    println!(
        "{:<12} {:>14} {:>12} {:>16} {:>10} {:>12}",
        "Assay", "DAGSolve (s)", "LP (s)", "LP+constr (s)", "LP/DS", "LP+c/DS"
    );
    let suite = [Benchmark::Glucose, Benchmark::Glycomics, Benchmark::Enzyme];
    // Each assay's three measurements are independent of the others;
    // fan assays out across cores (sequential on a single-core machine).
    let rows = aqua_lp::batch::run_parallel(suite.len(), |i| {
        let bench = suite[i];
        let dag = benchmark_dag(bench);
        let (ds, _) = time_dagsolve(&dag, &machine);
        let (lp, _, _) = time_lp(&dag, &machine, &LpOptions::rvol());
        let (lpc, _, _) = time_lp(&dag, &machine, &LpOptions::with_dagsolve_constraints());
        (bench, ds, lp, lpc)
    });
    for (bench, ds, lp, lpc) in rows {
        let ratio = |a: std::time::Duration| a.as_secs_f64() / ds.as_secs_f64().max(1e-9);
        println!(
            "{:<12} {:>14} {:>12} {:>16} {:>9.0}x {:>11.0}x",
            bench.name(),
            secs(ds),
            secs(lp),
            secs(lpc),
            ratio(lp),
            ratio(lpc)
        );
    }
    println!("\nShape check: both LP variants remain 1-2 orders of magnitude");
    println!("slower than DAGSolve; the extra constraints help somewhat but do");
    println!("not close the gap (the paper's ~80x vs ~60x).");
}
