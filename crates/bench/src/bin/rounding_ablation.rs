//! Ablation: independent rounding (the paper's simple scheme) vs
//! apportioned rounding (one of the "more sophisticated rounding
//! techniques" the paper defers to future work — largest-remainder
//! apportionment of least counts per node).

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_volume::round::{round_apportioned, round_assignment};
use aqua_volume::{dagsolve, Machine};

fn main() {
    let machine = Machine::paper_default();
    println!("=== Rounding ablation: independent vs apportioned ===\n");
    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>16} {:>16}",
        "assay", "scheme", "max err %", "mean err %", "underflows", "conserving"
    );
    for bench in [Benchmark::Glucose, Benchmark::Enzyme] {
        let dag = benchmark_dag(bench);
        let sol = dagsolve::solve(&dag, &machine).expect("solves");
        for (label, rounded) in [
            ("indep", round_assignment(&dag, &machine, &sol)),
            ("apport", round_apportioned(&dag, &machine, &sol)),
        ] {
            // Conservation check: does every node's rounded consumption
            // stay within its rounded production?
            let conserving = dag.node_ids().all(|n| {
                let out: aqua_rational::Ratio = dag
                    .out_edges(n)
                    .iter()
                    .map(|&e| rounded.edge_volumes_nl[e.index()])
                    .sum();
                out <= rounded.node_volumes_nl[n.index()]
            });
            println!(
                "{:<10} {:>8} {:>16.3} {:>16.3} {:>16} {:>16}",
                bench.name(),
                label,
                rounded.max_ratio_error.to_f64() * 100.0,
                rounded.mean_ratio_error.to_f64() * 100.0,
                rounded.underflows.len(),
                if conserving { "yes" } else { "no" }
            );
        }
    }
    println!("\nApportioned rounding guarantees per-node conservation by");
    println!("construction at essentially unchanged ratio error — it removes the");
    println!("rounding-drift deficits the independent scheme can cause at high");
    println!("fan-outs, which is the property the executed volume plan needs.");
}
