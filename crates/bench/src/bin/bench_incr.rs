//! Times push-mode incremental recompilation (`session.edit`) against
//! cold front-door compiles across the edit-type × assay matrix and
//! writes `BENCH_incr.json` at the repo root.
//!
//! Usage: `cargo run --release --bin bench_incr [--quick] [--out PATH]`
//!
//! Four edit types are driven per assay (Glucose, Glycomics, Enzyme,
//! Enzyme10):
//!
//! * `ratio` — a single-mix ratio change, the dirty-slice replay fast
//!   path;
//! * `weight` — an output-volume (weight) change, also replayed;
//! * `machine` — a machine-parameter change, the typed full-recompile
//!   path (expected ~cold latency);
//! * `struct` — node add/remove, the structural full-recompile path.
//!
//! `cold` is the whole front door on a cleared cache — parse, lower,
//! canonicalize, plan, render — i.e. what a session-less client pays
//! to re-submit the edited assay. Every incremental result is checked
//! byte-identical to a cold compile of the identically-edited DAG
//! before anything is timed; `divergences` counts mismatches and must
//! be zero.
//!
//! The binary exits nonzero if `divergences > 0` or if the headline
//! `incr_over_cold` (enzyme10 cold p50 / enzyme10 single-ratio-edit
//! p50) drops below 10x.
//!
//! `--quick` drops iteration counts to a smoke-test level for CI; use
//! the default mode to regenerate the committed `BENCH_incr.json`.

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_dag::{Dag, NodeId, NodeKind};
use aqua_serve::{apply_delta, canonicalize, compile_plan, Service, ServiceConfig};
use aqua_volume::Machine;
use std::collections::HashMap;
use std::time::Instant;

/// The acceptance floor for the headline ratio-edit speedup.
const MIN_INCR_OVER_COLD: f64 = 10.0;

/// Times `iters` runs of `f`, returning the sorted per-request samples
/// in nanoseconds.
fn sample(warmup: usize, iters: usize, mut f: impl FnMut() -> String) -> Vec<u128> {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples_ns.push(start.elapsed().as_nanos());
    }
    samples_ns.sort_unstable();
    samples_ns
}

/// Nearest-rank percentile (q in `[0,1]`) of sorted samples.
fn percentile(sorted_ns: &[u128], q: f64) -> u128 {
    let idx = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx]
}

fn measurement(name: &str, sorted_ns: &[u128]) -> Measurement {
    let iters = sorted_ns.len();
    Measurement {
        name: name.to_owned(),
        iters,
        min_ns: sorted_ns[0],
        mean_ns: sorted_ns.iter().sum::<u128>() / iters as u128,
        median_ns: percentile(sorted_ns, 0.50),
        p95_ns: percentile(sorted_ns, 0.95),
    }
}

/// Extracts the raw bytes of a response's *last* JSON member.
fn last_member<'a>(line: &'a str, name: &str) -> &'a str {
    let marker = format!(",\"{name}\":");
    let at = line.find(&marker).unwrap_or_else(|| {
        panic!("response has no `{name}` member: {line}");
    });
    &line[at + marker.len()..line.len() - 1]
}

struct Case {
    name: &'static str,
    src: String,
    /// The mix node targeted by ratio edits (name + in-edge sources).
    mix: String,
    mix_inputs: Vec<String>,
    /// The output node targeted by weight edits.
    output: String,
}

/// Picks, deterministically, the first mix whose in-edge sources have
/// pairwise-distinct names (the wire addresses ratio parts by name)
/// and the first output node.
fn probe_targets(dag: &Dag) -> (String, Vec<String>, String) {
    let mix = dag
        .node_ids()
        .find(|&n| {
            if !matches!(dag.node(n).kind, NodeKind::Mix { .. }) {
                return false;
            }
            let names: std::collections::HashSet<&str> = dag
                .in_edges(n)
                .iter()
                .map(|&e| dag.node(dag.edge(e).src).name.as_str())
                .collect();
            dag.in_edges(n).len() >= 2 && names.len() == dag.in_edges(n).len()
        })
        .expect("assay has an editable mix");
    let inputs = dag
        .in_edges(mix)
        .iter()
        .map(|&e| dag.node(dag.edge(e).src).name.clone())
        .collect();
    let output = dag
        .node_ids()
        .find(|&n| dag.out_edges(n).is_empty())
        .expect("assay has a sink");
    (
        dag.node(mix).name.clone(),
        inputs,
        dag.node(output).name.clone(),
    )
}

/// Renders the ratio-edit request for toggle state `flip`: the first
/// part toggles 1↔2, the rest are fixed at `k + 1`.
fn ratio_edit(case: &Case, sid: &str, id: usize, flip: bool) -> String {
    let parts: Vec<String> = case
        .mix_inputs
        .iter()
        .enumerate()
        .map(|(k, name)| {
            let count = if k == 0 && flip { 2 } else { k as u64 + 1 };
            format!("[{},{count}]", aqua_serve::json::quote(name))
        })
        .collect();
    format!(
        "{{\"id\":{id},\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_ratio\":{{\"node\":{},\"parts\":[{}]}}}}}}",
        aqua_serve::json::quote(&case.mix),
        parts.join(",")
    )
}

fn register(svc: &Service, src: &str) -> (String, String) {
    let line = svc.handle_line(&format!(
        "{{\"id\":1,\"cmd\":\"session.register\",\"src\":{}}}",
        aqua_serve::json::quote(src)
    ));
    assert!(line.contains("\"ok\":true"), "register failed: {line}");
    let v = aqua_serve::json::parse(&line).expect("register line parses");
    let sid = v
        .get("session")
        .and_then(|s| s.as_str())
        .expect("session id")
        .to_owned();
    (sid, last_member(&line, "plan").to_owned())
}

/// Byte-identity check: drives one ratio edit and one weight edit
/// through a fresh session and compares the delta-chained plans to
/// cold compiles of the identically-edited DAG. Returns the number of
/// divergences (0 on a correct build).
fn verify_case(case: &Case, machine: &Machine) -> usize {
    let svc = Service::new(ServiceConfig::default());
    let (sid, mut plan) = register(&svc, &case.src);
    let flat = aqua_lang::compile_to_flat(&case.src).expect("assay parses");
    let (mut dag, map) = aqua_compiler::lower_to_dag(&flat).expect("assay lowers");
    let mut weights: HashMap<NodeId, u64> = map.output_weights;
    let mut divergences = 0;

    // Ratio edit.
    let line = svc.handle_line(&ratio_edit(case, &sid, 2, true));
    assert!(line.contains("\"ok\":true"), "{line}");
    plan = apply_delta(&plan, last_member(&line, "delta")).expect("ratio delta applies");
    let mix = dag.find_node(&case.mix).expect("mix resolves");
    let parts: Vec<(NodeId, u64)> = case
        .mix_inputs
        .iter()
        .enumerate()
        .map(|(k, name)| {
            let count = if k == 0 { 2 } else { k as u64 + 1 };
            (dag.find_node(name).expect("mix input resolves"), count)
        })
        .collect();
    aqua_dag::set_mix_ratio(&mut dag, mix, &parts).expect("ratio edit is valid");
    let canon = canonicalize(&dag, &weights, machine).expect("edited DAG canonicalizes");
    if plan != compile_plan(&canon, machine, &aqua_obs::Obs::off()) {
        eprintln!("divergence: {} ratio edit != cold compile", case.name);
        divergences += 1;
    }

    // Weight edit.
    let line = svc.handle_line(&format!(
        "{{\"id\":3,\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
         \"edit\":{{\"set_output_volume\":{{\"node\":{},\"weight\":3}}}}}}",
        aqua_serve::json::quote(&case.output)
    ));
    assert!(line.contains("\"ok\":true"), "{line}");
    plan = apply_delta(&plan, last_member(&line, "delta")).expect("weight delta applies");
    weights.insert(dag.find_node(&case.output).expect("output resolves"), 3);
    let canon = canonicalize(&dag, &weights, machine).expect("edited DAG canonicalizes");
    if plan != compile_plan(&canon, machine, &aqua_obs::Obs::off()) {
        eprintln!("divergence: {} weight edit != cold compile", case.name);
        divergences += 1;
    }
    divergences
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incr.json").to_owned(),
    };

    let machine = Machine::paper_default();
    let mut cases: Vec<Case> = Vec::new();
    for (name, src) in [
        ("glucose", aqua_assays::glucose::SOURCE.to_owned()),
        ("glycomics", aqua_assays::glycomics::SOURCE.to_owned()),
        ("enzyme", aqua_assays::enzyme::source_n(4)),
        ("enzyme10", aqua_assays::enzyme::source_n(10)),
    ] {
        let flat = aqua_lang::compile_to_flat(&src).expect("assay parses");
        let (dag, _) = aqua_compiler::lower_to_dag(&flat).expect("assay lowers");
        let (mix, mix_inputs, output) = probe_targets(&dag);
        cases.push(Case {
            name,
            src,
            mix,
            mix_inputs,
            output,
        });
    }

    println!(
        "bench_incr: session.edit vs cold front-door compile ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    // Byte-identity first: nothing is timed on a diverging build.
    let mut divergences = 0;
    for case in &cases {
        divergences += verify_case(case, &machine);
    }

    let (cold_iters, incr_iters) = if quick { (3, 30) } else { (15, 300) };
    let warmup = if quick { 0 } else { 2 };
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = vec![("quick".into(), Extra::Bool(quick))];
    let mut enzyme10_ratio = (0u128, 0u128); // (cold p50, incr p50)

    for case in &cases {
        // Cold: full front door on a cleared cache.
        let svc = Service::new(ServiceConfig::default());
        let req = format!(
            "{{\"id\":1,\"src\":{}}}",
            aqua_serve::json::quote(&case.src)
        );
        let cold = sample(warmup, cold_iters, || {
            svc.clear_cache();
            let line = svc.handle_line(&req);
            assert!(line.contains("\"ok\":true"), "cold compile failed: {line}");
            line
        });
        let cold_p50 = percentile(&cold, 0.50);
        let m = measurement(&format!("{}/cold", case.name), &cold);
        harness::report(&m);
        measurements.push(m);
        extras.push((
            format!("{}_cold_p50_ns", case.name),
            Extra::Num(cold_p50.to_string()),
        ));

        // Incremental: one live session per edit type, toggling the
        // edited value so every request is a real change.
        let (sid, _) = register(&svc, &case.src);
        type EditFn<'a> = Box<dyn Fn(usize, bool) -> String + 'a>;
        let modes: [(&str, EditFn); 4] = [
            (
                "ratio",
                Box::new(|id, flip| ratio_edit(case, &sid, id, flip)),
            ),
            (
                "weight",
                Box::new(|id, flip| {
                    format!(
                        "{{\"id\":{id},\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
                         \"edit\":{{\"set_output_volume\":{{\"node\":{},\"weight\":{}}}}}}}",
                        aqua_serve::json::quote(&case.output),
                        if flip { 3 } else { 2 }
                    )
                }),
            ),
            (
                "machine",
                Box::new(|id, flip| {
                    format!(
                        "{{\"id\":{id},\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
                         \"edit\":{{\"set_machine\":{{\"max_capacity_nl\":{}}}}}}}",
                        if flip { 200 } else { 150 }
                    )
                }),
            ),
            (
                "struct",
                Box::new(|id, flip| {
                    if flip {
                        format!(
                            "{{\"id\":{id},\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
                             \"edit\":{{\"add_node\":{{\"name\":\"bench_probe\",\
                             \"process\":{{\"op\":\"sense.OD\",\"from\":{}}}}}}}}}",
                            aqua_serve::json::quote(&case.mix)
                        )
                    } else {
                        format!(
                            "{{\"id\":{id},\"cmd\":\"session.edit\",\"session\":\"{sid}\",\
                             \"edit\":{{\"remove_node\":{{\"node\":\"bench_probe\"}}}}}}"
                        )
                    }
                }),
            ),
        ];
        for (mode, render) in &modes {
            let mut n = 0usize;
            // Structural toggles must start from the "absent" state and
            // alternate strictly, so the warmup count must be even.
            let samples = sample(warmup & !1, incr_iters & !1, || {
                n += 1;
                let line = svc.handle_line(&render(n + 1, n % 2 == 1));
                assert!(line.contains("\"ok\":true"), "{mode} edit failed: {line}");
                line
            });
            let p50 = percentile(&samples, 0.50);
            let m = measurement(&format!("{}/{}", case.name, mode), &samples);
            harness::report(&m);
            measurements.push(m);
            extras.push((
                format!("{}_{}_incr_p50_ns", case.name, mode),
                Extra::Num(p50.to_string()),
            ));
            if case.name == "enzyme10" && *mode == "ratio" {
                enzyme10_ratio = (cold_p50, p50);
            }
        }
        println!();
    }

    let (cold_p50, incr_p50) = enzyme10_ratio;
    let incr_over_cold = cold_p50 as f64 / incr_p50.max(1) as f64;
    println!(
        "headline: enzyme10 cold p50 {}  ratio-edit p50 {}  incr_over_cold {:.1}x",
        harness::fmt_ns(cold_p50),
        harness::fmt_ns(incr_p50),
        incr_over_cold
    );
    println!("divergences: {divergences}");

    extras.push((
        "incr_over_cold".into(),
        Extra::Num(format!("{incr_over_cold:.2}")),
    ));
    extras.push(("divergences".into(), Extra::Num(divergences.to_string())));
    harness::push_host_extras(&mut extras, &[]);

    let json = harness::to_json("bench_incr/v1", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_incr.json");
    println!("wrote {out_path}");

    if divergences > 0 {
        eprintln!("error: {divergences} incremental plan(s) diverged from cold compiles");
        std::process::exit(1);
    }
    if incr_over_cold < MIN_INCR_OVER_COLD {
        eprintln!(
            "error: incr_over_cold {incr_over_cold:.2} < {MIN_INCR_OVER_COLD} acceptance floor"
        );
        std::process::exit(1);
    }
}
