//! Million-run deterministic replay soak over the descriptor log.
//!
//! Usage: `cargo run --release --bin bench_replay [--quick] [--out PATH]`
//!
//! Four phases, writing `BENCH_replay.json` at the repo root:
//!
//! * **record** — measures the recorded-run cost: a genuine compile
//!   plus one execution per descriptor, sampled per assay and weighted
//!   by the fleet mix. This is what each original run cost before its
//!   descriptor landed in the log.
//! * **log** — appends the whole fleet to a CRC-guarded descriptor log
//!   in a temp directory, reopens it, and requires the recovered fleet
//!   to match what was appended record-for-record.
//! * **soak** — replays the recovered fleet from cached plans (no
//!   recompilation) until the run floor is reached: 1,000,000+
//!   executions in full mode. The first passes run at 1, 2, and 8
//!   threads with per-run digests kept and compared pairwise; later
//!   passes alternate thread counts and must reproduce the
//!   order-invariant aggregate digest exactly. Per-run obs stream into
//!   a lock-sharded [`aqua_obs::fleet::FleetSink`] throughout.
//! * **wire** — serves `obs.snapshot` over the NDJSON wire from the
//!   soak's aggregator and requires the response to embed the local
//!   [`aqua_obs::fleet::FleetSnapshot::to_json`] rendering
//!   byte-for-byte.
//!
//! Hard gates (exit nonzero): zero conservation violations, zero
//! unrecovered faults, zero cross-thread digest mismatches, wire
//! equality, the run floor, and — in full mode, where the fleet
//! includes enzyme10 (a multi-second compile replayed in milliseconds)
//! — replay throughput at least 50x the recorded-run cost.
//!
//! `--quick` shrinks the floor to a CI smoke level and drops enzyme10
//! (so the 50x gate is reported but not enforced); use the default
//! mode to regenerate the committed `BENCH_replay.json`.

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_compiler::{compile, CompileOptions};
use aqua_obs::fleet::FleetSink;
use aqua_obs::Obs;
use aqua_serve::server::serve_lines;
use aqua_serve::{Service, ServiceConfig};
use aqua_sim::replay::{
    replay, run_one, DescriptorLog, FleetReport, PlanSet, ReplayOptions, RunDescriptor,
};
use aqua_volume::Machine;
use std::io::Cursor;
use std::sync::Arc;
use std::time::Instant;

/// Acceptance floor: replay throughput over recorded-run cost.
const MIN_REPLAY_OVER_RECORD: f64 = 50.0;
/// Run floors.
const FULL_RUN_FLOOR: u64 = 1_000_000;
const QUICK_RUN_FLOOR: u64 = 2_000;

/// One assay in the fleet mix.
struct AssaySpec {
    name: &'static str,
    src: String,
    machine: Machine,
    /// Fault-free descriptors per pass.
    fault_free: usize,
    /// Faulted descriptors per (rate, seeds) pair.
    faulted: &'static [(u32, usize)],
    /// Record-phase samples (genuine compile + run each).
    record_samples: usize,
}

fn fleet_spec(quick: bool) -> Vec<AssaySpec> {
    let paper = Machine::paper_default();
    let mut specs = vec![
        AssaySpec {
            name: "figure2",
            src: aqua_assays::figure2::SOURCE.to_string(),
            machine: paper.clone(),
            fault_free: if quick { 8 } else { 2_400 },
            faulted: &[(1_000, 4), (5_000, 4)],
            record_samples: if quick { 2 } else { 10 },
        },
        AssaySpec {
            name: "glucose",
            src: aqua_assays::glucose::SOURCE.to_string(),
            machine: paper.clone(),
            fault_free: if quick { 8 } else { 2_400 },
            faulted: &[(1_000, 4), (5_000, 4)],
            record_samples: if quick { 2 } else { 10 },
        },
        AssaySpec {
            name: "glycomics",
            src: aqua_assays::glycomics::SOURCE.to_string(),
            machine: paper.clone(),
            fault_free: if quick { 8 } else { 1_200 },
            faulted: &[(1_000, 4)],
            record_samples: if quick { 2 } else { 10 },
        },
    ];
    if !quick {
        // enzyme10 is the cache-value workhorse: a multi-second compile
        // whose replay is a few milliseconds. Fault-free only — its
        // descriptors exist to prove replays skip recompilation, not to
        // stress the recovery ladder.
        specs.push(AssaySpec {
            name: "enzyme10",
            src: aqua_assays::enzyme::source_n(10),
            machine: paper.with_reservoirs(128),
            fault_free: 6,
            faulted: &[],
            record_samples: 2,
        });
    }
    specs
}

fn build_fleet(specs: &[AssaySpec]) -> Vec<RunDescriptor> {
    let mut fleet = Vec::new();
    for spec in specs {
        for seed in 0..spec.fault_free as u64 {
            fleet.push(RunDescriptor::new(spec.name, seed));
        }
        for &(rate_ppm, seeds) in spec.faulted {
            for seed in 0..seeds as u64 {
                fleet.push(RunDescriptor::faulted(spec.name, 1_000 + seed, rate_ppm));
            }
        }
    }
    fleet
}

fn percentile(sorted_ns: &[u128], q: f64) -> u128 {
    let idx = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx]
}

fn measurement(name: &str, mut samples_ns: Vec<u128>) -> Measurement {
    samples_ns.sort_unstable();
    let iters = samples_ns.len();
    Measurement {
        name: name.to_owned(),
        iters,
        min_ns: samples_ns[0],
        mean_ns: samples_ns.iter().sum::<u128>() / iters as u128,
        median_ns: percentile(&samples_ns, 0.50),
        p95_ns: percentile(&samples_ns, 0.95),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json").to_owned(),
    };
    let run_floor = if quick {
        QUICK_RUN_FLOOR
    } else {
        FULL_RUN_FLOOR
    };

    println!(
        "bench_replay: fleet-scale deterministic replay soak ({} mode, floor {run_floor} runs)\n",
        if quick { "quick" } else { "full" }
    );

    let specs = fleet_spec(quick);
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = vec![("quick".into(), Extra::Bool(quick))];

    // ---- record phase: genuine compile + run per sampled descriptor ----
    let mut plans = PlanSet::new();
    let mut record_ns_per_assay: Vec<(usize, u128)> = Vec::new();
    for spec in &specs {
        let mut samples_ns = Vec::with_capacity(spec.record_samples);
        let mut last = None;
        for seed in 0..spec.record_samples as u64 {
            let d = RunDescriptor::new(spec.name, seed);
            let start = Instant::now();
            let out = compile(&spec.src, &spec.machine, &CompileOptions::default())
                .expect("fleet assay compiles");
            let (_, digest) = run_one_with(&spec.machine, &out, &d).expect("recorded run succeeds");
            samples_ns.push(start.elapsed().as_nanos());
            std::hint::black_box(digest);
            last = Some(out);
        }
        plans.insert(spec.name, spec.machine.clone(), last.expect("sampled"));
        let per_pass = spec.fault_free + spec.faulted.iter().map(|&(_, s)| s).sum::<usize>();
        let mean = samples_ns.iter().sum::<u128>() / samples_ns.len() as u128;
        let m = measurement(&format!("record/{}", spec.name), samples_ns);
        harness::report(&m);
        measurements.push(m);
        record_ns_per_assay.push((per_pass, mean));
    }
    let fleet = build_fleet(&specs);
    let record_ns_per_run = {
        let (runs, total) = record_ns_per_assay
            .iter()
            .fold((0u128, 0u128), |(r, t), &(per_pass, mean)| {
                (r + per_pass as u128, t + per_pass as u128 * mean)
            });
        total / runs.max(1)
    };
    println!(
        "\nrecorded-run cost (fleet-weighted mean): {} over {} descriptors/pass\n",
        harness::fmt_ns(record_ns_per_run),
        fleet.len()
    );

    // ---- log phase: durable descriptors, recovered record-for-record ----
    let dir = std::env::temp_dir().join(format!("aqua-bench-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let log_start = Instant::now();
    {
        let (mut log, existing, _) =
            DescriptorLog::open(DescriptorLog::config(&dir)).expect("open descriptor log");
        assert!(existing.is_empty());
        for d in &fleet {
            log.append(d).expect("append descriptor");
        }
    }
    let (_log, recovered, report) =
        DescriptorLog::open(DescriptorLog::config(&dir)).expect("reopen descriptor log");
    let log_ns = log_start.elapsed().as_nanos();
    let log_intact = recovered == fleet;
    println!(
        "log: {} descriptors appended + recovered in {} ({} torn, {} truncated bytes)",
        report.records,
        harness::fmt_ns(log_ns),
        report.torn_records,
        report.truncated_bytes
    );

    // ---- soak phase: replay from cached plans until the floor ----
    let sink = Arc::new(FleetSink::new());
    let thread_plan: &[usize] = &[1, 2, 8];
    let mut digest_mismatches = 0u64;
    let mut total = FleetReport::default();
    let mut reference: Option<(u64, Vec<u64>)> = None;
    let mut soak_wall_ns: u128 = 0;
    let mut passes = 0usize;
    while total.runs < run_floor {
        let threads = thread_plan[passes % thread_plan.len()];
        let keep = passes < thread_plan.len();
        let opts = ReplayOptions {
            threads,
            obs: Obs::with_sink(sink.clone()),
            keep_digests: keep,
        };
        let start = Instant::now();
        let pass = replay(&plans, &recovered, &opts).expect("replay pass");
        soak_wall_ns += start.elapsed().as_nanos();
        match &reference {
            None => reference = Some((pass.aggregate_digest, pass.digests.clone())),
            Some((agg, digests)) => {
                if pass.aggregate_digest != *agg {
                    digest_mismatches += 1;
                    eprintln!(
                        "digest divergence: pass {passes} at {threads} threads: \
                         {:016x} != {:016x}",
                        pass.aggregate_digest, agg
                    );
                }
                if keep {
                    digest_mismatches += pass
                        .digests
                        .iter()
                        .zip(digests)
                        .filter(|(a, b)| a != b)
                        .count() as u64;
                }
            }
        }
        total.runs += pass.runs;
        total.conservation_violations += pass.conservation_violations;
        total.unrecovered_faults += pass.unrecovered_faults;
        total.residual_violations += pass.residual_violations;
        total.faults_injected += pass.faults_injected;
        total.recovery.redispense += pass.recovery.redispense;
        total.recovery.regenerate += pass.recovery.regenerate;
        total.recovery.replan += pass.recovery.replan;
        total.recovery.overflow_trims += pass.recovery.overflow_trims;
        total.wet_seconds += pass.wet_seconds;
        passes += 1;
        if passes.is_multiple_of(10) || total.runs >= run_floor {
            println!(
                "soak: {passes} passes, {} runs, {} wall, aggregate {:016x}",
                total.runs,
                harness::fmt_ns(soak_wall_ns),
                reference.as_ref().map(|(a, _)| *a).unwrap_or(0)
            );
        }
    }
    let replay_ns_per_run = soak_wall_ns / total.runs.max(1) as u128;
    let replay_over_record = record_ns_per_run as f64 / replay_ns_per_run.max(1) as f64;
    let soak_rps = total.runs as f64 / (soak_wall_ns as f64 / 1e9);
    measurements.push(Measurement {
        name: "soak/replay-run".into(),
        iters: total.runs as usize,
        min_ns: replay_ns_per_run,
        mean_ns: replay_ns_per_run,
        median_ns: replay_ns_per_run,
        p95_ns: replay_ns_per_run,
    });
    let snapshot = sink.snapshot();
    println!(
        "soak: {} runs in {} ({:.0} runs/s), {} faults injected, recovery \
         [redispense {}, regenerate {}, replan {}, trims {}]",
        total.runs,
        harness::fmt_ns(soak_wall_ns),
        soak_rps,
        total.faults_injected,
        total.recovery.redispense,
        total.recovery.regenerate,
        total.recovery.replan,
        total.recovery.overflow_trims
    );
    println!(
        "soak: conservation violations {}, unrecovered {}, digest mismatches {}, \
         p999 instruction latency {}",
        total.conservation_violations,
        total.unrecovered_faults,
        digest_mismatches,
        harness::fmt_ns(
            snapshot
                .hist("sim.instr_ns")
                .map(|h| h.quantile_permille(999) as u128)
                .unwrap_or(0)
        )
    );
    println!("headline replay_over_record: {replay_over_record:.1}x\n");

    // ---- wire phase: obs.snapshot must equal the local rendering ----
    let local = snapshot.to_json();
    let service = Service::new(ServiceConfig {
        fleet: Some(sink.clone()),
        ..ServiceConfig::default()
    });
    let mut out = Vec::new();
    serve_lines(
        &service,
        Cursor::new(b"{\"id\":1,\"cmd\":\"obs.snapshot\"}\n".to_vec()),
        &mut out,
    )
    .expect("serve obs.snapshot");
    let wire = String::from_utf8(out).expect("utf8 response");
    let obs_wire_equal = wire.trim_end() == format!("{{\"id\":1,\"ok\":true,\"obs\":{local}}}");
    println!(
        "wire: obs.snapshot {} the local rendering ({} bytes)",
        if obs_wire_equal {
            "byte-identical to"
        } else {
            "DIVERGED from"
        },
        local.len()
    );

    let runs_floor_ok = total.runs >= run_floor;
    extras.push(("run_floor".into(), Extra::Num(run_floor.to_string())));
    extras.push(("runs".into(), Extra::Num(total.runs.to_string())));
    extras.push(("runs_floor_ok".into(), Extra::Bool(runs_floor_ok)));
    extras.push(("passes".into(), Extra::Num(passes.to_string())));
    extras.push(("fleet_size".into(), Extra::Num(fleet.len().to_string())));
    extras.push((
        "conservation_violations".into(),
        Extra::Num(total.conservation_violations.to_string()),
    ));
    extras.push((
        "unrecovered_faults".into(),
        Extra::Num(total.unrecovered_faults.to_string()),
    ));
    extras.push((
        "residual_violations".into(),
        Extra::Num(total.residual_violations.to_string()),
    ));
    extras.push((
        "digest_mismatches".into(),
        Extra::Num(digest_mismatches.to_string()),
    ));
    extras.push((
        "faults_injected".into(),
        Extra::Num(total.faults_injected.to_string()),
    ));
    extras.push((
        "recovery_redispense".into(),
        Extra::Num(total.recovery.redispense.to_string()),
    ));
    extras.push((
        "recovery_regenerate".into(),
        Extra::Num(total.recovery.regenerate.to_string()),
    ));
    extras.push((
        "recovery_replan".into(),
        Extra::Num(total.recovery.replan.to_string()),
    ));
    extras.push((
        "recovery_overflow_trims".into(),
        Extra::Num(total.recovery.overflow_trims.to_string()),
    ));
    extras.push((
        "record_ns_per_run".into(),
        Extra::Num(record_ns_per_run.to_string()),
    ));
    extras.push((
        "replay_ns_per_run".into(),
        Extra::Num(replay_ns_per_run.to_string()),
    ));
    extras.push((
        "replay_over_record".into(),
        Extra::Num(format!("{replay_over_record:.2}")),
    ));
    extras.push(("soak_rps".into(), Extra::Num(format!("{soak_rps:.1}"))));
    extras.push((
        "p999_instr_ns".into(),
        Extra::Num(
            snapshot
                .hist("sim.instr_ns")
                .map(|h| h.quantile_permille(999).to_string())
                .unwrap_or_else(|| "0".into()),
        ),
    ));
    extras.push(("log_intact".into(), Extra::Bool(log_intact)));
    extras.push(("obs_wire_equal".into(), Extra::Bool(obs_wire_equal)));
    harness::push_host_extras(&mut extras, &[("soak_max", 8)]);

    let json = harness::to_json("bench_replay/v1", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_replay.json");
    println!("wrote {out_path}");
    let _ = std::fs::remove_dir_all(&dir);

    let mut failed = false;
    if !log_intact {
        eprintln!("error: recovered fleet diverged from the appended descriptors");
        failed = true;
    }
    if !runs_floor_ok {
        eprintln!("error: soak ran {} < {run_floor} floor", total.runs);
        failed = true;
    }
    if total.conservation_violations > 0 {
        eprintln!(
            "error: {} conservation violation(s) in the soak",
            total.conservation_violations
        );
        failed = true;
    }
    if total.unrecovered_faults > 0 {
        eprintln!(
            "error: {} unrecovered fault(s) in the soak",
            total.unrecovered_faults
        );
        failed = true;
    }
    if digest_mismatches > 0 {
        eprintln!("error: {digest_mismatches} cross-thread digest mismatch(es)");
        failed = true;
    }
    if !obs_wire_equal {
        eprintln!("error: obs.snapshot over the wire diverged from the local rendering");
        failed = true;
    }
    if !quick && replay_over_record < MIN_REPLAY_OVER_RECORD {
        eprintln!(
            "error: replay_over_record {replay_over_record:.2} < \
             {MIN_REPLAY_OVER_RECORD} acceptance floor"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// A recorded original: execute one descriptor against a just-compiled
/// plan (the record phase compiles fresh, so it cannot borrow from a
/// [`PlanSet`] like [`run_one`] does).
fn run_one_with(
    machine: &Machine,
    out: &aqua_compiler::CompileOutput,
    d: &RunDescriptor,
) -> Result<(aqua_sim::exec::ExecReport, u64), aqua_sim::replay::ReplayError> {
    let mut plans = PlanSet::new();
    plans.insert(d.assay.clone(), machine.clone(), out.clone());
    run_one(&plans, d, Obs::off())
}
