//! Quantifies the §3.4.1 comparison against Biostream: with 1:1-only
//! mixing, *every* non-trivial ratio needs a cascade of slow wet
//! merges (with half the droplet discarded per merge), while the
//! paper's variable-ratio mixes need one wet operation each and
//! cascade only for extreme ratios.

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_rational::Ratio;
use aqua_volume::bitmix;

fn main() {
    let tolerance = Ratio::new(1, 100).unwrap(); // 1% concentration error
    println!("=== Biostream (1:1-only) vs variable-ratio wet mix counts ===");
    println!(
        "(tolerance {} concentration error for the 1:1-only plans)\n",
        tolerance
    );
    println!(
        "{:<12} {:>18} {:>18} {:>18} {:>10}",
        "assay", "variable-ratio", "1:1-only", "discarded units", "factor"
    );
    for bench in [Benchmark::Glucose, Benchmark::Glycomics, Benchmark::Enzyme] {
        let dag = benchmark_dag(bench);
        let cmp = bitmix::compare_wet_mixes(&dag, tolerance).expect("plans");
        println!(
            "{:<12} {:>18} {:>18} {:>18} {:>9.1}x",
            bench.name(),
            cmp.variable_ratio_mixes,
            cmp.one_to_one_mixes,
            cmp.discarded_units,
            cmp.one_to_one_mixes as f64 / cmp.variable_ratio_mixes as f64
        );
    }
    println!(
        "\nEvery wet merge takes seconds on the fluid path; the paper's point —\n\
         fixed-ratio hardware pays a cascade per mix, variable-ratio hardware\n\
         cascades only for extreme ratios — holds at 4-8x wet operations on\n\
         these assays, plus one discarded droplet-volume per merge."
    );
}
