//! Regenerates the §4.3 ILP-vs-LP comparison: the ILP (IVol) solver
//! matches LP on the tiny glucose assay but blows its budget on the
//! enzyme assay (the paper's LP_Solve run "ran for hours without
//! generating a solution"; we time-box instead of literally running for
//! hours).

use std::time::Duration;

use aqua_bench::{benchmark_dag, secs, time_lp, Benchmark};
use aqua_lp::{solve_ilp, IlpConfig, IlpStatus};
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::Machine;

fn main() {
    let machine = Machine::paper_default();
    let budget = Duration::from_secs(30);
    println!("=== §4.3: ILP (IVol) vs LP (RVol) ===");
    println!("(ILP budget: {}s per assay)\n", budget.as_secs());
    println!(
        "{:<10} {:>12} {:>14} {:>22}",
        "Assay", "LP (s)", "ILP (s)", "ILP outcome"
    );
    let relaxed_ivol = LpOptions {
        min_volume: false,
        ..LpOptions::ivol()
    };
    for (bench, opts, label) in [
        (Benchmark::Glucose, LpOptions::ivol(), "Glucose"),
        (Benchmark::Enzyme, LpOptions::ivol(), "Enzyme"),
        (Benchmark::Enzyme, relaxed_ivol, "Enzyme*"),
    ] {
        let dag = benchmark_dag(bench);
        let (lp_time, _, _) = time_lp(&dag, &machine, &LpOptions::rvol());
        let form = lpform::build(&dag, &machine, &opts);
        let cfg = IlpConfig {
            time_budget: budget,
            max_nodes: 1_000_000,
            ..IlpConfig::default()
        };
        let start = std::time::Instant::now();
        let out = solve_ilp(&form.model, &cfg);
        let ilp_time = start.elapsed();
        let outcome = match out.status {
            IlpStatus::Optimal(_) => "optimal".to_owned(),
            IlpStatus::Infeasible => "infeasible".to_owned(),
            IlpStatus::Unbounded => "unbounded".to_owned(),
            IlpStatus::BudgetExhausted { incumbent } => format!(
                "budget exhausted ({} nodes, {})",
                out.stats.nodes,
                if incumbent.is_some() {
                    "has incumbent"
                } else {
                    "no solution"
                }
            ),
        };
        println!(
            "{:<10} {:>12} {:>14} {:>22}",
            label,
            secs(lp_time),
            secs(ilp_time),
            outcome
        );
    }
    println!("\n(Enzyme* relaxes the least-count floor so the relaxation is");
    println!(" feasible and branch-and-bound actually searches.)");
    println!("\nShape check: ILP is competitive on Glucose; on Enzyme it either");
    println!("proves infeasibility slowly or exhausts its budget — the paper's");
    println!("\"ran for hours\" observation under a bounded clock.");
}
