//! Regenerates Figure 14: the enzyme assay's rescue story —
//! baseline underflow, cascading, replication, and the combination.

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_volume::{cascade, dagsolve, replicate, vnorm, Machine};

fn describe(dag: &aqua_dag::Dag, machine: &Machine, label: &str) {
    let t = vnorm::compute(dag).expect("vnorm");
    let sol = dagsolve::solve(dag, machine).expect("solve");
    let (_, min) = sol.min_edge.expect("edges");
    let diluent_uses: usize = dag
        .node_ids()
        .filter(|&n| dag.node(n).name.starts_with("diluent"))
        .map(|n| dag.num_uses(n))
        .sum();
    println!("--- {label} ---");
    println!("  diluent uses:        {diluent_uses}");
    println!("  max Vnorm (load):    {:.2}", t.max_load().to_f64());
    println!(
        "  min dispensed:       {:.1} pl{}",
        min.to_f64() * 1000.0,
        if sol.underflow.is_some() {
            "  << UNDERFLOW (least count 100 pl)"
        } else {
            "  (feasible)"
        }
    );
}

fn main() {
    let machine = Machine::paper_default();

    println!("=== Figure 14: enzyme assay (4 dilutions/reagent) ===");
    println!("paper reference: baseline min 9.8 pl; cascade -> 1:999 fixed but");
    println!("1:99 at 65.6 pl; + replication x3 -> 196 pl; replication alone 29.5 pl\n");

    let dag = benchmark_dag(Benchmark::Enzyme);
    describe(&dag, &machine, "baseline (no rewrites)");

    // Cascading only.
    let mut cascaded = dag.clone();
    for node in cascade::find_extreme_mixes(&cascaded, &machine) {
        let info = cascade::apply_cascade(&mut cascaded, node, &machine).expect("cascade");
        println!(
            "  cascaded one 1:999 mix into {} stages of {:?}",
            info.plan.depth(),
            info.plan
                .factors
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
        );
    }
    describe(&cascaded, &machine, "after cascading the 1:999 mixes");

    // Cascading + replication.
    let mut rescued = cascaded.clone();
    let diluent = rescued.find_node("diluent").expect("has diluent");
    replicate::replicate_node(&mut rescued, diluent, 3, &machine).expect("replicate");
    describe(&rescued, &machine, "cascading + diluent replication x3");

    // Replication only.
    let mut repl_only = dag.clone();
    let diluent = repl_only.find_node("diluent").expect("has diluent");
    replicate::replicate_node(&mut repl_only, diluent, 3, &machine).expect("replicate");
    describe(&repl_only, &machine, "replication x3 only (no cascading)");
}
