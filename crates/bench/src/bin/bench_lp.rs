//! Times the LP solver's sparse (revised simplex) backend against the
//! dense tableau backend on the paper's assays and writes the results
//! to `BENCH_lp.json` at the repo root.
//!
//! Usage: `cargo run --release --bin bench_lp [--quick] [--out PATH]
//! [--obs TRACE_PATH]`
//!
//! `--obs` attaches a recording observability sink: pivot/eta-refactor
//! counters and phase spans from every solve are exported as a Chrome
//! trace-event JSON (load it at `chrome://tracing` or Perfetto) and a
//! text summary is printed at exit.
//!
//! Four cases are measured, each as formulated by `lpform` (glycomics
//! is solved per partition, like the paper's four-partition runs):
//! the Figure 2 running example, Glucose, Glycomics, and Enzyme10.
//! Every case is solved once per backend outside the timed region to
//! check agreement (identical status, |Δobjective| <= 1e-6), then
//! timed with warmup + N iterations (median/p95, see `harness`).
//!
//! `--quick` drops iteration counts to a smoke-test level for CI; use
//! the default mode to regenerate the committed `BENCH_lp.json`.

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_bench::{benchmark_dag, Benchmark};
use aqua_lp::{solve_with, Model, SimplexConfig, SolverBackend, Status};
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{unknown, Machine};

/// Objective agreement tolerance between the two backends.
const OBJ_TOL: f64 = 1e-6;

struct Case {
    name: &'static str,
    /// One model per partition (a single entry for unpartitioned assays).
    models: Vec<Model>,
}

fn config(backend: SolverBackend, obs: &aqua_obs::Obs) -> SimplexConfig {
    SimplexConfig {
        backend,
        obs: obs.clone(),
        ..SimplexConfig::default()
    }
}

/// Solves every model of a case with one backend; returns per-model
/// (status kind, objective) where the objective is NaN unless optimal.
fn solve_case(
    case: &Case,
    backend: SolverBackend,
    obs: &aqua_obs::Obs,
) -> Vec<(&'static str, f64)> {
    let config = config(backend, obs);
    case.models
        .iter()
        .map(|m| match solve_with(m, &config).status {
            Status::Optimal(sol) => ("optimal", sol.objective),
            Status::Infeasible => ("infeasible", f64::NAN),
            Status::Unbounded => ("unbounded", f64::NAN),
            Status::IterationLimit => ("iteration-limit", f64::NAN),
        })
        .collect()
}

/// Largest |Δobjective| across a case's models, or None if the two
/// backends disagree on any model's status.
fn agreement(sparse: &[(&'static str, f64)], dense: &[(&'static str, f64)]) -> Option<f64> {
    let mut max_delta = 0.0f64;
    for (s, d) in sparse.iter().zip(dense) {
        if s.0 != d.0 {
            return None;
        }
        if s.0 == "optimal" {
            max_delta = max_delta.max((s.1 - d.1).abs());
        }
    }
    Some(max_delta)
}

fn build_case(name: &'static str, dag: &aqua_dag::Dag, machine: &Machine) -> Case {
    let opts = LpOptions::rvol();
    let models = if unknown::has_unknown_volumes(dag) {
        let plan = unknown::partition(dag, machine).expect("benchmark partitions");
        plan.partitions
            .iter()
            .map(|part| lpform::build(&part.dag, machine, &opts).model)
            .collect()
    } else {
        vec![lpform::build(dag, machine, &opts).model]
    };
    Case { name, models }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            // Refuse to fall back silently: the default path is the
            // committed BENCH_lp.json, which a typo'd --out would clobber.
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp.json").to_owned(),
    };
    // With --obs PATH, every timed solve reports pivot counts and
    // phase spans into a Chrome trace written at exit.
    let (obs, obs_out) = harness::obs_from_args(&args);

    let machine = Machine::paper_default();
    let cases = vec![
        build_case("fig2", &aqua_assays::figure2::dag().0, &machine),
        build_case("glucose", &benchmark_dag(Benchmark::Glucose), &machine),
        build_case("glycomics", &benchmark_dag(Benchmark::Glycomics), &machine),
        build_case("enzyme10", &benchmark_dag(Benchmark::EnzymeN(10)), &machine),
    ];

    println!(
        "bench_lp: sparse vs dense simplex ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = vec![("quick".into(), Extra::Bool(quick))];
    let mut agree_all = true;

    for case in &cases {
        // Reference solves (untimed) for the agreement check.
        let ref_sparse = solve_case(case, SolverBackend::Sparse, &obs);
        let ref_dense = solve_case(case, SolverBackend::Dense, &obs);
        let delta = agreement(&ref_sparse, &ref_dense);
        let agree = delta.is_some_and(|d| d <= OBJ_TOL);
        agree_all &= agree;
        match delta {
            Some(d) => println!(
                "{:<12} status {} x{}, max |dObj| = {:.2e} ({})",
                case.name,
                ref_sparse[0].0,
                case.models.len(),
                d,
                if agree { "agree" } else { "DISAGREE" }
            ),
            None => println!("{:<12} backends DISAGREE on status", case.name),
        }
        extras.push((format!("{}_agree", case.name), Extra::Bool(agree)));
        if let Some(d) = delta {
            extras.push((
                format!("{}_max_dobj", case.name),
                Extra::Num(format!("{d:e}")),
            ));
        }
        extras.push((
            format!("{}_status", case.name),
            Extra::Str(ref_sparse.iter().map(|s| s.0).collect::<Vec<_>>().join(",")),
        ));

        let mut case_medians = [0u128; 2];
        for (slot, backend) in [(0, SolverBackend::Sparse), (1, SolverBackend::Dense)] {
            let (warmup, iters) = iteration_plan(case.name, backend, quick);
            let label = format!(
                "{}/{}",
                case.name,
                if backend == SolverBackend::Sparse {
                    "sparse"
                } else {
                    "dense"
                }
            );
            let m = harness::time(&label, warmup, iters, || solve_case(case, backend, &obs));
            harness::report(&m);
            case_medians[slot] = m.median_ns;
            measurements.push(m);
        }
        let speedup = case_medians[1] as f64 / case_medians[0].max(1) as f64;
        println!("{:<12} sparse speedup: {speedup:.2}x\n", case.name);
        extras.push((
            format!("{}_speedup", case.name),
            Extra::Num(format!("{speedup:.3}")),
        ));
    }

    extras.push(("agree_all".into(), Extra::Bool(agree_all)));
    let json = harness::to_json("bench_lp/v1", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_lp.json");
    println!("wrote {out_path}");
    if let Some((path, sink)) = obs_out {
        harness::write_obs_trace(&path, &sink);
    }
    if !agree_all {
        eprintln!("error: backend disagreement (see above)");
        std::process::exit(1);
    }
}

/// (warmup, timed iterations) per case and backend.
///
/// Enzyme10 is the expensive case (~1 s per dense solve; the paper's
/// Enzyme10 LP took >20 minutes on its hardware), so it gets fewer
/// iterations; everything else is microseconds and gets a proper
/// median over several runs.
fn iteration_plan(case: &str, backend: SolverBackend, quick: bool) -> (usize, usize) {
    let slow = case == "enzyme10";
    match (slow, backend, quick) {
        (true, _, true) => (0, 1),
        (true, SolverBackend::Dense, false) => (1, 3),
        (true, SolverBackend::Sparse, false) => (1, 5),
        (false, _, true) => (0, 2),
        (false, _, false) => (1, 9),
    }
}
