//! Times the LP solver's sparse (revised simplex) backend against the
//! dense tableau backend — and the `Auto` dispatcher against both — on
//! the paper's assays, and writes the results to `BENCH_lp.json` at the
//! repo root.
//!
//! Usage: `cargo run --release --bin bench_lp [--quick] [--out PATH]
//! [--obs TRACE_PATH]`
//!
//! `--obs` attaches a recording observability sink: pivot/eta-refactor
//! counters and phase spans from every solve are exported as a Chrome
//! trace-event JSON (load it at `chrome://tracing` or Perfetto) and a
//! text summary is printed at exit.
//!
//! Four cases are measured, each as formulated by `lpform` (glycomics
//! is solved per partition, like the paper's four-partition runs):
//! the Figure 2 running example, Glucose, Glycomics, and Enzyme10.
//! Every case is solved once per backend outside the timed region to
//! check agreement (identical status, |Δobjective| <= 1e-6), then
//! timed with warmup + N iterations (median/p95, see `harness`).
//!
//! The `bench_lp/v2` schema adds per-case `*_backend_chosen` (what
//! `SolverBackend::Auto` resolved to), `*_pivots` (simplex iterations
//! under the default devex pricing), an `*_auto_within_floor` check
//! (Auto's median within 1.1x of the better concrete backend — the
//! no-regression floor `scripts/ci.sh` enforces), and an `ilp_par_*`
//! section timing the deterministic parallel branch-and-bound at 1
//! vs 8 threads. `enzyme10_lp_status` (formerly `enzyme10_status`)
//! records that the raw enzyme10 RVol LP is *expectedly* infeasible:
//! the extreme dilution chain outruns the machine span, which is
//! exactly what triggers the paper's Fig. 6 cascade/replication
//! escalation (pinned in tests/paper_numbers.rs).
//!
//! `--quick` drops iteration counts to a smoke-test level for CI; use
//! the default mode to regenerate the committed `BENCH_lp.json`.

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_bench::{benchmark_dag, Benchmark};
use aqua_lp::{solve_ilp, solve_with, IlpConfig, Model, SimplexConfig, SolverBackend, Status};
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{unknown, Machine};

/// Objective agreement tolerance between the two backends.
const OBJ_TOL: f64 = 1e-6;

/// Auto must land within this factor of the better concrete backend
/// (`scripts/ci.sh` re-checks the recorded booleans).
const AUTO_FLOOR: f64 = 1.1;

struct Case {
    name: &'static str,
    /// One model per partition (a single entry for unpartitioned assays).
    models: Vec<Model>,
}

fn config(backend: SolverBackend, obs: &aqua_obs::Obs) -> SimplexConfig {
    SimplexConfig {
        backend,
        obs: obs.clone(),
        ..SimplexConfig::default()
    }
}

/// Solves every model of a case with one backend; returns per-model
/// (status kind, objective) where the objective is NaN unless optimal.
fn solve_case(
    case: &Case,
    backend: SolverBackend,
    obs: &aqua_obs::Obs,
) -> Vec<(&'static str, f64)> {
    let config = config(backend, obs);
    case.models
        .iter()
        .map(|m| match solve_with(m, &config).status {
            Status::Optimal(sol) => ("optimal", sol.objective),
            Status::Infeasible => ("infeasible", f64::NAN),
            Status::Unbounded => ("unbounded", f64::NAN),
            Status::IterationLimit => ("iteration-limit", f64::NAN),
        })
        .collect()
}

/// One untimed Auto pass: which backend each model resolved to (distinct
/// values, comma-joined) and total simplex pivots under devex pricing.
fn auto_probe(case: &Case, obs: &aqua_obs::Obs) -> (String, u64) {
    let config = config(SolverBackend::Auto, obs);
    let mut chosen: Vec<&'static str> = Vec::new();
    let mut pivots = 0u64;
    for m in &case.models {
        let out = solve_with(m, &config);
        pivots += out.stats.iterations;
        let name = match out.stats.backend_chosen {
            SolverBackend::Sparse => "sparse",
            _ => "dense",
        };
        if !chosen.contains(&name) {
            chosen.push(name);
        }
    }
    (chosen.join(","), pivots)
}

/// Largest |Δobjective| across a case's models, or None if the two
/// backends disagree on any model's status.
fn agreement(sparse: &[(&'static str, f64)], dense: &[(&'static str, f64)]) -> Option<f64> {
    let mut max_delta = 0.0f64;
    for (s, d) in sparse.iter().zip(dense) {
        if s.0 != d.0 {
            return None;
        }
        if s.0 == "optimal" {
            max_delta = max_delta.max((s.1 - d.1).abs());
        }
    }
    Some(max_delta)
}

fn build_case(name: &'static str, dag: &aqua_dag::Dag, machine: &Machine) -> Case {
    let opts = LpOptions::rvol();
    let models = if unknown::has_unknown_volumes(dag) {
        let plan = unknown::partition(dag, machine).expect("benchmark partitions");
        plan.partitions
            .iter()
            .map(|part| lpform::build(&part.dag, machine, &opts).model)
            .collect()
    } else {
        vec![lpform::build(dag, machine, &opts).model]
    };
    Case { name, models }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            // Refuse to fall back silently: the default path is the
            // committed BENCH_lp.json, which a typo'd --out would clobber.
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lp.json").to_owned(),
    };
    // With --obs PATH, every timed solve reports pivot counts and
    // phase spans into a Chrome trace written at exit.
    let (obs, obs_out) = harness::obs_from_args(&args);

    let machine = Machine::paper_default();
    let cases = vec![
        build_case("fig2", &aqua_assays::figure2::dag().0, &machine),
        build_case("glucose", &benchmark_dag(Benchmark::Glucose), &machine),
        build_case("glycomics", &benchmark_dag(Benchmark::Glycomics), &machine),
        build_case("enzyme10", &benchmark_dag(Benchmark::EnzymeN(10)), &machine),
    ];

    println!(
        "bench_lp: sparse vs dense simplex ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = vec![("quick".into(), Extra::Bool(quick))];
    let mut agree_all = true;
    let mut auto_floor_ok = true;

    for case in &cases {
        // Reference solves (untimed) for the agreement check.
        let ref_sparse = solve_case(case, SolverBackend::Sparse, &obs);
        let ref_dense = solve_case(case, SolverBackend::Dense, &obs);
        let delta = agreement(&ref_sparse, &ref_dense);
        let agree = delta.is_some_and(|d| d <= OBJ_TOL);
        agree_all &= agree;
        match delta {
            Some(d) => println!(
                "{:<12} status {} x{}, max |dObj| = {:.2e} ({})",
                case.name,
                ref_sparse[0].0,
                case.models.len(),
                d,
                if agree { "agree" } else { "DISAGREE" }
            ),
            None => println!("{:<12} backends DISAGREE on status", case.name),
        }
        extras.push((format!("{}_agree", case.name), Extra::Bool(agree)));
        if let Some(d) = delta {
            extras.push((
                format!("{}_max_dobj", case.name),
                Extra::Num(format!("{d:e}")),
            ));
        }
        // `*_lp_status` (v2 rename from `*_status`): the status of the
        // *raw LP formulation*. Enzyme10's is expectedly "infeasible" —
        // the signal that sends the hierarchy into the Fig. 6
        // cascade/replication escalation, not a solver failure.
        extras.push((
            format!("{}_lp_status", case.name),
            Extra::Str(ref_sparse.iter().map(|s| s.0).collect::<Vec<_>>().join(",")),
        ));
        let (chosen, pivots) = auto_probe(case, &obs);
        extras.push((format!("{}_backend_chosen", case.name), Extra::Str(chosen)));
        extras.push((
            format!("{}_pivots", case.name),
            Extra::Num(pivots.to_string()),
        ));

        // Auto is timed before dense on purpose: the dense enzyme10
        // tableau is hundreds of MB, and timing Auto right after it
        // would charge the cache-refill cost to Auto.
        let mut case_medians = [0u128; 3];
        let mut case_mins = [0u128; 3];
        for (slot, backend, bname) in [
            (0usize, SolverBackend::Sparse, "sparse"),
            (2, SolverBackend::Auto, "auto"),
            (1, SolverBackend::Dense, "dense"),
        ] {
            let (warmup, iters) = iteration_plan(case.name, backend, quick);
            // The small cases solve in single-digit microseconds —
            // below the resolution a busy host can time one call at.
            // Batch `reps` solves per timed iteration and normalize, so
            // each sample is comfortably above timer/scheduler noise;
            // backend ratios are unaffected (all share the batching).
            let reps: u128 = if case.name == "enzyme10" { 1 } else { 32 };
            let label = format!("{}/{bname}", case.name);
            let mut m = harness::time(&label, warmup, iters, || {
                for _ in 1..reps {
                    std::hint::black_box(solve_case(case, backend, &obs));
                }
                solve_case(case, backend, &obs)
            });
            m.min_ns /= reps;
            m.mean_ns /= reps;
            m.median_ns /= reps;
            m.p95_ns /= reps;
            harness::report(&m);
            case_medians[slot] = m.median_ns;
            case_mins[slot] = m.min_ns;
            measurements.push(m);
        }
        let speedup = case_medians[1] as f64 / case_medians[0].max(1) as f64;
        // The floor check is a *paired* measurement: alternate the
        // better concrete backend and Auto back-to-back and take the
        // median of per-pair ratios. Slow host phases (this often runs
        // on a busy single-core container) hit both sides of a pair
        // equally and cancel, which block timing cannot do — block
        // minima were observed to jitter past the 10% margin even
        // though Auto runs the identical solve.
        let better_backend = if case_mins[0] <= case_mins[1] {
            SolverBackend::Sparse
        } else {
            SolverBackend::Dense
        };
        let reps = if case.name == "enzyme10" { 1 } else { 16 };
        let pairs = if quick { 11 } else { 21 };
        let timed = |backend: SolverBackend| {
            let t = std::time::Instant::now();
            for _ in 0..reps {
                std::hint::black_box(solve_case(case, backend, &obs));
            }
            t.elapsed().as_nanos().max(1)
        };
        let mut ratios: Vec<f64> = (0..pairs)
            .map(|_| {
                let base = timed(better_backend);
                let auto = timed(SolverBackend::Auto);
                auto as f64 / base as f64
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        let auto_ratio = ratios[pairs / 2];
        let within = auto_ratio <= AUTO_FLOOR;
        auto_floor_ok &= within;
        println!(
            "{:<12} sparse speedup: {speedup:.2}x, auto/better: {auto_ratio:.2}x ({})\n",
            case.name,
            if within { "within floor" } else { "FLOOR MISS" }
        );
        extras.push((
            format!("{}_speedup", case.name),
            Extra::Num(format!("{speedup:.3}")),
        ));
        extras.push((
            format!("{}_auto_ratio", case.name),
            Extra::Num(format!("{auto_ratio:.3}")),
        ));
        extras.push((
            format!("{}_auto_within_floor", case.name),
            Extra::Bool(within),
        ));
    }

    // Deterministic parallel branch-and-bound: the same budgeted IVol
    // search at 1 vs 8 threads (fixed sync width, so the searches are
    // node-for-node identical) — the speedup is pure relaxation-solve
    // parallelism. `host_cpus` qualifies the number: on a single-core
    // host the 8-thread run can only measure scheduling overhead, so
    // the enforced invariant is node-count agreement, never speedup.
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    extras.push(("host_cpus".into(), Extra::Num(host_cpus.to_string())));
    let ivol = lpform::build(
        &benchmark_dag(Benchmark::Glucose),
        &machine,
        &LpOptions::ivol(),
    );
    let ilp_cfg = |threads: usize| IlpConfig {
        max_nodes: if quick { 200 } else { 2_000 },
        time_budget: std::time::Duration::from_secs(if quick { 2 } else { 20 }),
        threads,
        sync_width: 8,
        simplex: SimplexConfig {
            obs: obs.clone(),
            ..SimplexConfig::default()
        },
        ..IlpConfig::default()
    };
    let (ilp_warm, ilp_iters) = if quick { (0, 1) } else { (1, 3) };
    let mut nodes_by_threads = Vec::new();
    let mut ilp_medians = Vec::new();
    for threads in [1usize, 8] {
        let cfg = ilp_cfg(threads);
        let m = harness::time(&format!("ilp_par/t{threads}"), ilp_warm, ilp_iters, || {
            solve_ilp(&ivol.model, &cfg)
        });
        harness::report(&m);
        let probe = solve_ilp(&ivol.model, &cfg);
        nodes_by_threads.push(probe.stats.nodes);
        ilp_medians.push(m.median_ns);
        measurements.push(m);
    }
    let nodes_agree = nodes_by_threads.windows(2).all(|w| w[0] == w[1]);
    agree_all &= nodes_agree;
    let ilp_speedup = ilp_medians[0] as f64 / ilp_medians[1].max(1) as f64;
    println!(
        "ilp_par       nodes {} ({}), 8-thread speedup: {ilp_speedup:.2}x\n",
        nodes_by_threads[0],
        if nodes_agree {
            "thread-invariant"
        } else {
            "NODE COUNT DIVERGES"
        }
    );
    extras.push((
        "ilp_par_nodes".into(),
        Extra::Num(nodes_by_threads[0].to_string()),
    ));
    extras.push(("ilp_par_nodes_agree".into(), Extra::Bool(nodes_agree)));
    extras.push((
        "ilp_par_speedup".into(),
        Extra::Num(format!("{ilp_speedup:.3}")),
    ));

    extras.push(("agree_all".into(), Extra::Bool(agree_all)));
    extras.push(("auto_floor_ok".into(), Extra::Bool(auto_floor_ok)));
    let json = harness::to_json("bench_lp/v2", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_lp.json");
    println!("wrote {out_path}");
    if let Some((path, sink)) = obs_out {
        harness::write_obs_trace(&path, &sink);
    }
    if !agree_all {
        eprintln!("error: backend disagreement (see above)");
        std::process::exit(1);
    }
}

/// (warmup, timed iterations) per case and backend.
///
/// Enzyme10 is the expensive case (~1 s per dense solve; the paper's
/// Enzyme10 LP took >20 minutes on its hardware), so it gets fewer
/// iterations; everything else is microseconds and gets a proper
/// median over several runs.
fn iteration_plan(case: &str, backend: SolverBackend, quick: bool) -> (usize, usize) {
    let slow = case == "enzyme10";
    match (slow, backend, quick) {
        (true, SolverBackend::Dense, true) => (0, 1),
        (true, _, true) => (0, 2),
        (true, SolverBackend::Dense, false) => (1, 3),
        // Auto resolves enzyme10 to sparse; give both the sparse plan.
        (true, _, false) => (1, 5),
        // The small cases are microseconds each: lots of iterations are
        // nearly free and keep the min/median stable on noisy hosts.
        (false, _, true) => (2, 25),
        (false, _, false) => (3, 51),
    }
}
