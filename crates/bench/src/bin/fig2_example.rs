//! Regenerates Figures 2, 3, and 5: the running example's DAG, its LP
//! formulation, and DAGSolve's Vnorms + dispensed volumes.

use aqua_assays::figure2;
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{dagsolve, Machine};

fn main() {
    let (dag, nodes) = figure2::dag();
    let machine = Machine::paper_default();

    println!("=== Figure 2: assay DAG ===");
    print!("{}", dag.to_dot("figure2"));

    println!("\n=== Figure 3: LP formulation ===");
    let form = lpform::build(&dag, &machine, &LpOptions::rvol());
    println!(
        "{} constraints over {} variables (paper: 26 constraints incl. the",
        form.num_constraints,
        form.model.num_vars()
    );
    println!("optional output-to-output band)\n{}", form.model);

    println!("=== Figure 5: DAGSolve ===");
    let sol = dagsolve::solve(&dag, &machine).expect("figure 2 solves");
    println!("(a) Vnorms:");
    for (name, id) in [
        ("A", nodes.a),
        ("B", nodes.b),
        ("C", nodes.c),
        ("K", nodes.k),
        ("L", nodes.l),
        ("M", nodes.m),
        ("N", nodes.n),
    ] {
        println!("  {name}: {}", sol.vnorms.node[id.index()]);
    }
    println!("(b) dispensed volumes (max Vnorm node B pinned to 100 nl):");
    for (name, id) in [
        ("A", nodes.a),
        ("B", nodes.b),
        ("C", nodes.c),
        ("K", nodes.k),
        ("L", nodes.l),
        ("M", nodes.m),
        ("N", nodes.n),
    ] {
        println!(
            "  {name}: {} nl (~{:.1})",
            sol.node_nl(id),
            sol.node_nl(id).to_f64()
        );
    }
    let (edge, min) = sol.min_edge.expect("has edges");
    println!(
        "smallest transfer: {:.2} nl on edge {} (least count {})",
        min.to_f64(),
        edge,
        machine.least_count_nl()
    );
    assert!(sol.underflow.is_none());
}
