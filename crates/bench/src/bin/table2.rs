//! Regenerates Table 2: DAGSolve vs LP execution times, LP constraint
//! counts, and regeneration counts without volume management.
//!
//! Usage: `cargo run --release --bin table2 [--enzyme-n N]
//! [--obs TRACE_PATH]`
//!
//! The paper's Enzyme10 LP took >20 minutes on a 750 MHz P-III; our
//! from-scratch simplex on a modern core takes minutes. Pass a smaller
//! `--enzyme-n` for a quick run. `--obs` records per-stage spans and
//! LP pivot counters into a Chrome trace-event JSON.

use aqua_bench::harness;
use aqua_bench::{secs, table2_row_obs, Benchmark};
use aqua_volume::Machine;

fn main() {
    let mut enzyme_n = 10u32;
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--enzyme-n") {
        if let Some(v) = args.get(pos + 1).and_then(|s| s.parse().ok()) {
            enzyme_n = v;
        }
    }
    let (obs, obs_out) = harness::obs_from_args(&args);

    let machine = Machine::paper_default();
    let suite = [
        Benchmark::Glucose,
        Benchmark::Glycomics,
        Benchmark::Enzyme,
        Benchmark::EnzymeN(enzyme_n),
    ];

    println!("Table 2: DAGSolve, LP, and Regeneration");
    println!("(paper reference on 750 MHz P-III: Glucose ~0 / 0.08s / 49 / 2,");
    println!(" Glycomics 0.003 / 0.28s / 84 / --, Enzyme 0.016 / 0.73s / 872 / 85,");
    println!(" Enzyme10 1.57 / 1211s / 11258 / 1313)\n");
    println!(
        "{:<12} {:>14} {:>12} {:>8} {:>16} {:>12}",
        "Assay", "DAGSolve (s)", "LP (s)", "LP ok", "LP constraints", "Regen count"
    );
    // The rows are independent benchmarks; fan them out across cores.
    // On a single-core machine this degrades to the sequential loop.
    let rows =
        aqua_lp::batch::run_parallel(suite.len(), |i| table2_row_obs(suite[i], &machine, &obs));
    for row in rows {
        println!(
            "{:<12} {:>14} {:>12} {:>8} {:>16} {:>12}",
            row.assay,
            secs(row.dagsolve),
            secs(row.lp),
            if row.lp_feasible { "yes" } else { "no" },
            row.lp_constraints,
            row.regen_count
        );
    }
    println!("\nNotes:");
    println!("- 'LP ok = no' reproduces the paper's finding that LP cannot fix the");
    println!("  enzyme assay's underflow without cascading/replication.");
    println!("- Regeneration counts use the documented fill-to-capacity baseline");
    println!("  policy; the paper's policy is unspecified, so compare shapes, not");
    println!("  absolute values (small / large / an order larger).");
    if let Some((path, sink)) = obs_out {
        harness::write_obs_trace(&path, &sink);
    }
}
