//! Emits `BENCH_obs.json`: per-phase wall time and operation counts
//! for the paper's four assays, recorded through the `aqua-obs`
//! observability layer rather than ad-hoc timers.
//!
//! Usage: `cargo run --release --bin bench_obs [--quick] [--out PATH]`
//!
//! Each case (the Figure 2 running example, Glucose, Glycomics, and
//! Enzyme10 on a 128-reservoir machine) gets its own recording sink
//! and exercises every instrumented layer:
//!
//! 1. compile with volume management (`compile.*` / `vol.*` spans,
//!    `vol.vnorm_passes` and rewrite counters),
//! 2. one explicit LP solve of the assay's formulation (`lp.*` spans,
//!    `lp.pivots` / `lp.eta_refactors`; per partition when volumes are
//!    unknown, like the paper's glycomics runs),
//! 3. a budgeted ILP solve on the small assays (`ilp.solve` span,
//!    `ilp.nodes`), run in deterministic parallel rounds so the
//!    `ilp.par.{workers,steals,sync}` probes are populated; LP solves
//!    also record `lp.backend_chosen.{dense,sparse}` and the
//!    `lp.pricing.*` devex bookkeeping counters,
//! 4. a fault-free execution plus a few faulty executions with the
//!    recovery ladder on (`sim.run` span, `sim.instructions`,
//!    `sim.faults`, `sim.recover.*` tier counters).
//!
//! The aggregated [`aqua_obs::export::ObsReport`] of each case is
//! embedded in one `bench_obs/v1` JSON document (schema documented in
//! EXPERIMENTS.md). `--quick` shrinks the faulty-seed count for CI.

use std::fmt::Write as _;

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_lp::{solve_ilp, solve_with, IlpConfig, SimplexConfig, Status};
use aqua_obs::export::ObsReport;
use aqua_sim::{ExecConfig, Executor, FaultPlan};
use aqua_volume::lpform::{self, LpOptions};
use aqua_volume::{unknown, Machine, VolumeManagerOptions};

struct CaseSpec {
    name: &'static str,
    source: String,
    machine: Machine,
    /// Whether to also run the budgeted ILP (skipped for the large
    /// assays, where even the budget check costs minutes).
    ilp: bool,
}

/// One explicit LP solve through the instrumented solver (per
/// partition when the assay has unknown volumes). Returns whether all
/// partitions were feasible.
fn lp_solve(dag: &aqua_dag::Dag, machine: &Machine, obs: &aqua_obs::Obs) -> bool {
    let config = SimplexConfig {
        obs: obs.clone(),
        ..SimplexConfig::default()
    };
    let opts = LpOptions::rvol();
    if unknown::has_unknown_volumes(dag) {
        let Ok(plan) = unknown::partition(dag, machine) else {
            return false;
        };
        plan.partitions.iter().all(|part| {
            let form = lpform::build(&part.dag, machine, &opts);
            matches!(solve_with(&form.model, &config).status, Status::Optimal(_))
        })
    } else {
        let form = lpform::build(dag, machine, &opts);
        matches!(solve_with(&form.model, &config).status, Status::Optimal(_))
    }
}

/// Budgeted integer solve so `ilp.nodes` appears in the report. The
/// budget mirrors the `ilp_vs_lp` binary's: the point is the count,
/// not proven optimality.
fn ilp_solve(dag: &aqua_dag::Dag, machine: &Machine, obs: &aqua_obs::Obs, quick: bool) {
    let form = lpform::build(dag, machine, &LpOptions::ivol());
    let config = IlpConfig {
        max_nodes: if quick { 200 } else { 2_000 },
        time_budget: std::time::Duration::from_secs(if quick { 2 } else { 10 }),
        // Parallel rounds so the `ilp.par.{workers,steals,sync}` probes
        // are exercised; results are thread-count independent, so this
        // only changes who solves each relaxation.
        threads: 2,
        sync_width: 8,
        simplex: SimplexConfig {
            obs: obs.clone(),
            ..SimplexConfig::default()
        },
        ..IlpConfig::default()
    };
    let _ = solve_ilp(&form.model, &config);
}

fn run_case(spec: &CaseSpec, quick: bool) -> ObsReport {
    let (obs, sink) = aqua_obs::Obs::recording();

    // Compile with the obs handle threaded through the hierarchy.
    let opts = aqua_compiler::CompileOptions {
        volume: VolumeManagerOptions {
            obs: obs.clone(),
            ..VolumeManagerOptions::default()
        },
        ..aqua_compiler::CompileOptions::default()
    };
    let out = aqua_compiler::compile(&spec.source, &spec.machine, &opts)
        .unwrap_or_else(|e| panic!("{} failed to compile: {e}", spec.name));

    // Explicit LP (and, for the small assays, budgeted ILP) solves so
    // pivot and branch-and-bound counters are populated even when
    // DAGSolve alone managed the volumes.
    let dag = if spec.name == "fig2" {
        aqua_assays::figure2::dag().0
    } else {
        benchmark_dag(match spec.name {
            "glucose" => Benchmark::Glucose,
            "glycomics" => Benchmark::Glycomics,
            _ => Benchmark::EnzymeN(10),
        })
    };
    lp_solve(&dag, &spec.machine, &obs);
    if spec.ilp {
        ilp_solve(&dag, &spec.machine, &obs, quick);
    }

    // Fault-free execution, then faulty executions with recovery so
    // the per-tier ladder counters are exercised.
    let clean = Executor::new(
        &spec.machine,
        ExecConfig {
            obs: obs.clone(),
            ..ExecConfig::default()
        },
    )
    .run(&out)
    .unwrap_or_else(|e| panic!("{} failed fault-free: {e}", spec.name));
    assert_eq!(
        clean.conservation_delta_pl(),
        0,
        "{}: volume not conserved",
        spec.name
    );
    let seeds: u64 = if quick { 2 } else { 5 };
    for seed in 0..seeds {
        let config = ExecConfig {
            faults: FaultPlan::uniform(seed + 1, 0.10),
            recover: true,
            obs: obs.clone(),
            ..ExecConfig::default()
        };
        Executor::new(&spec.machine, config)
            .run(&out)
            .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", spec.name));
    }

    ObsReport::from_sink(&sink)
}

/// Counters the acceptance criteria require per case; missing ones
/// fail the run loudly rather than shipping a hollow report.
const REQUIRED_COUNTERS: &[&str] = &["lp.pivots", "vol.vnorm_passes", "sim.instructions"];

/// At least one counter with this prefix must be positive per case:
/// every LP solve now records which backend `Auto` dispatched to.
const REQUIRED_PREFIXES: &[&str] = &["lp.backend_chosen."];

fn check_report(name: &str, report: &ObsReport) {
    assert!(!report.is_empty(), "{name}: empty obs report");
    for c in REQUIRED_COUNTERS {
        assert!(
            report.counters.iter().any(|(k, v)| k == c && *v > 0),
            "{name}: required counter {c} missing or zero"
        );
    }
    for p in REQUIRED_PREFIXES {
        assert!(
            report
                .counters
                .iter()
                .any(|(k, v)| k.starts_with(p) && *v > 0),
            "{name}: no positive counter under {p}"
        );
    }
    assert!(
        !report.phases.is_empty(),
        "{name}: no phase wall times recorded"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json").to_owned(),
    };

    let default = Machine::paper_default();
    let big = Machine::paper_default()
        .with_reservoirs(128)
        .with_input_ports(64);
    let specs = [
        CaseSpec {
            name: "fig2",
            source: aqua_assays::figure2::SOURCE.to_owned(),
            machine: default.clone(),
            ilp: true,
        },
        CaseSpec {
            name: "glucose",
            source: Benchmark::Glucose.source(),
            machine: default.clone(),
            ilp: true,
        },
        CaseSpec {
            name: "glycomics",
            source: Benchmark::Glycomics.source(),
            machine: default.clone(),
            ilp: false,
        },
        CaseSpec {
            name: "enzyme10",
            source: Benchmark::EnzymeN(10).source(),
            machine: big,
            ilp: false,
        },
    ];

    println!(
        "bench_obs: per-phase wall time + op counts ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"bench_obs/v1\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    // The ILP case solves relaxations on two workers (see `ilp_solve`).
    out.push_str("  \"ilp_threads\": 2,\n");
    out.push_str("  \"cases\": {\n");
    for (i, spec) in specs.iter().enumerate() {
        let report = run_case(spec, quick);
        check_report(spec.name, &report);
        println!("=== {} ===", spec.name);
        for p in &report.phases {
            println!("  {:<24} x{:<5} {} ns", p.name, p.count, p.total_ns);
        }
        for (k, v) in &report.counters {
            println!("  {k:<24} {v}");
        }
        println!();
        let _ = write!(out, "    \"{}\": {}", spec.name, report.to_json());
        out.push_str(if i + 1 < specs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");

    std::fs::write(&out_path, &out).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}
