//! Times the plan-compilation service's cold, warm-src, and warm-key
//! paths on the four paper assays and writes the results to
//! `BENCH_serve.json` at the repo root.
//!
//! Usage: `cargo run --release --bin bench_serve [--quick] [--out PATH]
//! [--obs TRACE_PATH]`
//!
//! Three paths are measured per assay (Table 2 suite: Glucose,
//! Glycomics, Enzyme, Enzyme10):
//!
//! * `cold` — the cache is cleared before every request, so each one
//!   canonicalizes, queues, solves, and renders from scratch;
//! * `warm-src` — the cache stays hot and requests arrive as assay
//!   source (canonicalize + hash + hit);
//! * `warm-key` — the cache stays hot and requests arrive as a bare
//!   content key (hash probe + Arc clone, the steady-state hot path).
//!
//! Warm responses are checked byte-identical to cold compiles before
//! anything is timed; the binary exits nonzero on a mismatch or if the
//! headline `warm_over_cold` (cold median / warm-key median, pooled
//! over the suite) drops below 10x.
//!
//! `--quick` drops iteration counts to a smoke-test level for CI; use
//! the default mode to regenerate the committed `BENCH_serve.json`.

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_bench::Benchmark;
use aqua_serve::{Served, Service, ServiceConfig};
use aqua_volume::Machine;
use std::time::Instant;

/// A named request generator for one timing mode.
type Mode<'a> = (&'a str, Box<dyn FnMut() -> Served + 'a>);

/// The acceptance floor for the headline speedup.
const MIN_WARM_OVER_COLD: f64 = 10.0;

struct Case {
    name: String,
    src: String,
    /// Content key, from the pre-timing cold compile.
    key: u128,
    /// Cold plan bytes, the byte-identity reference.
    plan: std::sync::Arc<str>,
}

/// Times `iters` runs of `f`, returning the sorted per-request samples
/// in nanoseconds (the harness `time` helper keeps only aggregates; the
/// service bench also reports p50/p99, so it keeps the samples).
fn sample(warmup: usize, iters: usize, mut f: impl FnMut() -> Served) -> Vec<u128> {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples_ns.push(start.elapsed().as_nanos());
    }
    samples_ns.sort_unstable();
    samples_ns
}

/// Nearest-rank percentile (q in `[0,1]`) of sorted samples.
fn percentile(sorted_ns: &[u128], q: f64) -> u128 {
    let idx = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx]
}

fn measurement(name: &str, sorted_ns: &[u128]) -> Measurement {
    let iters = sorted_ns.len();
    Measurement {
        name: name.to_owned(),
        iters,
        min_ns: sorted_ns[0],
        mean_ns: sorted_ns.iter().sum::<u128>() / iters as u128,
        median_ns: percentile(sorted_ns, 0.50),
        p95_ns: percentile(sorted_ns, 0.95),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            // Refuse to fall back silently: the default path is the
            // committed BENCH_serve.json, which a typo'd --out would
            // clobber.
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_owned(),
    };
    let (obs, obs_out) = harness::obs_from_args(&args);

    let machine = Machine::paper_default();
    let service = Service::new(ServiceConfig {
        obs,
        ..ServiceConfig::default()
    });

    // Pre-timing pass: cold-compile every assay on a fresh service and
    // check the shared service's warm responses are byte-identical.
    let mut cases: Vec<Case> = Vec::new();
    for bench in Benchmark::table2_suite() {
        let src = bench.source();
        let fresh = Service::new(ServiceConfig::default());
        let cold = fresh
            .submit_src(&src, &machine, None)
            .expect("paper assay compiles");
        let first = service
            .submit_src(&src, &machine, None)
            .expect("paper assay compiles");
        let warm = service
            .submit_src(&src, &machine, None)
            .expect("warm hit succeeds");
        if first.plan != cold.plan || warm.plan != first.plan {
            eprintln!(
                "error: {} warm plan differs from cold compile",
                bench.name()
            );
            std::process::exit(1);
        }
        cases.push(Case {
            name: bench.name().to_lowercase(),
            src,
            key: cold.key,
            plan: cold.plan,
        });
    }

    println!(
        "bench_serve: cold vs warm plan service ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let (cold_iters, warm_iters) = if quick { (2, 20) } else { (15, 400) };
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = vec![("quick".into(), Extra::Bool(quick))];
    // Pooled samples across the suite drive the headline numbers.
    let mut pooled: [Vec<u128>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut identical = true;

    for case in &cases {
        let modes: [Mode; 3] = [
            (
                "cold",
                Box::new(|| {
                    service.clear_cache();
                    service
                        .submit_src(&case.src, &machine, None)
                        .expect("cold compile")
                }),
            ),
            (
                "warm-src",
                Box::new(|| {
                    service
                        .submit_src(&case.src, &machine, None)
                        .expect("warm src hit")
                }),
            ),
            (
                "warm-key",
                Box::new(|| service.submit_key(case.key).expect("warm key hit")),
            ),
        ];
        // Re-warm after the cold mode left the cache empty.
        let rewarm = service
            .submit_src(&case.src, &machine, None)
            .expect("re-warm");
        identical &= rewarm.plan == case.plan;

        for (i, (mode, mut f)) in modes.into_iter().enumerate() {
            let iters = if mode == "cold" {
                cold_iters
            } else {
                warm_iters
            };
            let warmup = if quick { 0 } else { 2 };
            if mode != "cold" {
                // Make sure the entry is resident before timing hits.
                let warm = service
                    .submit_src(&case.src, &machine, None)
                    .expect("warm-up");
                identical &= warm.plan == case.plan;
            }
            let samples = sample(warmup, iters, &mut f);
            let label = format!("{}/{}", case.name, mode);
            let m = measurement(&label, &samples);
            harness::report(&m);
            extras.push((
                format!("{}_{}_p50_ns", case.name, mode.replace('-', "_")),
                Extra::Num(percentile(&samples, 0.50).to_string()),
            ));
            extras.push((
                format!("{}_{}_p99_ns", case.name, mode.replace('-', "_")),
                Extra::Num(percentile(&samples, 0.99).to_string()),
            ));
            pooled[i].extend_from_slice(&samples);
            measurements.push(m);
        }
        println!();
    }

    for p in &mut pooled {
        p.sort_unstable();
    }
    let [cold_pool, warm_src_pool, warm_key_pool] = &pooled;
    let rps = |sorted: &[u128]| {
        let mean = sorted.iter().sum::<u128>() as f64 / sorted.len() as f64;
        1e9 / mean
    };
    let cold_p50 = percentile(cold_pool, 0.50);
    let warm_src_p50 = percentile(warm_src_pool, 0.50);
    let warm_key_p50 = percentile(warm_key_pool, 0.50);
    let warm_over_cold = cold_p50 as f64 / warm_key_p50.max(1) as f64;
    let warm_src_over_cold = cold_p50 as f64 / warm_src_p50.max(1) as f64;

    println!(
        "pooled: cold p50 {}  warm-src p50 {}  warm-key p50 {}",
        harness::fmt_ns(cold_p50),
        harness::fmt_ns(warm_src_p50),
        harness::fmt_ns(warm_key_p50)
    );
    println!(
        "throughput: cold {:.0} rps, warm-src {:.0} rps, warm-key {:.0} rps",
        rps(cold_pool),
        rps(warm_src_pool),
        rps(warm_key_pool)
    );
    println!("headline warm_over_cold (key path): {warm_over_cold:.1}x");

    extras.push((
        "cold_rps".into(),
        Extra::Num(format!("{:.1}", rps(cold_pool))),
    ));
    extras.push((
        "warm_src_rps".into(),
        Extra::Num(format!("{:.1}", rps(warm_src_pool))),
    ));
    extras.push((
        "warm_key_rps".into(),
        Extra::Num(format!("{:.1}", rps(warm_key_pool))),
    ));
    extras.push((
        "warm_over_cold".into(),
        Extra::Num(format!("{warm_over_cold:.2}")),
    ));
    extras.push((
        "warm_src_over_cold".into(),
        Extra::Num(format!("{warm_src_over_cold:.2}")),
    ));
    extras.push(("warm_equals_cold".into(), Extra::Bool(identical)));
    harness::push_host_extras(&mut extras, &[]);

    let json = harness::to_json("bench_serve/v1", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
    if let Some((path, sink)) = obs_out {
        harness::write_obs_trace(&path, &sink);
    }
    if !identical {
        eprintln!("error: a warm plan differed from its cold compile");
        std::process::exit(1);
    }
    if warm_over_cold < MIN_WARM_OVER_COLD {
        eprintln!(
            "error: warm_over_cold {warm_over_cold:.2} < {MIN_WARM_OVER_COLD} acceptance floor"
        );
        std::process::exit(1);
    }
}
