//! Times the plan-compilation service's cold, warm-src, and warm-key
//! paths on the four paper assays, drives a million-request mixed
//! multi-tenant traffic phase through the sharded tier, proves
//! warm-equals-cold byte-identity survives a kill-and-restart through
//! the persistent plan store, and writes everything to
//! `BENCH_serve.json` at the repo root.
//!
//! Usage: `cargo run --release --bin bench_serve [--quick] [--out PATH]
//! [--obs TRACE_PATH]`
//!
//! Three paths are measured per assay (Table 2 suite: Glucose,
//! Glycomics, Enzyme, Enzyme10):
//!
//! * `cold` — the cache is cleared before every request, so each one
//!   canonicalizes, queues, solves, and renders from scratch;
//! * `warm-src` — the cache stays hot and requests arrive as assay
//!   source (canonicalize + hash + hit);
//! * `warm-key` — the cache stays hot and requests arrive as a bare
//!   content key (hash probe + Arc clone, the steady-state hot path).
//!
//! Then two service-level phases:
//!
//! * **traffic** — 8 client threads fire ~85% warm-key / ~14% warm-src
//!   / ~1% cold-unique requests (1M total; 20k with `--quick`) across
//!   five tenants, one of which is a quota-starved "noisy" tenant whose
//!   cold misses get shed; reports `traffic_p50/p99/p999_ns` and
//!   `traffic_shed_rate`;
//! * **restart** — a store-backed service cold-compiles the suite, is
//!   dropped (the "kill"), reopened on the same directory, and must
//!   serve every plan byte-identical to the cold reference *without a
//!   single recompile* (`restart_equals_cold`, `restart_no_recompiles`);
//!   rehydrated warm p50 must stay within 10x of in-memory warm p50.
//!
//! Warm responses are checked byte-identical to cold compiles before
//! anything is timed; the binary exits nonzero on a mismatch, if the
//! headline `warm_over_cold` (cold median / warm-key median, pooled
//! over the suite) drops below 10x, or if a restart gate fails.
//!
//! `--quick` drops iteration counts to a smoke-test level for CI; use
//! the default mode to regenerate the committed `BENCH_serve.json`.

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_bench::Benchmark;
use aqua_dag::Dag;
use aqua_obs::Obs;
use aqua_rational::rng::XorShift64Star;
use aqua_serve::store::StoreConfig;
use aqua_serve::{canonicalize, ServeError, Served, Service, ServiceConfig};
use aqua_volume::Machine;
use std::collections::HashMap;
use std::time::Instant;

/// A named request generator for one timing mode.
type Mode<'a> = (&'a str, Box<dyn FnMut() -> Served + 'a>);

/// The acceptance floor for the headline speedup.
const MIN_WARM_OVER_COLD: f64 = 10.0;

struct Case {
    name: String,
    src: String,
    /// Content key, from the pre-timing cold compile.
    key: u128,
    /// Cold plan bytes, the byte-identity reference.
    plan: std::sync::Arc<str>,
}

/// Times `iters` runs of `f`, returning the sorted per-request samples
/// in nanoseconds (the harness `time` helper keeps only aggregates; the
/// service bench also reports p50/p99, so it keeps the samples).
fn sample(warmup: usize, iters: usize, mut f: impl FnMut() -> Served) -> Vec<u128> {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut samples_ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples_ns.push(start.elapsed().as_nanos());
    }
    samples_ns.sort_unstable();
    samples_ns
}

/// Nearest-rank percentile (q in `[0,1]`) of sorted samples.
fn percentile(sorted_ns: &[u128], q: f64) -> u128 {
    let idx = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len()) - 1;
    sorted_ns[idx]
}

fn measurement(name: &str, sorted_ns: &[u128]) -> Measurement {
    let iters = sorted_ns.len();
    Measurement {
        name: name.to_owned(),
        iters,
        min_ns: sorted_ns[0],
        mean_ns: sorted_ns.iter().sum::<u128>() / iters as u128,
        median_ns: percentile(sorted_ns, 0.50),
        p95_ns: percentile(sorted_ns, 0.95),
    }
}

/// Client threads in the traffic phase.
const TRAFFIC_THREADS: usize = 8;
/// Acceptance ceiling: rehydrated warm p50 over in-memory warm p50.
const MAX_RESTART_OVER_WARM: f64 = 10.0;

/// A unique tiny assay per `n`: distinct mix ratios → distinct key, so
/// the traffic phase's cold slice never hits the cache.
fn unique_assay(n: u64) -> Dag {
    let mut d = Dag::new();
    let a = d.add_input("A");
    let b = d.add_input("B");
    let m = d
        .add_mix("m", &[(a, 1), (b, n + 2)], 10)
        .expect("valid mix");
    d.add_process("s", "sense.OD", m);
    d
}

struct TrafficOutcome {
    /// Sorted latencies of successful requests, ns.
    latencies_ns: Vec<u128>,
    total: usize,
    sheds: usize,
    rejects: usize,
    cold_unique: usize,
    wall_ns: u128,
    identical: bool,
}

/// Mixed hot/cold multi-tenant traffic against a quota-bounded sharded
/// service: ~85% warm-key, ~14% warm-src (across four steady tenants),
/// ~1% cold-unique compiles from a quota-starved "noisy" tenant whose
/// misses shed under burst.
fn run_traffic(cases: &[Case], machine: &Machine, total: usize) -> TrafficOutcome {
    let service = Service::new(ServiceConfig {
        cache_capacity: 4096,
        worker_shards: 4,
        queue_capacity: 512,
        tenant_max_inflight: 2,
        tenant_max_queued: 2,
        ..ServiceConfig::default()
    });
    let mut identical = true;
    for case in cases {
        let warm = service
            .submit_src(&case.src, machine, None)
            .expect("traffic warm-up");
        identical &= warm.plan == case.plan;
    }
    let weights: HashMap<aqua_dag::NodeId, u64> = HashMap::new();
    let per_thread = total / TRAFFIC_THREADS;
    let start = Instant::now();
    let per_thread_results: Vec<(Vec<u128>, usize, usize, usize, bool)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..TRAFFIC_THREADS)
                .map(|t| {
                    let service = &service;
                    let weights = &weights;
                    scope.spawn(move || {
                        let mut rng = XorShift64Star::new(0xBEEF + t as u64 * 0x9E37_79B9);
                        let mut lat: Vec<u128> = Vec::with_capacity(per_thread);
                        let (mut sheds, mut rejects, mut colds) = (0usize, 0usize, 0usize);
                        let mut ok = true;
                        let tenant = format!("tenant-{}", t % 4);
                        for i in 0..per_thread {
                            let dice = rng.range_u64(0, 99);
                            let begin = Instant::now();
                            if dice == 0 {
                                // Cold-unique compile from the noisy tenant.
                                colds += 1;
                                let n = (t * per_thread + i) as u64;
                                let canon = canonicalize(&unique_assay(n), weights, machine)
                                    .expect("canon");
                                match service.submit_canon_tenant(
                                    canon,
                                    machine.clone(),
                                    None,
                                    "noisy",
                                ) {
                                    Ok(_) => lat.push(begin.elapsed().as_nanos()),
                                    Err(ServeError::Shedding) => sheds += 1,
                                    Err(ServeError::Overloaded | ServeError::Timeout) => {
                                        rejects += 1
                                    }
                                    Err(e) => panic!("unexpected traffic error: {e}"),
                                }
                            } else if dice < 15 {
                                // Warm by source, under this thread's tenant.
                                let case = &cases[rng.index(cases.len())];
                                let canon =
                                    Service::canon_src(&case.src, machine).expect("canon src");
                                let served = service
                                    .submit_canon_tenant(canon, machine.clone(), None, &tenant)
                                    .expect("warm src");
                                lat.push(begin.elapsed().as_nanos());
                                ok &= served.plan == case.plan;
                            } else {
                                // Warm by key: the steady-state hot path.
                                let case = &cases[rng.index(cases.len())];
                                let served = service.submit_key(case.key).expect("warm key");
                                lat.push(begin.elapsed().as_nanos());
                                ok &= served.plan == case.plan;
                            }
                        }
                        (lat, sheds, rejects, colds, ok)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("traffic thread"))
                .collect()
        });
    let wall_ns = start.elapsed().as_nanos();
    let mut latencies_ns = Vec::with_capacity(total);
    let (mut sheds, mut rejects, mut cold_unique) = (0, 0, 0);
    for (lat, s, r, c, ok) in per_thread_results {
        latencies_ns.extend(lat);
        sheds += s;
        rejects += r;
        cold_unique += c;
        identical &= ok;
    }
    latencies_ns.sort_unstable();
    TrafficOutcome {
        latencies_ns,
        total: per_thread * TRAFFIC_THREADS,
        sheds,
        rejects,
        cold_unique,
        wall_ns,
        identical,
    }
}

struct RestartOutcome {
    /// Sorted warm-src latencies on the rehydrated service, ns.
    samples_ns: Vec<u128>,
    equals_cold: bool,
    no_recompiles: bool,
}

/// Kill-and-restart: a store-backed service cold-compiles the suite, is
/// dropped, and a new process-equivalent (fresh `Service`, same
/// directory) must serve every plan byte-identical to the cold
/// reference without recompiling anything.
fn run_restart(cases: &[Case], machine: &Machine, iters: usize, warmup: usize) -> RestartOutcome {
    let dir = std::env::temp_dir().join(format!("aqua-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let svc = Service::new(ServiceConfig {
            store: Some(StoreConfig::at(&dir)),
            ..ServiceConfig::default()
        });
        for case in cases {
            svc.submit_src(&case.src, machine, None)
                .expect("cold compile into store");
        }
        // svc dropped here: the "kill".
    }
    let (obs, sink) = Obs::recording();
    let svc = Service::try_new(ServiceConfig {
        store: Some(StoreConfig::at(&dir)),
        obs,
        ..ServiceConfig::default()
    })
    .expect("reopen plan store");
    let mut equals_cold = true;
    for case in cases {
        let warm = svc
            .submit_src(&case.src, machine, None)
            .expect("rehydrated warm hit");
        equals_cold &= warm.key == case.key && warm.plan == case.plan;
        equals_cold &= svc
            .submit_key(case.key)
            .map(|s| s.plan == case.plan)
            .unwrap_or(false);
    }
    let mut samples_ns: Vec<u128> = Vec::new();
    for case in cases {
        samples_ns.extend(sample(warmup, iters, || {
            svc.submit_src(&case.src, machine, None)
                .expect("warm after restart")
        }));
    }
    samples_ns.sort_unstable();
    let no_recompiles = sink.counter("serve.plan.compiles") == 0;
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    RestartOutcome {
        samples_ns,
        equals_cold,
        no_recompiles,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            // Refuse to fall back silently: the default path is the
            // committed BENCH_serve.json, which a typo'd --out would
            // clobber.
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_owned(),
    };
    let (obs, obs_out) = harness::obs_from_args(&args);

    let machine = Machine::paper_default();
    let service = Service::new(ServiceConfig {
        obs,
        ..ServiceConfig::default()
    });

    // Pre-timing pass: cold-compile every assay on a fresh service and
    // check the shared service's warm responses are byte-identical.
    let mut cases: Vec<Case> = Vec::new();
    for bench in Benchmark::table2_suite() {
        let src = bench.source();
        let fresh = Service::new(ServiceConfig::default());
        let cold = fresh
            .submit_src(&src, &machine, None)
            .expect("paper assay compiles");
        let first = service
            .submit_src(&src, &machine, None)
            .expect("paper assay compiles");
        let warm = service
            .submit_src(&src, &machine, None)
            .expect("warm hit succeeds");
        if first.plan != cold.plan || warm.plan != first.plan {
            eprintln!(
                "error: {} warm plan differs from cold compile",
                bench.name()
            );
            std::process::exit(1);
        }
        cases.push(Case {
            name: bench.name().to_lowercase(),
            src,
            key: cold.key,
            plan: cold.plan,
        });
    }

    println!(
        "bench_serve: cold vs warm plan service ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let (cold_iters, warm_iters) = if quick { (2, 20) } else { (15, 400) };
    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = vec![("quick".into(), Extra::Bool(quick))];
    // Pooled samples across the suite drive the headline numbers.
    let mut pooled: [Vec<u128>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut identical = true;

    for case in &cases {
        let modes: [Mode; 3] = [
            (
                "cold",
                Box::new(|| {
                    service.clear_cache();
                    service
                        .submit_src(&case.src, &machine, None)
                        .expect("cold compile")
                }),
            ),
            (
                "warm-src",
                Box::new(|| {
                    service
                        .submit_src(&case.src, &machine, None)
                        .expect("warm src hit")
                }),
            ),
            (
                "warm-key",
                Box::new(|| service.submit_key(case.key).expect("warm key hit")),
            ),
        ];
        // Re-warm after the cold mode left the cache empty.
        let rewarm = service
            .submit_src(&case.src, &machine, None)
            .expect("re-warm");
        identical &= rewarm.plan == case.plan;

        for (i, (mode, mut f)) in modes.into_iter().enumerate() {
            let iters = if mode == "cold" {
                cold_iters
            } else {
                warm_iters
            };
            let warmup = if quick { 0 } else { 2 };
            if mode != "cold" {
                // Make sure the entry is resident before timing hits.
                let warm = service
                    .submit_src(&case.src, &machine, None)
                    .expect("warm-up");
                identical &= warm.plan == case.plan;
            }
            let samples = sample(warmup, iters, &mut f);
            let label = format!("{}/{}", case.name, mode);
            let m = measurement(&label, &samples);
            harness::report(&m);
            extras.push((
                format!("{}_{}_p50_ns", case.name, mode.replace('-', "_")),
                Extra::Num(percentile(&samples, 0.50).to_string()),
            ));
            extras.push((
                format!("{}_{}_p99_ns", case.name, mode.replace('-', "_")),
                Extra::Num(percentile(&samples, 0.99).to_string()),
            ));
            pooled[i].extend_from_slice(&samples);
            measurements.push(m);
        }
        println!();
    }

    for p in &mut pooled {
        p.sort_unstable();
    }
    let [cold_pool, warm_src_pool, warm_key_pool] = &pooled;
    let rps = |sorted: &[u128]| {
        let mean = sorted.iter().sum::<u128>() as f64 / sorted.len() as f64;
        1e9 / mean
    };
    let cold_p50 = percentile(cold_pool, 0.50);
    let warm_src_p50 = percentile(warm_src_pool, 0.50);
    let warm_key_p50 = percentile(warm_key_pool, 0.50);
    let warm_over_cold = cold_p50 as f64 / warm_key_p50.max(1) as f64;
    let warm_src_over_cold = cold_p50 as f64 / warm_src_p50.max(1) as f64;

    println!(
        "pooled: cold p50 {}  warm-src p50 {}  warm-key p50 {}",
        harness::fmt_ns(cold_p50),
        harness::fmt_ns(warm_src_p50),
        harness::fmt_ns(warm_key_p50)
    );
    println!(
        "throughput: cold {:.0} rps, warm-src {:.0} rps, warm-key {:.0} rps",
        rps(cold_pool),
        rps(warm_src_pool),
        rps(warm_key_pool)
    );
    println!("headline warm_over_cold (key path): {warm_over_cold:.1}x");

    extras.push((
        "cold_rps".into(),
        Extra::Num(format!("{:.1}", rps(cold_pool))),
    ));
    extras.push((
        "warm_src_rps".into(),
        Extra::Num(format!("{:.1}", rps(warm_src_pool))),
    ));
    extras.push((
        "warm_key_rps".into(),
        Extra::Num(format!("{:.1}", rps(warm_key_pool))),
    ));
    extras.push((
        "warm_over_cold".into(),
        Extra::Num(format!("{warm_over_cold:.2}")),
    ));
    extras.push((
        "warm_src_over_cold".into(),
        Extra::Num(format!("{warm_src_over_cold:.2}")),
    ));
    // ---- traffic phase: mixed hot/cold multi-tenant load ----
    let traffic_total = if quick { 20_000 } else { 1_000_000 };
    println!("\ntraffic: {traffic_total} mixed multi-tenant requests on {TRAFFIC_THREADS} threads");
    let traffic = run_traffic(&cases, &machine, traffic_total);
    identical &= traffic.identical;
    let m = measurement("traffic/mixed", &traffic.latencies_ns);
    harness::report(&m);
    measurements.push(m);
    let traffic_p50 = percentile(&traffic.latencies_ns, 0.50);
    let traffic_p99 = percentile(&traffic.latencies_ns, 0.99);
    let traffic_p999 = percentile(&traffic.latencies_ns, 0.999);
    let shed_rate = traffic.sheds as f64 / traffic.total as f64;
    let traffic_rps = traffic.total as f64 / (traffic.wall_ns as f64 / 1e9);
    println!(
        "traffic: p50 {}  p99 {}  p999 {}  shed rate {:.4} ({} shed, {} rejected, {} cold-unique)  {:.0} rps",
        harness::fmt_ns(traffic_p50),
        harness::fmt_ns(traffic_p99),
        harness::fmt_ns(traffic_p999),
        shed_rate,
        traffic.sheds,
        traffic.rejects,
        traffic.cold_unique,
        traffic_rps
    );
    extras.push((
        "traffic_requests".into(),
        Extra::Num(traffic.total.to_string()),
    ));
    extras.push((
        "traffic_threads".into(),
        Extra::Num(TRAFFIC_THREADS.to_string()),
    ));
    extras.push(("traffic_p50_ns".into(), Extra::Num(traffic_p50.to_string())));
    extras.push(("traffic_p99_ns".into(), Extra::Num(traffic_p99.to_string())));
    extras.push((
        "traffic_p999_ns".into(),
        Extra::Num(traffic_p999.to_string()),
    ));
    extras.push((
        "traffic_shed_rate".into(),
        Extra::Num(format!("{shed_rate:.6}")),
    ));
    extras.push((
        "traffic_sheds".into(),
        Extra::Num(traffic.sheds.to_string()),
    ));
    extras.push((
        "traffic_rejects".into(),
        Extra::Num(traffic.rejects.to_string()),
    ));
    extras.push((
        "traffic_cold_unique".into(),
        Extra::Num(traffic.cold_unique.to_string()),
    ));
    extras.push((
        "traffic_rps".into(),
        Extra::Num(format!("{traffic_rps:.1}")),
    ));

    // ---- restart phase: durability through a kill ----
    println!("\nrestart: kill-and-restart rehydration through the plan store");
    let (restart_iters, restart_warmup) = if quick { (20, 0) } else { (200, 2) };
    let restart = run_restart(&cases, &machine, restart_iters, restart_warmup);
    let m = measurement("restart/warm-src", &restart.samples_ns);
    harness::report(&m);
    measurements.push(m);
    let restart_warm_p50 = percentile(&restart.samples_ns, 0.50);
    let restart_over_warm = restart_warm_p50 as f64 / warm_src_p50.max(1) as f64;
    println!(
        "restart: warm p50 {}  ({:.2}x in-memory warm-src p50)  byte-identical: {}  recompiles: {}",
        harness::fmt_ns(restart_warm_p50),
        restart_over_warm,
        restart.equals_cold,
        if restart.no_recompiles {
            "none"
        } else {
            "SOME"
        }
    );
    extras.push((
        "restart_equals_cold".into(),
        Extra::Bool(restart.equals_cold),
    ));
    extras.push((
        "restart_no_recompiles".into(),
        Extra::Bool(restart.no_recompiles),
    ));
    extras.push((
        "restart_warm_p50_ns".into(),
        Extra::Num(restart_warm_p50.to_string()),
    ));
    extras.push((
        "restart_over_warm".into(),
        Extra::Num(format!("{restart_over_warm:.2}")),
    ));

    extras.push(("warm_equals_cold".into(), Extra::Bool(identical)));
    harness::push_host_extras(&mut extras, &[]);

    let json = harness::to_json("bench_serve/v2", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
    if let Some((path, sink)) = obs_out {
        harness::write_obs_trace(&path, &sink);
    }
    if !identical {
        eprintln!("error: a warm plan differed from its cold compile");
        std::process::exit(1);
    }
    if warm_over_cold < MIN_WARM_OVER_COLD {
        eprintln!(
            "error: warm_over_cold {warm_over_cold:.2} < {MIN_WARM_OVER_COLD} acceptance floor"
        );
        std::process::exit(1);
    }
    if !restart.equals_cold {
        eprintln!("error: a rehydrated plan differed from its cold compile");
        std::process::exit(1);
    }
    if !restart.no_recompiles {
        eprintln!("error: the rehydrated service recompiled a stored plan");
        std::process::exit(1);
    }
    if restart_over_warm > MAX_RESTART_OVER_WARM {
        eprintln!(
            "error: restart_over_warm {restart_over_warm:.2} > {MAX_RESTART_OVER_WARM} acceptance ceiling"
        );
        std::process::exit(1);
    }
}
