//! Sensitivity study: how the benchmark assays' feasibility and minimum
//! dispensed volumes move with the hardware least count (at a fixed
//! 100 nl capacity). The paper fixes 100 pl (the demonstrated PDMS-valve
//! resolution, \[12\]); this sweep shows how much headroom that choice
//! leaves — and when the volume-management hierarchy has to start
//! rewriting.

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_rational::Ratio;
use aqua_volume::{dagsolve, manage_volumes, Machine, ManagedOutcome};

fn main() {
    println!("=== Machine sensitivity: least count sweep (capacity 100 nl) ===\n");
    println!(
        "{:<10} {:>12} {:>8} {:>16} {:>14} {:>22}",
        "assay", "least count", "span", "min dispense", "raw DAGSolve", "hierarchy outcome"
    );
    // Least counts from 10 pl (fine) to 10 nl (coarse).
    let least_counts = [
        ("10 pl", Ratio::new(1, 100).unwrap()),
        ("100 pl", Ratio::new(1, 10).unwrap()),
        ("1 nl", Ratio::from_int(1)),
        ("10 nl", Ratio::from_int(10)),
    ];
    for bench in [Benchmark::Glucose, Benchmark::Enzyme] {
        let dag = benchmark_dag(bench);
        for (label, lc) in least_counts {
            let machine = Machine::new(Ratio::from_int(100), lc).expect("valid machine");
            let sol = dagsolve::solve(&dag, &machine).expect("solves");
            let (_, min) = sol.min_edge.expect("edges");
            let raw = if sol.underflow.is_some() {
                "underflow"
            } else {
                "feasible"
            };
            let outcome = match manage_volumes(&dag, &machine, &Default::default()) {
                ManagedOutcome::Solved { volumes, .. } => format!("{}", volumes.method),
                ManagedOutcome::NeedsRegeneration { .. } => "needs regeneration".into(),
                ManagedOutcome::ResourcesExceeded { .. } => "resources exceeded".into(),
            };
            println!(
                "{:<10} {:>12} {:>8} {:>13.3} nl {:>14} {:>22}",
                bench.name(),
                label,
                machine.span(),
                min.to_f64(),
                raw,
                outcome
            );
        }
        println!();
    }
    println!("Reading: glucose survives coarse metering until the least count");
    println!("approaches its 3.3 nl minimum aliquot; the enzyme assay needs the");
    println!("hierarchy's rewrites even at the paper's 100 pl and becomes");
    println!("unsalvageable (regeneration-bound) on coarse hardware.");
}
