//! Regenerates Figure 12: the glucose assay's Vnorms and dispensed
//! volumes (everything static; zero run-time work).

use aqua_bench::benchmark_dag;
use aqua_bench::Benchmark;
use aqua_volume::{dagsolve, Machine};

fn main() {
    let machine = Machine::paper_default();
    let dag = benchmark_dag(Benchmark::Glucose);
    let sol = dagsolve::solve(&dag, &machine).expect("glucose solves");

    println!("=== Figure 12: glucose assay ===");
    println!("{} nodes, {} edges\n", dag.num_nodes(), dag.num_edges());
    println!("{:<22} {:>12} {:>14}", "node", "Vnorm", "volume (nl)");
    for id in dag.node_ids() {
        println!(
            "{:<22} {:>12} {:>14.2}",
            dag.node(id).name,
            sol.vnorms.node[id.index()].to_string(),
            sol.node_nl(id).to_f64()
        );
    }
    let (_, min) = sol.min_edge.expect("has edges");
    println!(
        "\nsmallest dispensed volume: {:.2} nl (paper: 3.3 nl)",
        min.to_f64()
    );
    println!(
        "underflow: {} (paper: none; all volumes at compile time)",
        sol.underflow.is_some()
    );
}
