//! Regenerates Figure 13: the glycomics assay's DAG partitioned at its
//! three unknown-volume separations, with constrained-input bindings
//! and a sample run-time dispensing.

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_rational::Ratio;
use aqua_volume::unknown::{self, Binding};
use aqua_volume::Machine;

fn main() {
    let machine = Machine::paper_default();
    let dag = benchmark_dag(Benchmark::Glycomics);
    let plan = unknown::partition(&dag, &machine).expect("glycomics partitions");

    println!("=== Figure 13: glycomics partitions ===");
    println!(
        "{} partitions (paper: 4, cut at the three separations, with\nbuffer3a split 50/50)\n",
        plan.partitions.len()
    );
    for (pi, part) in plan.partitions.iter().enumerate() {
        println!(
            "partition {pi}: {} nodes, {} edges",
            part.dag.num_nodes(),
            part.dag.num_edges()
        );
        for id in part.dag.node_ids() {
            let node = part.dag.node(id);
            let vn = &part.vnorms.node[id.index()];
            match part.bindings.get(&id) {
                Some(Binding::Static { volume_nl }) => println!(
                    "  [constrained] {:<18} Vnorm {:<8} static {} nl",
                    node.name,
                    vn.to_string(),
                    volume_nl
                ),
                Some(Binding::Runtime {
                    partition, share, ..
                }) => println!(
                    "  [constrained] {:<18} Vnorm {:<8} {} of partition {partition}'s yield",
                    node.name,
                    vn.to_string(),
                    share
                ),
                None => println!("  {:<32} Vnorm {}", node.name, vn),
            }
        }
    }

    println!("\n--- run-time dispensing with 10 nl separation yields ---");
    let results = plan
        .dispense_all(&machine, |_, _| Some(Ratio::from_int(10)))
        .expect("dispense");
    for (pi, r) in results.iter().enumerate() {
        println!(
            "partition {pi}: scale {:.3} nl/Vnorm, min transfer {:.3} nl, underflow: {}",
            r.scale_nl.to_f64(),
            r.min_edge.map(|(_, v)| v.to_f64()).unwrap_or(0.0),
            r.underflow.is_some()
        );
    }
    println!(
        "\n(The X2 constrained input has Vnorm 1/204 — the paper's noted\nrisk spot: a low second-separation yield forces regeneration.)"
    );
}
