//! Sweeps injected hardware-fault rates over the paper's assays and
//! measures how often the run-time recovery ladder (re-dispense →
//! regenerate → re-solve, the Fig. 6 hierarchy applied at run time)
//! completes the assay anyway. Writes `BENCH_fault.json` at the repo
//! root.
//!
//! Usage: `cargo run --release --bin fault_sweep [--quick] [--out PATH]
//! [--obs TRACE_PATH]`
//!
//! `--obs` attaches a recording observability sink: `sim.run` spans,
//! fault and per-tier recovery counters from every execution are
//! exported as a Chrome trace-event JSON plus a text summary at exit.
//!
//! Four cases: the Figure 2 running example, Glucose, Glycomics and
//! Enzyme10 (on a 128-reservoir machine — the assay stores 113 fluids
//! concurrently). Each is executed fault-free once to establish the
//! expected sensor-reading set, then re-executed under a grid of fault
//! rates x seeds with recovery enabled. A run *recovers* when it
//! completes without deficit/overflow violations and reproduces the
//! fault-free sense-result count; the per-tier recovery action counts
//! are accumulated alongside.
//!
//! `--quick` shrinks the grid to a CI smoke test and exits nonzero if
//! the zero-fault-rate column recovers less than 100%.

use std::collections::HashMap;

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_bench::Benchmark;
use aqua_sim::{ExecConfig, Executor, FaultPlan, Violation};
use aqua_volume::Machine;

struct Case {
    name: &'static str,
    out: aqua_compiler::CompileOutput,
    machine: Machine,
    /// Fault-free reference: sense-result count and per-port totals.
    ref_senses: usize,
    ref_collected: HashMap<u32, u64>,
}

fn build_case(name: &'static str, source: &str, machine: Machine) -> Case {
    let out = aqua_compiler::compile(source, &machine, &Default::default())
        .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
    let clean = Executor::new(&machine, ExecConfig::default())
        .run(&out)
        .unwrap_or_else(|e| panic!("{name} failed fault-free: {e}"));
    // Meter underflows are tolerated in the baseline: Enzyme10's sheer
    // fan-out drives some planned volumes below the least count even
    // fault-free. Only deficits/overflows disqualify.
    assert!(
        !clean
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Deficit { .. } | Violation::Overflow { .. })),
        "{name} starves/overflows even fault-free: {:?}",
        clean.violations
    );
    Case {
        name,
        ref_senses: clean.sense_results.len(),
        ref_collected: clean.collected_pl.clone(),
        out,
        machine,
    }
}

/// Whether a faulty run counts as recovered: it completed, hit no
/// deficit/overflow, and produced the fault-free number of readings
/// and the same set of output ports.
fn recovered(case: &Case, report: &aqua_sim::ExecReport) -> bool {
    let hard_violation = report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Deficit { .. } | Violation::Overflow { .. }));
    if hard_violation || report.sense_results.len() != case.ref_senses {
        return false;
    }
    // Every planned output port still received fluid (port 1 doubles
    // as the overflow-trim waste, so extras there are fine).
    case.ref_collected
        .keys()
        .all(|p| report.collected_pl.get(p).is_some_and(|&v| v > 0))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => args.get(pos + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --out requires a path");
            std::process::exit(2);
        }),
        None => concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fault.json").to_owned(),
    };
    let (obs, obs_out) = harness::obs_from_args(&args);

    let default = Machine::paper_default();
    let big = Machine::paper_default()
        .with_reservoirs(128)
        .with_input_ports(64);
    let cases = vec![
        build_case("fig2", aqua_assays::figure2::SOURCE, default.clone()),
        build_case("glucose", &Benchmark::Glucose.source(), default.clone()),
        build_case("glycomics", &Benchmark::Glycomics.source(), default.clone()),
        build_case("enzyme10", &Benchmark::EnzymeN(10).source(), big),
    ];

    let rates: &[f64] = if quick {
        &[0.0, 0.10]
    } else {
        &[0.0, 0.02, 0.05, 0.10, 0.20]
    };
    let seeds: u64 = if quick { 3 } else { 20 };

    println!(
        "fault_sweep: recovery under injected faults ({} mode, {} seeds/rate)\n",
        if quick { "quick" } else { "full" },
        seeds
    );

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = vec![
        ("quick".into(), Extra::Bool(quick)),
        ("seeds_per_rate".into(), Extra::Num(seeds.to_string())),
    ];
    let mut zero_rate_ok = true;
    let mut ten_pct_total = 0u64;
    let mut ten_pct_recovered = 0u64;

    for case in &cases {
        for &rate in rates {
            let mut wins = 0u64;
            let mut faults = 0u64;
            let mut redispense = 0u64;
            let mut regenerate = 0u64;
            let mut replan = 0u64;
            let mut trims = 0u64;
            let mut extra_pl = 0u64;
            let label = format!("{}/rate{:.2}", case.name, rate);
            let m = harness::time(&label, 0, 1, || {
                for seed in 0..seeds {
                    let config = ExecConfig {
                        faults: FaultPlan::uniform(seed + 1, rate),
                        recover: true,
                        obs: obs.clone(),
                        ..ExecConfig::default()
                    };
                    let report = Executor::new(&case.machine, config)
                        .run(&case.out)
                        .unwrap_or_else(|e| panic!("{}: {e}", case.name));
                    assert_eq!(
                        report.conservation_delta_pl(),
                        0,
                        "{} seed {seed}: volume not conserved",
                        case.name
                    );
                    if recovered(case, &report) {
                        wins += 1;
                    }
                    faults += report.faults.total();
                    redispense += report.recovery.redispense;
                    regenerate += report.recovery.regenerate;
                    replan += report.recovery.replan;
                    trims += report.recovery.overflow_trims;
                    extra_pl += report.recovery.extra_volume_pl;
                }
            });
            let pct = 100.0 * wins as f64 / seeds as f64;
            println!(
                "{label:<20} recovered {wins}/{seeds} ({pct:>5.1}%)  faults {faults:>4}  \
                 tiers: redisp {redispense}, regen {regenerate}, replan {replan}, trim {trims}, \
                 extra {:.1} nl",
                extra_pl as f64 / 1000.0
            );
            let key = format!("{}_rate{}", case.name, (rate * 100.0).round() as u32);
            extras.push((format!("{key}_recovered"), Extra::Num(wins.to_string())));
            extras.push((format!("{key}_runs"), Extra::Num(seeds.to_string())));
            extras.push((format!("{key}_faults"), Extra::Num(faults.to_string())));
            extras.push((
                format!("{key}_redispense"),
                Extra::Num(redispense.to_string()),
            ));
            extras.push((
                format!("{key}_regenerate"),
                Extra::Num(regenerate.to_string()),
            ));
            extras.push((format!("{key}_replan"), Extra::Num(replan.to_string())));
            extras.push((format!("{key}_trims"), Extra::Num(trims.to_string())));
            extras.push((
                format!("{key}_extra_volume_pl"),
                Extra::Num(extra_pl.to_string()),
            ));
            measurements.push(m);
            if rate == 0.0 && wins != seeds {
                zero_rate_ok = false;
            }
            if rate <= 0.10 + 1e-9 {
                ten_pct_total += seeds;
                ten_pct_recovered += wins;
            }
        }
        println!();
    }

    let upto10 = 100.0 * ten_pct_recovered as f64 / ten_pct_total.max(1) as f64;
    println!("recovery at fault rates <= 10%: {upto10:.1}%");
    extras.push(("zero_rate_all_recover".into(), Extra::Bool(zero_rate_ok)));
    extras.push((
        "recovery_pct_upto_10".into(),
        Extra::Num(format!("{upto10:.2}")),
    ));

    harness::push_host_extras(&mut extras, &[]);
    let json = harness::to_json("bench_fault/v1", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write BENCH_fault.json");
    println!("wrote {out_path}");
    if let Some((path, sink)) = obs_out {
        harness::write_obs_trace(&path, &sink);
    }
    if !zero_rate_ok {
        eprintln!("error: a zero-fault-rate run failed to complete cleanly");
        std::process::exit(1);
    }
}
