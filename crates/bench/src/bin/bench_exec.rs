//! Benchmarks the chip-as-CPU plan scheduler: scheduled (parallel)
//! execution vs the sequential baseline, plus the 32-instance batch
//! fleet. Writes `BENCH_exec.json` at the repo root.
//!
//! Usage: `cargo run --release --bin bench_exec [--quick] [--out PATH]
//! [--obs TRACE_PATH]`
//!
//! Three experiments:
//!
//! * `enzyme10` — the paper's largest assay on the default two-mixer /
//!   two-heater inventory (with enough storage for renaming). The
//!   headline `enzyme10_speedup` is simulated sequential wet time over
//!   scheduled makespan; the acceptance floor is 2x. An eight-unit
//!   variant (`enzyme10_speedup_8u`) shows inventory scaling.
//! * `batch32` — a fleet of 32 assay instances (8 each of figure2,
//!   glucose, glycomics, enzyme) union-scheduled on one chip.
//!   Isomorphic instances share one DAG analysis via their canonical
//!   plan keys (aqua-serve's content addressing). The batch replays on
//!   1, 2, and 8 worker threads and the report digests must agree
//!   bit-for-bit (`threads_agree`).
//! * `batch32/faulted` — the same fleet at a 5% uniform fault rate with
//!   recovery on: every shortfall must be recovered (no deficit
//!   violations), and the spliced (re-timed) makespan reported.
//!
//! Makespans are *simulated* wet seconds — fully deterministic — so the
//! speedup gates are exact, not statistical. Wall-clock timings of the
//! scheduler itself are reported alongside (`*/plan` rows).
//!
//! Exit status: nonzero if any scheduled makespan exceeds its
//! sequential baseline, if thread counts disagree, if recovery fails,
//! or (full mode only) if a headline speedup misses the 2x floor.

use std::collections::HashMap;

use aqua_bench::harness::{self, Extra, Measurement};
use aqua_bench::Benchmark;
use aqua_compiler::CompileOutput;
use aqua_serve::canon;
use aqua_sim::batch_exec::{run_batch, BatchJob, BatchOptions, BatchReport};
use aqua_sim::exec::{ExecConfig, Executor};
use aqua_sim::fault::FaultPlan;
use aqua_sim::sched::{plan, InstrDag, SchedOptions};
use aqua_volume::Machine;

/// Acceptance floor for the headline speedups (full mode).
const MIN_SPEEDUP: f64 = 2.0;

/// The single-assay machine: paper unit counts, storage sized for
/// renaming (reservoirs are cheap chip area; units are not).
fn exec_machine() -> Machine {
    Machine::paper_default()
        .with_reservoirs(128)
        .with_input_ports(64)
}

/// The batch-fleet machine: a large chip hosting 32 concurrent
/// instances (glycomics separator columns stay occupied for the whole
/// assay, so the fleet needs one per instance).
fn fleet_machine() -> Machine {
    Machine::paper_default()
        .with_reservoirs(512)
        .with_input_ports(128)
        .with_mixers(8)
        .with_heaters(8)
        .with_sensors(8)
        .with_separators(16)
}

struct FleetCase {
    name: &'static str,
    out: CompileOutput,
    key: u128,
}

fn fleet_cases(machine: &Machine) -> Vec<FleetCase> {
    let mut cases = Vec::new();
    for (name, src) in [
        ("figure2", aqua_assays::figure2::SOURCE.to_string()),
        ("glucose", Benchmark::Glucose.source()),
        ("glycomics", Benchmark::Glycomics.source()),
        ("enzyme", Benchmark::Enzyme.source()),
    ] {
        let out = aqua_compiler::compile(&src, machine, &Default::default())
            .unwrap_or_else(|e| panic!("{name} does not compile: {e}"));
        let key = canon::canonicalize(&out.dag, &HashMap::new(), machine)
            .unwrap_or_else(|e| panic!("{name} does not canonicalize: {e}"))
            .key;
        cases.push(FleetCase { name, out, key });
    }
    cases
}

fn build_jobs<'a>(
    cases: &'a [FleetCase],
    per_case: usize,
    config: impl Fn(usize) -> ExecConfig,
) -> Vec<BatchJob<'a>> {
    let mut jobs = Vec::new();
    for case in cases {
        for _ in 0..per_case {
            let i = jobs.len();
            jobs.push(BatchJob {
                out: &case.out,
                key: case.key,
                config: config(i),
            });
        }
    }
    jobs
}

fn speedup(seq_s: u64, sched_s: u64) -> f64 {
    if sched_s == 0 {
        0.0
    } else {
        seq_s as f64 / sched_s as f64
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(pos) => match args.get(pos + 1) {
            Some(p) if !p.starts_with("--") => p.clone(),
            _ => {
                eprintln!("error: --out requires a path");
                std::process::exit(2);
            }
        },
        None => "BENCH_exec.json".to_string(),
    };
    let (obs, obs_out) = harness::obs_from_args(&args);
    let (warmup, iters) = if quick { (0, 1) } else { (1, 5) };

    let mut measurements: Vec<Measurement> = Vec::new();
    let mut extras: Vec<(String, Extra)> = Vec::new();
    let mut ok = true;

    // --- Experiment 1: enzyme10, scheduled vs sequential. ---
    let machine = exec_machine();
    let out = Benchmark::EnzymeN(10)
        .compile(&machine)
        .expect("enzyme10 compiles");
    let opts = SchedOptions { obs: obs.clone() };
    measurements.push(harness::time("enzyme10/plan", warmup, iters, || {
        plan(&out, &machine, &opts)
    }));
    let sched = plan(&out, &machine, &opts);
    sched
        .validate()
        .unwrap_or_else(|e| panic!("enzyme10 schedule invalid: {e}"));
    measurements.push(harness::time("enzyme10/replay", warmup, iters, || {
        Executor::new(&machine, ExecConfig::default())
            .run_scheduled(&out, &sched)
            .expect("enzyme10 replays")
    }));
    let run = Executor::new(&machine, ExecConfig::default())
        .run_scheduled(&out, &sched)
        .expect("enzyme10 replays");
    assert_eq!(
        run.report.conservation_delta_pl(),
        0,
        "conservation holds under renaming"
    );
    let e10_seq = sched.sequential_s;
    let e10_sched = sched.makespan_s;
    let e10_speedup = speedup(e10_seq, e10_sched);
    println!(
        "enzyme10: sequential {e10_seq}s, scheduled {e10_sched}s ({e10_speedup:.2}x, \
         critical path {}s, {} spills, fallback={})",
        sched.critical_path_s, sched.stats.spills, sched.stats.fallback
    );
    extras.push(("enzyme10_seq_s".into(), Extra::Num(e10_seq.to_string())));
    extras.push(("enzyme10_sched_s".into(), Extra::Num(e10_sched.to_string())));
    extras.push((
        "enzyme10_speedup".into(),
        Extra::Num(format!("{e10_speedup:.3}")),
    ));
    extras.push((
        "enzyme10_critical_path_s".into(),
        Extra::Num(sched.critical_path_s.to_string()),
    ));
    for u in &sched.utilization {
        if u.slots > 0 && u.busy_slot_s > 0 {
            extras.push((
                format!("enzyme10_util_{}_permille", u.class).to_lowercase(),
                Extra::Num(u.util_permille.to_string()),
            ));
        }
    }

    // Inventory scaling: eight units of everything.
    let machine8 = exec_machine()
        .with_mixers(8)
        .with_heaters(8)
        .with_sensors(8);
    let out8 = Benchmark::EnzymeN(10)
        .compile(&machine8)
        .expect("enzyme10 compiles");
    let sched8 = plan(&out8, &machine8, &opts);
    let e10_speedup8 = speedup(sched8.sequential_s, sched8.makespan_s);
    println!(
        "enzyme10 (8 units): sequential {}s, scheduled {}s ({e10_speedup8:.2}x)",
        sched8.sequential_s, sched8.makespan_s
    );
    extras.push((
        "enzyme10_speedup_8u".into(),
        Extra::Num(format!("{e10_speedup8:.3}")),
    ));

    // --- Experiment 2: the 32-instance batch fleet. ---
    let fleet = fleet_machine();
    let cases = fleet_cases(&fleet);
    let per_case = 8usize;
    println!(
        "fleet: {per_case} instances each of {}",
        cases.iter().map(|c| c.name).collect::<Vec<_>>().join(", ")
    );
    let run_fleet = |threads: usize| -> BatchReport {
        let jobs = build_jobs(&cases, per_case, |_| ExecConfig::default());
        run_batch(
            &fleet,
            &jobs,
            &BatchOptions {
                threads,
                obs: obs.clone(),
            },
        )
        .expect("batch executes")
    };
    measurements.push(harness::time("batch32/plan+exec", warmup, iters, || {
        run_fleet(8)
    }));
    let batch = run_fleet(1);
    batch
        .schedule
        .validate()
        .unwrap_or_else(|e| panic!("batch schedule invalid: {e}"));
    let batch_speedup = speedup(batch.sequential_s, batch.makespan_s);
    println!(
        "batch32: sequential {}s, scheduled {}s ({batch_speedup:.2}x, {} instances, \
         {} unique DAGs, {} cache hits, fallback={})",
        batch.sequential_s,
        batch.makespan_s,
        batch.reports.len(),
        batch.unique_keys,
        batch.dag_cache_hits,
        batch.schedule.stats.fallback
    );
    for r in &batch.reports {
        assert_eq!(r.conservation_delta_pl(), 0, "batch conservation");
    }
    let digest1 = batch.digest;
    let digest2 = run_fleet(2).digest;
    let digest8 = run_fleet(8).digest;
    let threads_agree = digest1 == digest2 && digest1 == digest8;
    println!("thread digests: 1={digest1:016x} 2={digest2:016x} 8={digest8:016x}");
    extras.push((
        "batch_seq_s".into(),
        Extra::Num(batch.sequential_s.to_string()),
    ));
    extras.push((
        "batch_sched_s".into(),
        Extra::Num(batch.makespan_s.to_string()),
    ));
    extras.push((
        "batch_speedup".into(),
        Extra::Num(format!("{batch_speedup:.3}")),
    ));
    extras.push((
        "batch_instances".into(),
        Extra::Num(batch.reports.len().to_string()),
    ));
    extras.push((
        "batch_dag_cache_hits".into(),
        Extra::Num(batch.dag_cache_hits.to_string()),
    ));
    extras.push(("threads_agree".into(), Extra::Bool(threads_agree)));

    // --- Experiment 3: the fleet under faults, recovery on. ---
    let fault_jobs = build_jobs(&cases, per_case, |i| ExecConfig {
        faults: FaultPlan::uniform(0xBEEF ^ i as u64, 0.05),
        recover: true,
        ..ExecConfig::default()
    });
    let faulted = run_batch(
        &fleet,
        &fault_jobs,
        &BatchOptions {
            threads: 8,
            obs: obs.clone(),
        },
    )
    .expect("faulted batch executes");
    let fault_total: u64 = faulted.reports.iter().map(|r| r.faults.total()).sum();
    let recovered: u64 = faulted
        .reports
        .iter()
        .map(|r| r.recovery.total_recovered())
        .sum();
    let failures: u64 = faulted.reports.iter().map(|r| r.recovery.failures).sum();
    let fault_recovered = failures == 0 && fault_total > 0;
    println!(
        "batch32 @5% faults: {fault_total} faults, {recovered} recoveries, {failures} failures; \
         makespan {}s -> realized {}s ({} instrs re-timed)",
        faulted.makespan_s, faulted.realized_makespan_s, faulted.shifted_instrs
    );
    extras.push(("fault_total".into(), Extra::Num(fault_total.to_string())));
    extras.push(("fault_recoveries".into(), Extra::Num(recovered.to_string())));
    extras.push(("fault_recovered".into(), Extra::Bool(fault_recovered)));
    extras.push((
        "faulted_realized_makespan_s".into(),
        Extra::Num(faulted.realized_makespan_s.to_string()),
    ));
    extras.push((
        "faulted_shifted_instrs".into(),
        Extra::Num(faulted.shifted_instrs.to_string()),
    ));

    // --- Gates. ---
    let makespan_floor_ok = e10_sched <= e10_seq && batch.makespan_s <= batch.sequential_s;
    extras.push(("makespan_floor_ok".into(), Extra::Bool(makespan_floor_ok)));
    extras.push((
        "spills".into(),
        Extra::Num((sched.stats.spills + batch.schedule.stats.spills).to_string()),
    ));
    extras.push((
        "stalls".into(),
        Extra::Num((sched.stats.stalls + batch.schedule.stats.stalls).to_string()),
    ));
    // DAG size context for the plan-time rows.
    let dag = InstrDag::build(&out);
    extras.push(("enzyme10_instrs".into(), Extra::Num(dag.len.to_string())));
    extras.push((
        "enzyme10_episodes".into(),
        Extra::Num(dag.episodes.len().to_string()),
    ));
    harness::push_host_extras(&mut extras, &[("batch", 8)]);
    extras.push(("quick".into(), Extra::Bool(quick)));

    if !makespan_floor_ok {
        eprintln!("FAIL: a scheduled makespan exceeds its sequential baseline");
        ok = false;
    }
    if !threads_agree {
        eprintln!("FAIL: batch digests differ across thread counts");
        ok = false;
    }
    if !fault_recovered {
        eprintln!("FAIL: faulted batch left unrecovered shortfalls (or injected none)");
        ok = false;
    }
    if !quick {
        if e10_speedup < MIN_SPEEDUP {
            eprintln!("FAIL: enzyme10 speedup {e10_speedup:.2}x below {MIN_SPEEDUP}x");
            ok = false;
        }
        if batch_speedup < MIN_SPEEDUP {
            eprintln!("FAIL: batch speedup {batch_speedup:.2}x below {MIN_SPEEDUP}x");
            ok = false;
        }
    }

    for m in &measurements {
        harness::report(m);
    }
    let json = harness::to_json("bench_exec/v1", &measurements, &extras);
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("wrote {out_path}");
    if let Some((path, sink)) = obs_out {
        harness::write_obs_trace(&path, &sink);
    }
    if !ok {
        std::process::exit(1);
    }
}
