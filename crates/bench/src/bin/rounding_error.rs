//! Regenerates the §4.2 rounding-error measurement: RVol solutions
//! rounded to least-count multiples perturb mix ratios by under 2%
//! on the glucose and enzyme assays (glycomics is excluded, as in the
//! paper, because its volumes are run-time quantities).

use aqua_bench::{benchmark_dag, Benchmark};
use aqua_volume::round::round_assignment;
use aqua_volume::{dagsolve, Machine};

fn main() {
    let machine = Machine::paper_default();
    println!("=== §4.2: RVol -> IVol rounding error ===");
    println!("(paper: average error no more than 2%)\n");
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "assay", "max error %", "mean error %", "underflows"
    );
    let mut worst: f64 = 0.0;
    for bench in [Benchmark::Glucose, Benchmark::Enzyme] {
        let dag = benchmark_dag(bench);
        let sol = dagsolve::solve(&dag, &machine).expect("solves");
        let rounded = round_assignment(&dag, &machine, &sol);
        let max = rounded.max_ratio_error.to_f64() * 100.0;
        let mean = rounded.mean_ratio_error.to_f64() * 100.0;
        worst = worst.max(mean);
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>12}",
            bench.name(),
            max,
            mean,
            rounded.underflows.len()
        );
    }
    println!(
        "\nmean rounding error stays under 2%: {}",
        if worst < 2.0 {
            "yes (matches the paper)"
        } else {
            "NO"
        }
    );
    println!("(the enzyme assay's 1:999 aliquot underflows before rounding —");
    println!(" the Figure 14 rewrites fix that; rounding is not the culprit)");
}
