//! Stress tests for the simplex: classic worst cases and larger
//! structured systems.

use aqua_lp::{solve, solve_with, Model, Sense, SimplexConfig, Status};

fn optimal(m: &Model) -> aqua_lp::Solution {
    match solve(m).status {
        Status::Optimal(s) => s,
        other => panic!("not optimal: {other:?}"),
    }
}

/// Klee–Minty cube of dimension `d`: exponential for naive Dantzig
/// pricing in theory; must still terminate (stall detection switches to
/// Bland's rule) and find the known optimum `100^(d-1) * 5` ... we use
/// the standard formulation max sum 2^(d-j) x_j with x_1 <= 5 etc.
#[test]
fn klee_minty_terminates_at_the_right_vertex() {
    let d = 8;
    let mut m = Model::new(Sense::Maximize);
    let x: Vec<_> = (0..d)
        .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
        .collect();
    m.set_objective((0..d).map(|j| (x[j], 2f64.powi((d - 1 - j) as i32))));
    for i in 0..d {
        // 2 * sum_{j<i} 2^(i-j) x_j + x_i <= 5^(i+1)
        let mut terms = Vec::new();
        for (j, &xv) in x.iter().enumerate().take(i) {
            terms.push((xv, 2f64.powi((i - j) as i32 + 1)));
        }
        terms.push((x[i], 1.0));
        m.add_le(format!("c{i}"), terms, 5f64.powi(i as i32 + 1));
    }
    let sol = optimal(&m);
    // Known optimum: x_d = 5^d, everything else 0.
    let expect = 5f64.powi(d as i32);
    assert!(
        (sol.objective - expect).abs() / expect < 1e-9,
        "objective {} vs {}",
        sol.objective,
        expect
    );
}

/// A chain of equalities x_{i+1} = 2 x_i forces many pivots through
/// artificial variables.
#[test]
fn equality_chain_solves_exactly() {
    let n = 60;
    let mut m = Model::new(Sense::Maximize);
    let x: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
        .collect();
    m.add_eq("seed", [(x[0], 1.0)], 1.0);
    for i in 0..n - 1 {
        m.add_eq(format!("link{i}"), [(x[i + 1], 1.0), (x[i], -2.0)], 0.0);
    }
    m.set_objective([(x[n - 1], 1.0)]);
    let sol = optimal(&m);
    let expect = 2f64.powi((n - 1) as i32);
    assert!(
        (sol.objective - expect).abs() / expect < 1e-9,
        "{} vs {expect}",
        sol.objective
    );
}

/// Transportation-style problem with a known optimal cost.
#[test]
fn transportation_problem() {
    // 2 supplies (30, 40), 3 demands (20, 25, 25); costs:
    //   s1: 2 3 1
    //   s2: 5 4 8
    let mut m = Model::new(Sense::Minimize);
    let mut x = Vec::new();
    for i in 0..2 {
        for j in 0..3 {
            x.push(m.add_var(format!("x{i}{j}"), 0.0, f64::INFINITY));
        }
    }
    let cost = [2.0, 3.0, 1.0, 5.0, 4.0, 8.0];
    m.set_objective(x.iter().copied().zip(cost.iter().copied()));
    m.add_le("s0", [(x[0], 1.0), (x[1], 1.0), (x[2], 1.0)], 30.0);
    m.add_le("s1", [(x[3], 1.0), (x[4], 1.0), (x[5], 1.0)], 40.0);
    m.add_ge("d0", [(x[0], 1.0), (x[3], 1.0)], 20.0);
    m.add_ge("d1", [(x[1], 1.0), (x[4], 1.0)], 25.0);
    m.add_ge("d2", [(x[2], 1.0), (x[5], 1.0)], 25.0);
    let sol = optimal(&m);
    // Optimal plan: s1 -> d2 (25 @1), s1 -> d0 (5 @2), s2 -> d0 (15 @5),
    // s2 -> d1 (25 @4) => 25 + 10 + 75 + 100 = 210.
    assert!((sol.objective - 210.0).abs() < 1e-6, "{}", sol.objective);
}

/// Tight iteration caps surface as IterationLimit, not hangs or panics.
#[test]
fn iteration_cap_is_honored() {
    let mut m = Model::new(Sense::Maximize);
    let n = 30;
    let x: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
        .collect();
    m.set_objective(x.iter().map(|&v| (v, 1.0)));
    for i in 0..n {
        m.add_le(
            format!("c{i}"),
            x.iter()
                .enumerate()
                .map(|(j, &v)| (v, if i == j { 2.0 } else { 1.0 })),
            100.0,
        );
    }
    let config = SimplexConfig {
        max_iters: Some(2),
        ..SimplexConfig::default()
    };
    let out = solve_with(&m, &config);
    assert!(
        matches!(out.status, Status::IterationLimit | Status::Optimal(_)),
        "{:?}",
        out.status
    );
}

/// Degenerate "cycling" construction (Beale) with zero right-hand
/// sides: Bland's rule must terminate it.
#[test]
fn beale_cycling_example_terminates() {
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_var("x1", 0.0, f64::INFINITY);
    let x2 = m.add_var("x2", 0.0, f64::INFINITY);
    let x3 = m.add_var("x3", 0.0, f64::INFINITY);
    let x4 = m.add_var("x4", 0.0, f64::INFINITY);
    m.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
    m.add_le("r1", [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
    m.add_le("r2", [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
    m.add_le("r3", [(x3, 1.0)], 1.0);
    let sol = optimal(&m);
    assert!((sol.objective + 0.05).abs() < 1e-9, "{}", sol.objective);
}

/// Larger random-free structured LP: block-diagonal with coupling row.
#[test]
fn block_diagonal_with_coupling() {
    let blocks = 25;
    let mut m = Model::new(Sense::Maximize);
    let mut all = Vec::new();
    for b in 0..blocks {
        let a = m.add_var(format!("a{b}"), 0.0, f64::INFINITY);
        let c = m.add_var(format!("b{b}"), 0.0, f64::INFINITY);
        m.add_le(format!("blk{b}"), [(a, 1.0), (c, 2.0)], 10.0);
        all.push((a, c));
    }
    m.set_objective(all.iter().flat_map(|&(a, c)| [(a, 1.0), (c, 3.0)]));
    // Coupling: total "a" across blocks limited.
    m.add_le("couple", all.iter().map(|&(a, _)| (a, 1.0)), 50.0);
    let sol = optimal(&m);
    // Per block the best is c = 5 (value 15); coupling is slack.
    assert!((sol.objective - 15.0 * blocks as f64).abs() < 1e-6);
}
