// Compiled only with the `proptest-tests` feature: the dependency it
// needs is not vendored, so the default offline build skips it.
#![cfg(feature = "proptest-tests")]

//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random LPs that are feasible *by construction* (the
//! right-hand sides are chosen so that a known witness point satisfies
//! every row). The solver must then (a) report optimal, (b) return a
//! feasible point, and (c) do at least as well as the witness.

use aqua_lp::{solve, Model, Sense, Status};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomLp {
    nvars: usize,
    witness: Vec<f64>,
    rows: Vec<Vec<f64>>, // coefficients per row
    costs: Vec<f64>,
    ubs: Vec<f64>,
}

fn random_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..6).prop_flat_map(|nvars| {
        let witness = proptest::collection::vec(0.0f64..5.0, nvars);
        let ubs = proptest::collection::vec(6.0f64..20.0, nvars);
        let costs = proptest::collection::vec(-3.0f64..3.0, nvars);
        let row = proptest::collection::vec(-2.0f64..2.0, nvars);
        let rows = proptest::collection::vec(row, 1..6);
        (witness, ubs, costs, rows).prop_map(move |(witness, ubs, costs, rows)| RandomLp {
            nvars,
            witness,
            rows,
            costs,
            ubs,
        })
    })
}

fn build(lp: &RandomLp) -> (Model, Vec<aqua_lp::VarId>) {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..lp.nvars)
        .map(|i| m.add_var(format!("x{i}"), 0.0, lp.ubs[i]))
        .collect();
    m.set_objective(vars.iter().copied().zip(lp.costs.iter().copied()));
    for (r, row) in lp.rows.iter().enumerate() {
        // rhs = value at witness + small slack so the witness is feasible.
        let rhs: f64 = row.iter().zip(&lp.witness).map(|(c, w)| c * w).sum::<f64>() + 0.5;
        m.add_le(
            format!("r{r}"),
            vars.iter().copied().zip(row.iter().copied()),
            rhs,
        );
    }
    (m, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn feasible_by_construction_lps_solve_to_optimal(lp in random_lp()) {
        let (m, _) = build(&lp);
        let out = solve(&m);
        let sol = match &out.status {
            Status::Optimal(s) => s,
            other => return Err(TestCaseError::fail(format!("not optimal: {other:?}"))),
        };
        // (b) returned point is feasible
        prop_assert!(sol.is_feasible_for(&m, 1e-5));
        // (c) objective dominates the witness (clip witness to bounds first)
        let clipped: Vec<f64> = lp
            .witness
            .iter()
            .zip(&lp.ubs)
            .map(|(w, u)| w.min(*u))
            .collect();
        if m.is_feasible(&clipped, 1e-9) {
            let witness_obj: f64 = clipped
                .iter()
                .zip(&lp.costs)
                .map(|(x, c)| x * c)
                .sum();
            prop_assert!(
                sol.objective >= witness_obj - 1e-5,
                "solver {} < witness {}",
                sol.objective,
                witness_obj
            );
        }
    }

    #[test]
    fn tightening_rhs_never_improves_objective(lp in random_lp()) {
        let (m1, _) = build(&lp);
        // Same LP with every rhs reduced: the feasible set shrinks, so the
        // optimum cannot improve.
        let m2 = {
            let mut m = Model::new(Sense::Maximize);
            let vars2: Vec<_> = (0..lp.nvars)
                .map(|i| m.add_var(format!("x{i}"), 0.0, lp.ubs[i]))
                .collect();
            m.set_objective(vars2.iter().copied().zip(lp.costs.iter().copied()));
            for (r, row) in lp.rows.iter().enumerate() {
                let rhs: f64 = row
                    .iter()
                    .zip(&lp.witness)
                    .map(|(c, w)| c * w)
                    .sum::<f64>()
                    + 0.25; // tighter than the 0.5 slack in `build`
                m.add_le(
                    format!("r{r}"),
                    vars2.iter().copied().zip(row.iter().copied()),
                    rhs,
                );
            }
            m
        };
        let (o1, o2) = (solve(&m1), solve(&m2));
        if let (Status::Optimal(s1), Status::Optimal(s2)) = (&o1.status, &o2.status) {
            prop_assert!(s2.objective <= s1.objective + 1e-5);
        }
    }

    #[test]
    fn equality_pinned_models_round_trip(vals in proptest::collection::vec(0.1f64..10.0, 1..5)) {
        // x_i pinned by equality rows; solver must return exactly those.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..vals.len())
            .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
            .collect();
        m.set_objective(vars.iter().map(|&v| (v, 1.0)));
        for (i, (&v, &val)) in vars.iter().zip(&vals).enumerate() {
            m.add_eq(format!("pin{i}"), [(v, 2.0)], 2.0 * val);
        }
        let out = solve(&m);
        let sol = out.status.solution().expect("pinned model is feasible");
        for (&v, &val) in vars.iter().zip(&vals) {
            prop_assert!((sol.value(v) - val).abs() < 1e-6);
        }
    }
}
