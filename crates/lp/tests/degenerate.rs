//! Regression tests for degenerate LPs under the sparse revised
//! simplex: highly degenerate vertices force zero-length ratio-test
//! steps, so these only terminate because stall detection switches
//! pricing to Bland's rule (smallest-index entering/leaving), which is
//! cycle-free. The dense backend serves as the reference.

use aqua_lp::{solve_with, Model, Sense, SimplexConfig, SolverBackend, Status};

fn solve(m: &Model, backend: SolverBackend) -> aqua_lp::SolveOutput {
    let config = SimplexConfig {
        backend,
        ..SimplexConfig::default()
    };
    solve_with(m, &config)
}

fn optimal_objective(m: &Model, backend: SolverBackend) -> f64 {
    match solve(m, backend).status {
        Status::Optimal(sol) => sol.objective,
        other => panic!("{backend:?} not optimal: {other:?}"),
    }
}

/// Beale's classic cycling example: Dantzig pricing with a naive tie
/// rule cycles forever at the (degenerate) origin. Optimum is 0.05.
#[test]
fn beale_cycling_example_terminates() {
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_var("x1", 0.0, f64::INFINITY);
    let x2 = m.add_var("x2", 0.0, f64::INFINITY);
    let x3 = m.add_var("x3", 0.0, f64::INFINITY);
    let x4 = m.add_var("x4", 0.0, f64::INFINITY);
    m.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
    m.add_le("r1", [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
    m.add_le("r2", [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
    m.add_le("r3", [(x3, 1.0)], 1.0);
    for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
        let obj = optimal_objective(&m, backend);
        assert!((obj - (-0.05)).abs() < 1e-9, "{backend:?}: {obj}");
    }
}

/// A transportation-style LP with massively redundant equalities: every
/// basic feasible solution is degenerate. Both backends must terminate
/// and agree.
#[test]
fn redundant_equalities_stay_finite_and_agree() {
    let mut m = Model::new(Sense::Minimize);
    let n = 6;
    let vars: Vec<_> = (0..n * n)
        .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
        .collect();
    // Uniform supplies/demands of 1 make every vertex degenerate.
    for r in 0..n {
        let row: Vec<_> = (0..n).map(|c| (vars[r * n + c], 1.0)).collect();
        m.add_eq(format!("supply{r}"), row, 1.0);
    }
    for c in 0..n {
        let col: Vec<_> = (0..n).map(|r| (vars[r * n + c], 1.0)).collect();
        m.add_eq(format!("demand{c}"), col, 1.0);
    }
    // Costs with many ties to stress the pricing tie-breaks.
    let obj: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, ((i / n + i % n) % 3) as f64))
        .collect();
    m.set_objective(obj);
    let sparse = optimal_objective(&m, SolverBackend::Sparse);
    let dense = optimal_objective(&m, SolverBackend::Dense);
    assert!(
        (sparse - dense).abs() < 1e-6,
        "sparse {sparse} dense {dense}"
    );
    // n assignments, each of cost >= 0; the all-zero-cost diagonal
    // pattern (i/n + i%n ≡ 0 mod 3) cannot cover all rows, so the
    // optimum is small but positive and well below the worst cost 2n.
    assert!((0.0..=(2 * n) as f64).contains(&sparse));
}

/// Degenerate rows (zero right-hand sides) pin the phase-1 optimum to a
/// vertex where many basics are at value 0; the revised simplex must
/// still leave phase 1 cleanly and reach the same optimum as the dense
/// tableau.
#[test]
fn zero_rhs_degeneracy_matches_dense() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var("x", 0.0, 10.0);
    let y = m.add_var("y", 0.0, 10.0);
    let z = m.add_var("z", 0.0, 10.0);
    m.set_objective([(x, 1.0), (y, 1.0), (z, 1.0)]);
    // All constraints active at the origin.
    m.add_le("a", [(x, 1.0), (y, -1.0)], 0.0);
    m.add_le("b", [(y, 1.0), (z, -1.0)], 0.0);
    m.add_le("c", [(x, 1.0), (y, 1.0), (z, -2.0)], 0.0);
    m.add_le("cap", [(x, 1.0), (y, 1.0), (z, 1.0)], 9.0);
    let sparse = optimal_objective(&m, SolverBackend::Sparse);
    let dense = optimal_objective(&m, SolverBackend::Dense);
    assert!((sparse - dense).abs() < 1e-9);
    assert!((sparse - 9.0).abs() < 1e-9, "x=y=z=3 is optimal: {sparse}");
}
