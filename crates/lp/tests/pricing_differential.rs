//! Seeded differential tests for the pricing rules and the automatic
//! backend dispatch.
//!
//! The sparse revised simplex defaults to devex pricing with a
//! candidate-list scan; the dense tableau keeps pure Dantzig pricing as
//! the differential oracle. Pricing picks the *path* across vertices,
//! not the destination: every rule must land on the same optimal
//! objective (alternative optima permitting, which is why comparisons
//! are on objectives within 1e-6 and on status classes, never on raw
//! vertex coordinates). The generator is a fixed-seed xorshift so every
//! run and every machine sees the same model family.

use aqua_lp::{
    solve_with, Model, PricingRule, Sense, SimplexConfig, SolveOutput, SolverBackend, Status,
};
use aqua_rational::rng::XorShift64Star;

/// A random bounded LP: finite variable bounds guarantee the objective
/// is bounded, so the only status split is Optimal vs Infeasible — and
/// both backends must agree on which.
fn random_model(seed: u64) -> Model {
    let mut rng = XorShift64Star::new(seed);
    let nvars = 4 + rng.index(12);
    let ncons = 3 + rng.index(10);
    let sense = if rng.next_f64() < 0.5 {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<_> = (0..nvars)
        .map(|i| {
            let lb = if rng.next_f64() < 0.25 {
                -(rng.next_f64() * 5.0)
            } else {
                0.0
            };
            m.add_var(format!("x{i}"), lb, lb + 1.0 + rng.next_f64() * 9.0)
        })
        .collect();
    let mut obj = Vec::new();
    for &v in &vars {
        if rng.next_f64() < 0.8 {
            obj.push((v, (rng.next_f64() - 0.4) * 10.0));
        }
    }
    m.set_objective(obj);
    for c in 0..ncons {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.next_f64() < 0.5 {
                terms.push((v, (rng.next_f64() - 0.3) * 4.0));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = (rng.next_f64() - 0.2) * 20.0;
        match rng.index(4) {
            0 => m.add_ge(format!("c{c}"), terms, rhs),
            1 => m.add_eq(format!("c{c}"), terms, rhs * 0.3),
            _ => m.add_le(format!("c{c}"), terms, rhs),
        };
    }
    m
}

fn solve(m: &Model, backend: SolverBackend, pricing: PricingRule) -> SolveOutput {
    solve_with(
        m,
        &SimplexConfig {
            backend,
            pricing,
            ..SimplexConfig::default()
        },
    )
}

/// Statuses must match by class; optimal objectives within `tol`.
fn assert_agree(seed: u64, label: &str, a: &SolveOutput, b: &SolveOutput, tol: f64) {
    match (&a.status, &b.status) {
        (Status::Optimal(sa), Status::Optimal(sb)) => {
            let scale = 1.0 + sa.objective.abs();
            assert!(
                (sa.objective - sb.objective).abs() / scale < tol,
                "seed {seed} {label}: objectives diverge: {} vs {}",
                sa.objective,
                sb.objective
            );
        }
        (Status::Infeasible, Status::Infeasible) => {}
        other => panic!("seed {seed} {label}: status split {other:?}"),
    }
}

/// Devex + candidate-list pricing must reach the same optimum as the
/// Dantzig rule on the same (sparse) backend, across a seeded family.
#[test]
fn devex_matches_dantzig_on_sparse() {
    for seed in 0..120u64 {
        let m = random_model(seed);
        let devex = solve(&m, SolverBackend::Sparse, PricingRule::Devex);
        let dantzig = solve(&m, SolverBackend::Sparse, PricingRule::Dantzig);
        assert_agree(seed, "devex vs dantzig", &devex, &dantzig, 1e-6);
    }
}

/// The default configuration (Auto backend, devex pricing) must agree
/// with the dense Dantzig tableau — the end-to-end oracle check.
#[test]
fn default_config_matches_dense_oracle() {
    for seed in 0..120u64 {
        let m = random_model(seed);
        let auto = solve_with(&m, &SimplexConfig::default());
        let dense = solve(&m, SolverBackend::Dense, PricingRule::Dantzig);
        assert_agree(seed, "auto vs dense", &auto, &dense, 1e-6);
    }
}

/// Auto is pure dispatch: its result must be byte-identical to whichever
/// concrete backend it resolves to, and the resolution must be recorded
/// in the stats.
#[test]
fn auto_is_identical_to_resolved_backend() {
    for seed in 0..60u64 {
        let m = random_model(seed);
        let auto = solve_with(&m, &SimplexConfig::default());
        let resolved = SolverBackend::Auto.resolve_for(&m);
        assert_eq!(auto.stats.backend_chosen, resolved, "seed {seed}");
        let direct = solve_with(
            &m,
            &SimplexConfig {
                backend: resolved,
                ..SimplexConfig::default()
            },
        );
        match (&auto.status, &direct.status) {
            (Status::Optimal(a), Status::Optimal(b)) => {
                assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "seed {seed}");
                for (va, vb) in a.values.iter().zip(&b.values) {
                    assert_eq!(va.to_bits(), vb.to_bits(), "seed {seed}");
                }
            }
            (Status::Infeasible, Status::Infeasible) => {}
            other => panic!("seed {seed}: {other:?}"),
        }
        assert_eq!(
            auto.stats.iterations, direct.stats.iterations,
            "seed {seed}"
        );
    }
}

/// Models big enough to cross [`SolverBackend::DENSE_CELL_LIMIT`] must
/// resolve to the sparse backend, small ones to dense — and both sides
/// of the threshold still agree with a forced dense solve.
#[test]
fn auto_threshold_picks_both_backends() {
    // Small: a handful of rows/cols lands well under the cell limit.
    let small = random_model(7);
    assert_eq!(
        SolverBackend::Auto.resolve_for(&small),
        SolverBackend::Dense
    );

    // Large: a block-diagonal chain with enough rows x cols to exceed
    // the dense cell limit while staying quick to solve.
    let mut big = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..260)
        .map(|i| big.add_var(format!("x{i}"), 0.0, 4.0))
        .collect();
    big.set_objective(vars.iter().map(|&v| (v, 1.0)));
    for (i, w) in vars.windows(2).enumerate() {
        big.add_le(format!("pair{i}"), [(w[0], 1.0), (w[1], 1.0)], 5.0);
    }
    assert_eq!(SolverBackend::Auto.resolve_for(&big), SolverBackend::Sparse);

    let auto = solve_with(&big, &SimplexConfig::default());
    let dense = solve(&big, SolverBackend::Dense, PricingRule::Dantzig);
    assert_agree(0, "threshold big model", &auto, &dense, 1e-6);
}
