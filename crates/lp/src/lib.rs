//! A from-scratch linear-programming substrate for the AquaCore
//! volume-management reproduction.
//!
//! The paper solves its RVol formulation with Matlab's `linprog` (LIPSOL)
//! and its IVol formulation with LP_Solve 5.5. Neither is available here,
//! so this crate provides the substitute substrate:
//!
//! * [`Model`] — an LP/ILP model builder (variables with bounds,
//!   `<=`/`>=`/`=` constraints, maximize/minimize objective);
//! * [`solve`] — a two-phase primal simplex with bounded variables,
//!   Bland's anti-cycling rule, and single-variable-row presolve. Two
//!   backends share that pipeline: the default sparse *revised* simplex
//!   (CSC storage + product-form eta basis, [`SolverBackend::Sparse`])
//!   and the original dense tableau ([`SolverBackend::Dense`]), kept as
//!   fallback and differential-testing oracle;
//! * [`solve_ilp`] — branch-and-bound integer programming on top of the
//!   relaxation, with node- and time-budgets (the paper's ILP "ran for
//!   hours"; budgets turn that into a reportable outcome). On the sparse
//!   backend every child node is warm-started from its parent's optimal
//!   basis via a bounded-variable dual simplex;
//! * [`batch`] — parallel batch solving of independent models on a
//!   from-scratch work-stealing thread pool.
//!
//! # Examples
//!
//! ```
//! use aqua_lp::{Model, Sense, solve, Status};
//!
//! // maximize x + 2y  s.t.  x + y <= 4,  y <= 3,  x, y >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", 0.0, f64::INFINITY);
//! let y = m.add_var("y", 0.0, 3.0);
//! m.set_objective([(x, 1.0), (y, 2.0)]);
//! m.add_le("cap", [(x, 1.0), (y, 1.0)], 4.0);
//! let out = solve(&m);
//! let sol = match out.status { Status::Optimal(s) => s, _ => unreachable!() };
//! assert!((sol.objective - 7.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
// Lib targets must not panic on `unwrap()`: reachable failure paths
// carry typed errors, invariants use `expect` with a justification.
// Test code (cfg(test)) is exempt — asserting via unwrap is idiomatic.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod basis;
pub mod batch;
mod expr;
mod ilp;
mod model;
mod simplex;
mod solution;
mod sparse;

pub use expr::LinExpr;
pub use ilp::{solve_ilp, IlpConfig, IlpOutcome, IlpStats, IlpStatus};
pub use model::{Constraint, ConstraintSense, Model, ModelError, Sense, VarId};
pub use simplex::{
    solve, solve_with, solve_with_warm, PricingRule, SimplexConfig, SolveOutput, SolveStats,
    SolverBackend, Status,
};
pub use solution::Solution;
pub use sparse::WarmStart;
