//! LP/ILP model builder.

use std::error::Error;
use std::fmt;

use crate::expr::LinExpr;

/// Handle to a model variable.
///
/// Only valid for the [`Model`] that created it; using it with another
/// model is caught by [`Model::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Zero-based index of the variable in its model.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintSense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for ConstraintSense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintSense::Le => write!(f, "<="),
            ConstraintSense::Ge => write!(f, ">="),
            ConstraintSense::Eq => write!(f, "="),
        }
    }
}

/// One linear constraint of a [`Model`].
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Diagnostic label (shows up in infeasibility reports).
    pub name: String,
    /// The linear left-hand side.
    pub expr: LinExpr,
    /// Constraint direction.
    pub sense: ConstraintSense,
    /// The right-hand-side constant.
    pub rhs: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub integer: bool,
}

/// Error raised by model construction or validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A variable's lower bound exceeds its upper bound.
    InvertedBounds {
        /// Name of the offending variable.
        var: String,
        /// The lower bound.
        lb: f64,
        /// The upper bound.
        ub: f64,
    },
    /// A coefficient, bound, or right-hand side is NaN.
    NotANumber {
        /// Where the NaN was found.
        context: String,
    },
    /// A [`VarId`] does not belong to this model.
    UnknownVariable {
        /// The stray id's index.
        index: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvertedBounds { var, lb, ub } => {
                write!(f, "variable `{var}` has inverted bounds [{lb}, {ub}]")
            }
            ModelError::NotANumber { context } => write!(f, "NaN encountered in {context}"),
            ModelError::UnknownVariable { index } => {
                write!(f, "variable id x{index} does not belong to this model")
            }
        }
    }
}

impl Error for ModelError {}

/// An LP/ILP model: variables with bounds, linear constraints, and a
/// linear objective.
///
/// # Examples
///
/// ```
/// use aqua_lp::{Model, Sense};
///
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_var("x", 1.0, 10.0);
/// m.set_objective([(x, 3.0)]);
/// m.add_ge("floor", [(x, 1.0)], 2.0);
/// assert_eq!(m.num_vars(), 1);
/// assert_eq!(m.num_constraints(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Model {
        Model {
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
            sense,
        }
    }

    /// Adds a continuous variable with bounds `[lb, ub]` and returns its id.
    ///
    /// Use `f64::INFINITY` / `f64::NEG_INFINITY` for unbounded sides.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.vars.push(VarDef {
            name: name.into(),
            lb,
            ub,
            integer: false,
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds an integer variable with bounds `[lb, ub]` and returns its id.
    ///
    /// Integrality is enforced only by [`crate::solve_ilp`]; the plain LP
    /// [`crate::solve`] treats it as continuous (the relaxation).
    pub fn add_int_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        let id = self.add_var(name, lb, ub);
        self.vars[id.0].integer = true;
        id
    }

    /// Marks an existing variable as integer.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn set_integer(&mut self, var: VarId) {
        self.vars[var.0].integer = true;
    }

    /// Replaces the objective with `sum(coeff * var)`.
    pub fn set_objective<I: IntoIterator<Item = (VarId, f64)>>(&mut self, terms: I) {
        self.objective = terms.into_iter().collect::<LinExpr>().compact();
    }

    /// Adds a `expr <= rhs` constraint.
    pub fn add_le<I: IntoIterator<Item = (VarId, f64)>>(
        &mut self,
        name: impl Into<String>,
        terms: I,
        rhs: f64,
    ) {
        self.add_constraint(name, terms, ConstraintSense::Le, rhs);
    }

    /// Adds a `expr >= rhs` constraint.
    pub fn add_ge<I: IntoIterator<Item = (VarId, f64)>>(
        &mut self,
        name: impl Into<String>,
        terms: I,
        rhs: f64,
    ) {
        self.add_constraint(name, terms, ConstraintSense::Ge, rhs);
    }

    /// Adds a `expr == rhs` constraint.
    pub fn add_eq<I: IntoIterator<Item = (VarId, f64)>>(
        &mut self,
        name: impl Into<String>,
        terms: I,
        rhs: f64,
    ) {
        self.add_constraint(name, terms, ConstraintSense::Eq, rhs);
    }

    /// Adds a constraint with an explicit sense.
    pub fn add_constraint<I: IntoIterator<Item = (VarId, f64)>>(
        &mut self,
        name: impl Into<String>,
        terms: I,
        sense: ConstraintSense,
        rhs: f64,
    ) {
        self.constraints.push(Constraint {
            name: name.into(),
            expr: terms.into_iter().collect::<LinExpr>().compact(),
            sense,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// All variable ids, in creation (= [`VarId::index`]) order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.vars.len()).map(VarId)
    }

    /// Number of constraints as formulated (before any solver presolve).
    ///
    /// This is the figure the paper reports in Table 2's "LP constraints"
    /// column, so it intentionally counts single-variable rows that the
    /// solver will fold into bounds.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The constraints as formulated.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective expression.
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// The bounds of a variable as `(lb, ub)`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn var_bounds(&self, var: VarId) -> (f64, f64) {
        (self.vars[var.0].lb, self.vars[var.0].ub)
    }

    /// Tightens (never loosens) a variable's bounds; used by branch-and-bound.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    pub fn tighten_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        let v = &mut self.vars[var.0];
        v.lb = v.lb.max(lb);
        v.ub = v.ub.min(ub);
    }

    /// Ids of all variables marked integer.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Checks structural sanity: bounds ordered, no NaNs, all variable ids
    /// in range.
    ///
    /// # Errors
    ///
    /// Returns the first [`ModelError`] found.
    pub fn validate(&self) -> Result<(), ModelError> {
        for v in &self.vars {
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(ModelError::NotANumber {
                    context: format!("bounds of `{}`", v.name),
                });
            }
            if v.lb > v.ub {
                return Err(ModelError::InvertedBounds {
                    var: v.name.clone(),
                    lb: v.lb,
                    ub: v.ub,
                });
            }
        }
        let check_expr = |expr: &LinExpr, what: &str| -> Result<(), ModelError> {
            for &(v, c) in expr.terms() {
                if v.0 >= self.vars.len() {
                    return Err(ModelError::UnknownVariable { index: v.0 });
                }
                if c.is_nan() {
                    return Err(ModelError::NotANumber {
                        context: what.to_owned(),
                    });
                }
            }
            Ok(())
        };
        check_expr(&self.objective, "objective")?;
        for c in &self.constraints {
            check_expr(&c.expr, &format!("constraint `{}`", c.name))?;
            if c.rhs.is_nan() {
                return Err(ModelError::NotANumber {
                    context: format!("rhs of `{}`", c.name),
                });
            }
        }
        Ok(())
    }

    /// Checks whether a candidate point satisfies all constraints and
    /// bounds within `tol`. Useful for tests and for auditing solutions.
    pub fn is_feasible(&self, point: &[f64], tol: f64) -> bool {
        if point.len() != self.vars.len() {
            return false;
        }
        for (i, v) in self.vars.iter().enumerate() {
            if point[i] < v.lb - tol || point[i] > v.ub + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(point);
            match c.sense {
                ConstraintSense::Le => lhs <= c.rhs + tol,
                ConstraintSense::Ge => lhs >= c.rhs - tol,
                ConstraintSense::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

impl fmt::Display for Model {
    /// Renders the model in an LP-file-like textual form, handy for
    /// debugging formulation bugs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sense {
            Sense::Maximize => writeln!(f, "maximize")?,
            Sense::Minimize => writeln!(f, "minimize")?,
        }
        write!(f, " ")?;
        for &(v, c) in self.objective.terms() {
            write!(f, " {c:+}*{}", self.vars[v.0].name)?;
        }
        writeln!(f)?;
        writeln!(f, "subject to")?;
        for c in &self.constraints {
            write!(f, "  {}:", c.name)?;
            for &(v, coeff) in c.expr.terms() {
                write!(f, " {coeff:+}*{}", self.vars[v.0].name)?;
            }
            writeln!(f, " {} {}", c.sense, c.rhs)?;
        }
        writeln!(f, "bounds")?;
        for v in &self.vars {
            writeln!(
                f,
                "  {} <= {} <= {}{}",
                v.lb,
                v.name,
                v.ub,
                if v.integer { "  (integer)" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_int_var("y", 0.0, 5.0);
        m.add_le("c0", [(x, 1.0), (y, 1.0)], 3.0);
        m.add_eq("c1", [(y, 2.0)], 4.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 2);
        assert_eq!(m.integer_vars(), vec![y]);
        assert_eq!(m.var_name(x), "x");
    }

    #[test]
    fn validate_catches_inverted_bounds() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("bad", 2.0, 1.0);
        assert!(matches!(
            m.validate(),
            Err(ModelError::InvertedBounds { .. })
        ));
    }

    #[test]
    fn validate_catches_nan() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, 1.0);
        m.add_le("c", [(x, f64::NAN)], 1.0);
        assert!(matches!(m.validate(), Err(ModelError::NotANumber { .. })));
    }

    #[test]
    fn validate_catches_stray_var() {
        let mut m1 = Model::new(Sense::Minimize);
        let mut m2 = Model::new(Sense::Minimize);
        m1.add_var("x", 0.0, 1.0);
        let x1 = m1.add_var("y", 0.0, 1.0);
        m2.add_le("c", [(x1, 1.0)], 1.0); // x1 is index 1, m2 has 0 vars
        assert!(matches!(
            m2.validate(),
            Err(ModelError::UnknownVariable { index: 1 })
        ));
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        m.add_le("sum", [(x, 1.0), (y, 1.0)], 5.0);
        m.add_ge("min_x", [(x, 1.0)], 1.0);
        assert!(m.is_feasible(&[1.0, 4.0], 1e-9));
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // violates min_x
        assert!(!m.is_feasible(&[3.0, 3.0], 1e-9)); // violates sum
        assert!(!m.is_feasible(&[3.0], 1e-9)); // wrong arity
    }

    #[test]
    fn tighten_bounds_never_loosens() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 1.0, 5.0);
        m.tighten_bounds(x, 0.0, 4.0);
        assert_eq!(m.var_bounds(x), (1.0, 4.0));
        m.tighten_bounds(x, 2.0, 10.0);
        assert_eq!(m.var_bounds(x), (2.0, 4.0));
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        m.add_le("c", [(x, 1.0)], 1.0);
        let text = m.to_string();
        assert!(text.contains("maximize"));
        assert!(text.contains("c:"));
    }
}
