//! Basis representation for the sparse revised simplex: a product-form
//! eta file with periodic refactorization.
//!
//! The basis inverse is never formed explicitly. It is kept as a product
//! `B^-1 = E_k^-1 ... E_1^-1` of elementary (eta) matrices, each
//! recording one pivot: the FTRANed entering column `w = B_old^-1 a_j`
//! and the pivot row `r`. Applying an eta inverse is O(nnz(w)):
//!
//! * **FTRAN** (`x := B^-1 x`): apply etas oldest-first;
//!   `x_r := x_r / w_r`, then `x_i -= w_i * x_r` for the off-pivot
//!   entries.
//! * **BTRAN** (`y := B^-T y`): apply eta transposes newest-first; only
//!   the pivot entry changes: `y_r := (y_r - sum_i w_i * y_i) / w_r`.
//!
//! The eta file grows by one per pivot, so work per iteration degrades
//! linearly; after [`EtaBasis::REFACTOR_LIMIT`] updates the caller
//! triggers [`EtaBasis::refactor`], which rebuilds the file from the
//! basic columns themselves (a sparse LU-by-elimination in product
//! form). Refactorization pivots greedily by column sparsity and
//! largest available pivot magnitude, then *reorders the basis heading*
//! so that the column pivoted on row `r` is recorded as basic in row
//! `r` — making the rebuilt eta product exactly the inverse of the
//! reordered heading.

/// One elementary pivot matrix, stored sparsely.
#[derive(Debug, Clone)]
struct Eta {
    /// Pivot row.
    row: usize,
    /// Pivot element `w_r` (guaranteed away from zero by the caller's
    /// ratio test / the refactorization pivot threshold).
    pivot: f64,
    /// Off-pivot nonzeros `(i, w_i)` of the FTRANed column.
    others: Vec<(usize, f64)>,
}

/// Entries below this magnitude are dropped when an eta is recorded;
/// they are numerical noise and would only bloat the file.
const DROP_TOL: f64 = 1e-13;

/// Pivots below this magnitude during refactorization mean the basis is
/// numerically singular.
const SINGULAR_TOL: f64 = 1e-10;

/// The basis matrix of a revised simplex, as a product of eta matrices.
#[derive(Debug, Clone)]
pub(crate) struct EtaBasis {
    m: usize,
    etas: Vec<Eta>,
    /// Number of etas produced by the last refactorization (the prefix
    /// of `etas` that represents the factorized basis itself).
    base: usize,
}

/// The basis matrix was numerically singular during refactorization.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SingularBasis;

impl EtaBasis {
    /// Updates since the last refactorization after which the caller
    /// should refactorize.
    pub(crate) const REFACTOR_LIMIT: usize = 100;

    pub(crate) fn new(m: usize) -> EtaBasis {
        EtaBasis {
            m,
            etas: Vec::new(),
            base: 0,
        }
    }

    /// Pivots recorded since the last refactorization.
    pub(crate) fn updates_since_refactor(&self) -> usize {
        self.etas.len() - self.base
    }

    /// Solves `B x = x_in` in place (`x := B^-1 x`).
    pub(crate) fn ftran(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.m);
        for eta in &self.etas {
            let xr = x[eta.row];
            if xr != 0.0 {
                let p = xr / eta.pivot;
                x[eta.row] = p;
                for &(i, v) in &eta.others {
                    x[i] -= v * p;
                }
            }
        }
    }

    /// Solves `B^T y = y_in` in place (`y := B^-T y`).
    pub(crate) fn btran(&self, y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.m);
        for eta in self.etas.iter().rev() {
            let mut s = 0.0;
            for &(i, v) in &eta.others {
                s += v * y[i];
            }
            y[eta.row] = (y[eta.row] - s) / eta.pivot;
        }
    }

    /// Records the pivot `(row, w)` where `w = B^-1 a_entering` (the
    /// FTRANed entering column, dense).
    pub(crate) fn push(&mut self, row: usize, w: &[f64]) {
        debug_assert!(w[row].abs() > DROP_TOL, "pivot on near-zero element");
        let others: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != row && v.abs() > DROP_TOL)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            row,
            pivot: w[row],
            others,
        });
    }

    /// Rebuilds the eta file from the basic columns and *reorders*
    /// `basic` so that `basic[r]` is the column pivoted on row `r`.
    ///
    /// `col(j, f)` must call `f(row, value)` for every nonzero of column
    /// `j` of the constraint matrix; `nnz(j)` returns its nonzero count
    /// (used to pivot sparse columns first, the classic fill-reducing
    /// heuristic for product-form inverses).
    ///
    /// Singleton columns are peeled off first without touching a dense
    /// buffer: they sort to the front of the `(nnz, col)` order, every
    /// eta recorded before them is then itself a singleton on a distinct
    /// row, so their FTRAN is the identity and their pivot scan is
    /// forced — the recorded eta is identical to the general path's, in
    /// O(1) instead of O(m). A cold-start ± unit basis (all slacks and
    /// artificials) therefore refactorizes in O(m) instead of O(m^2).
    ///
    /// On success the product of the recorded etas is exactly the
    /// inverse of the (reordered) basis; callers must recompute any
    /// cached basic values afterwards.
    pub(crate) fn refactor<C, N>(
        &mut self,
        basic: &mut [usize],
        col: C,
        nnz: N,
    ) -> Result<(), SingularBasis>
    where
        C: Fn(usize, &mut dyn FnMut(usize, f64)),
        N: Fn(usize) -> usize,
    {
        debug_assert_eq!(basic.len(), self.m);
        self.etas.clear();
        self.base = 0;

        // Sparsest columns first; ties by column index for determinism.
        let mut order: Vec<usize> = (0..self.m).collect();
        order.sort_by_key(|&k| (nnz(basic[k]), basic[k]));

        let mut pivoted = vec![false; self.m];
        let mut new_basic = vec![usize::MAX; self.m];

        // Fast path: peel the leading singleton (and empty) columns.
        let mut split = order.len();
        for (idx, &k) in order.iter().enumerate() {
            let j = basic[k];
            if nnz(j) > 1 {
                split = idx;
                break;
            }
            let mut entry: Option<(usize, f64)> = None;
            col(j, &mut |r, v| entry = Some((r, v)));
            // An empty column, a duplicated singleton row, or a tiny
            // pivot is singular — exactly what the general path's scan
            // over unpivoted rows would conclude.
            let Some((r, v)) = entry else {
                return Err(SingularBasis);
            };
            if pivoted[r] || v.abs() < SINGULAR_TOL {
                return Err(SingularBasis);
            }
            self.etas.push(Eta {
                row: r,
                pivot: v,
                others: Vec::new(),
            });
            pivoted[r] = true;
            new_basic[r] = j;
        }

        let mut x = vec![0.0; self.m];
        for &k in &order[split..] {
            let j = basic[k];
            x.iter_mut().for_each(|v| *v = 0.0);
            col(j, &mut |r, v| x[r] += v);
            self.ftran(&mut x);
            // Largest available pivot; ties by smallest row.
            let mut best: Option<usize> = None;
            for (i, &v) in x.iter().enumerate() {
                if !pivoted[i] && best.is_none_or(|b| v.abs() > x[b].abs()) {
                    best = Some(i);
                }
            }
            let p = best.expect("one unpivoted row per unprocessed column");
            if x[p].abs() < SINGULAR_TOL {
                return Err(SingularBasis);
            }
            self.push(p, &x);
            pivoted[p] = true;
            new_basic[p] = j;
        }
        basic.copy_from_slice(&new_basic);
        self.base = self.etas.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x3 dense test matrix (nonsingular, asymmetric).
    const A: [[f64; 3]; 3] = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 4.0]];

    fn scatter(j: usize, x: &mut [f64]) {
        for (i, row) in A.iter().enumerate() {
            x[i] += row[j];
        }
    }

    fn col(j: usize, f: &mut dyn FnMut(usize, f64)) {
        for (i, row) in A.iter().enumerate() {
            if row[j] != 0.0 {
                f(i, row[j]);
            }
        }
    }

    fn mat_vec(v: &[f64]) -> Vec<f64> {
        A.iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    #[test]
    fn refactor_then_ftran_inverts() {
        let mut basis = EtaBasis::new(3);
        let mut basic = vec![0, 1, 2];
        basis.refactor(&mut basic, col, |_| 3).unwrap();
        // B^-1 (B v) == v, modulo the heading permutation: after
        // refactor, basic[r] names the column whose multiplier lands in
        // slot r of the FTRAN result.
        let v = [1.0, -2.0, 0.5];
        let mut x = mat_vec(&v);
        basis.ftran(&mut x);
        for r in 0..3 {
            assert!(
                (x[r] - v[basic[r]]).abs() < 1e-12,
                "x={x:?} basic={basic:?}"
            );
        }
    }

    #[test]
    fn btran_matches_transpose_solve() {
        let mut basis = EtaBasis::new(3);
        let mut basic = vec![0, 1, 2];
        basis.refactor(&mut basic, col, |_| 3).unwrap();
        // y = B^-T c  =>  B^T y = c  =>  y . (B e_j) = c_j.
        let c = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        for r in 0..3 {
            y[r] = c[basic[r]]; // cost of the column basic in row r
        }
        basis.btran(&mut y);
        for (j, &cj) in c.iter().enumerate() {
            let mut col = vec![0.0; 3];
            scatter(j, &mut col);
            let dot: f64 = y.iter().zip(&col).map(|(a, b)| a * b).sum();
            assert!((dot - cj).abs() < 1e-12, "col {j}: {dot} vs {cj}");
        }
    }

    #[test]
    fn push_update_tracks_column_swap() {
        // Start from the identity, swap in column 1 of A at row 1.
        let mut basis = EtaBasis::new(3);
        let mut w = vec![0.0; 3];
        scatter(1, &mut w);
        basis.ftran(&mut w); // identity basis: w = A e_1
        basis.push(1, &w);
        assert_eq!(basis.updates_since_refactor(), 1);
        // New basis B = [e_0, A e_1, e_2]; check B^-1 (A e_1) = e_1.
        let mut x = vec![0.0; 3];
        scatter(1, &mut x);
        basis.ftran(&mut x);
        assert!((x[0]).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2]).abs() < 1e-12);
    }

    #[test]
    fn singular_basis_is_reported() {
        let mut basis = EtaBasis::new(2);
        let mut basic = vec![0, 1];
        // Two copies of the same column.
        let dup = |_: usize, f: &mut dyn FnMut(usize, f64)| {
            f(0, 1.0);
            f(1, 2.0);
        };
        assert!(basis.refactor(&mut basic, dup, |_| 2).is_err());
    }

    #[test]
    fn singleton_fast_path_matches_general_path() {
        // A diagonal-ish heading: columns 0 and 2 are singletons, column
        // 1 is not. The singleton peel must leave exactly the same eta
        // product (checked through FTRAN results) as a basis with the
        // singletons forced through the general path by lying about nnz.
        let c = |j: usize, f: &mut dyn FnMut(usize, f64)| match j {
            0 => f(1, 2.0),
            1 => {
                f(0, 1.0);
                f(2, 3.0);
            }
            _ => f(0, 4.0),
        };
        let mut fast = EtaBasis::new(3);
        let mut fast_basic = vec![0, 1, 2];
        fast.refactor(&mut fast_basic, c, |j| if j == 1 { 2 } else { 1 })
            .unwrap();
        let mut slow = EtaBasis::new(3);
        let mut slow_basic = vec![0, 1, 2];
        // nnz >= 2 everywhere disables the peel but preserves the
        // (nnz, col) sort order of the two singletons vs column 1.
        slow.refactor(&mut slow_basic, c, |j| if j == 1 { 3 } else { 2 })
            .unwrap();
        assert_eq!(fast_basic, slow_basic);
        for trial in 0..3 {
            let mut a = vec![0.0; 3];
            let mut b = vec![0.0; 3];
            a[trial] = 1.0;
            b[trial] = 1.0;
            fast.ftran(&mut a);
            slow.ftran(&mut b);
            assert_eq!(a, b, "ftran of e_{trial} diverged");
        }
    }

    #[test]
    fn duplicate_singleton_rows_are_singular() {
        let mut basis = EtaBasis::new(2);
        let mut basic = vec![0, 1];
        // Two singleton columns on the same row.
        let dup = |_: usize, f: &mut dyn FnMut(usize, f64)| f(0, 1.0);
        assert!(basis.refactor(&mut basic, dup, |_| 1).is_err());
    }
}
