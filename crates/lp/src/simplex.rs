//! Two-phase primal simplex with bounded variables.
//!
//! Two interchangeable backends share one standardization pipeline;
//! the default [`SolverBackend::Auto`] picks between them per model
//! from the would-be tableau size (see
//! [`SolverBackend::DENSE_CELL_LIMIT`]):
//!
//! * [`SolverBackend::Sparse`] — the revised simplex of
//!   [`crate::sparse`]: CSC column storage, a product-form eta basis
//!   with periodic refactorization, devex pricing
//!   ([`PricingRule::Devex`]), and warm starts for branch-and-bound.
//!   Work per iteration is proportional to the basis/eta sizes rather
//!   than to `rows x cols`.
//! * [`SolverBackend::Dense`] — the original dense-tableau
//!   implementation, kept as a fallback and as the differential-testing
//!   oracle for the sparse backend.
//!
//! Shared pipeline:
//!
//! 1. **Presolve** — constraints mentioning a single variable are folded
//!    into that variable's bounds (the paper's per-edge minimum-volume
//!    constraints are all of this shape). The *reported* constraint count
//!    is taken from the model before presolve, matching how the paper
//!    counts constraints in Table 2.
//! 2. **Standardization** — every variable is shifted/mirrored/split to
//!    an internal variable with bounds `[0, u]` (`u` possibly infinite);
//!    every constraint becomes an equality via a slack. (The dense
//!    backend additionally sign-normalizes rows so the right-hand side
//!    is nonnegative; the sparse backend keeps rows as formulated so the
//!    matrix is bound-independent and can be reused across warm starts.)
//! 3. **Phase 1** — artificial variables are added where a slack cannot
//!    serve as the initial basis and `sum(artificials)` is minimized;
//!    a positive optimum means the model is infeasible. Artificials are
//!    then clamped to `[0, 0]` so phase 2 can never re-activate them.
//! 4. **Phase 2** — the real objective is minimized with the
//!    bounded-variable pivoting rules (entering variables may rise from
//!    their lower bound or fall from their upper bound; the ratio test
//!    admits bound flips). Dantzig pricing is used until the objective
//!    stalls, after which Bland's rule guarantees termination.

use crate::model::{ConstraintSense, Model, Sense};
use crate::solution::Solution;
use crate::sparse::WarmStart;

/// Which simplex implementation [`solve_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverBackend {
    /// Pick per model: dense for small tableaus (where the revised
    /// method's eta/BTRAN overhead loses to a cache-friendly dense
    /// sweep), sparse beyond [`SolverBackend::DENSE_CELL_LIMIT`]
    /// tableau cells. The decision is a pure function of the model, so
    /// solves stay deterministic.
    #[default]
    Auto,
    /// Sparse revised simplex (CSC storage + product-form eta basis).
    Sparse,
    /// Dense tableau; the original implementation, kept as a fallback
    /// and differential-testing oracle.
    Dense,
}

impl SolverBackend {
    /// `Auto` switches to sparse when the dense tableau would exceed
    /// this many cells (`rows x (structural + slack)` after the cheap
    /// row scan; presolve-folded single-variable rows excluded).
    ///
    /// Calibrated on the enzyme cascade family (see EXPERIMENTS.md):
    /// enzyme1 (~600 cells) and enzyme2 (~10k cells) solve 1.4-2x
    /// faster dense, enzyme3 (~82k cells) is already 1.5x faster
    /// sparse, and the gap widens monotonically from there (enzyme6,
    /// ~4.2M cells, is 3.4x; enzyme10, ~86M cells, is >10x and beyond
    /// dense memory comfort). The paper's small assays (fig2 ~84
    /// cells, glucose ~2.1k, glycomics partitions of similar size) all
    /// land safely on the dense side.
    pub const DENSE_CELL_LIMIT: usize = 32_768;

    /// Resolves `Auto` against a concrete model; `Sparse`/`Dense` pass
    /// through unchanged.
    pub fn resolve_for(self, model: &Model) -> SolverBackend {
        match self {
            SolverBackend::Auto => {
                let mut rows = 0usize;
                for c in model.constraints() {
                    // Single-variable rows fold into bounds in presolve
                    // and never reach either backend.
                    if c.expr.terms().len() >= 2 {
                        rows += 1;
                    }
                }
                let cols = model.num_vars() + rows;
                if rows.saturating_mul(cols) > SolverBackend::DENSE_CELL_LIMIT {
                    SolverBackend::Sparse
                } else {
                    SolverBackend::Dense
                }
            }
            other => other,
        }
    }
}

/// Entering-variable pricing rule for the sparse backend. The dense
/// backend always prices by Dantzig's rule — it is the differential
/// oracle, so its pivot sequence stays put.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PricingRule {
    /// Devex reference weights (Forrest-Goldfarb) with candidate-list
    /// partial pricing; reduced costs are maintained incrementally and
    /// the reference framework resets on each refactorization.
    #[default]
    Devex,
    /// Classic most-negative-reduced-cost pricing with a full sweep per
    /// iteration; kept as the pricing differential oracle.
    Dantzig,
}

/// Tuning knobs for [`solve_with`].
#[derive(Debug, Clone)]
pub struct SimplexConfig {
    /// Feasibility / reduced-cost tolerance.
    pub tol: f64,
    /// Hard cap on simplex iterations per phase; `None` derives a cap
    /// from the problem size.
    pub max_iters: Option<u64>,
    /// Iterations without objective progress before switching to Bland's
    /// rule.
    pub stall_limit: u64,
    /// Which simplex implementation to run.
    pub backend: SolverBackend,
    /// Entering-variable pricing for the sparse backend.
    pub pricing: PricingRule,
    /// Instrumentation handle: spans (`lp.solve`, `lp.phase1`,
    /// `lp.phase2`) and counters (`lp.pivots`, `lp.eta_refactors`,
    /// `lp.backend_chosen.*`, `lp.pricing.*`). Off by default — the
    /// default handle records nothing.
    pub obs: aqua_obs::Obs,
}

impl Default for SimplexConfig {
    fn default() -> SimplexConfig {
        SimplexConfig {
            tol: 1e-7,
            max_iters: None,
            stall_limit: 256,
            backend: SolverBackend::default(),
            pricing: PricingRule::default(),
            obs: aqua_obs::Obs::default(),
        }
    }
}

/// Outcome of a solve: status plus statistics.
#[derive(Debug, Clone)]
pub struct SolveOutput {
    /// The termination status (optimal solution, infeasible, ...).
    pub status: Status,
    /// Work statistics for benchmarking.
    pub stats: SolveStats,
}

/// Work statistics of one simplex run.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Total pivots + bound flips across both phases.
    pub iterations: u64,
    /// Rows in the standardized tableau (after presolve).
    pub rows: usize,
    /// Columns in the standardized tableau (structural + slack).
    pub cols: usize,
    /// Single-variable constraints folded into bounds by presolve.
    pub folded_constraints: usize,
    /// The backend that actually ran (`Auto` resolved per model).
    /// Stays `Auto` on early exits that never reach a backend
    /// (validation failures).
    pub backend_chosen: SolverBackend,
}

/// Termination status of the LP solver.
#[derive(Debug, Clone)]
pub enum Status {
    /// An optimal solution was found.
    Optimal(Solution),
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The iteration cap was hit before termination (numerically
    /// pathological input).
    IterationLimit,
}

impl Status {
    /// The solution if optimal.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            Status::Optimal(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the status is optimal.
    pub fn is_optimal(&self) -> bool {
        matches!(self, Status::Optimal(_))
    }
}

/// Solves a model with the default configuration.
///
/// The model is validated first; structural errors (NaN, inverted
/// bounds) are reported as [`Status::Infeasible`] with zero iterations —
/// callers that need the distinction should call [`Model::validate`]
/// themselves.
///
/// # Examples
///
/// ```
/// use aqua_lp::{Model, Sense, solve};
///
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_var("x", 0.0, f64::INFINITY);
/// m.set_objective([(x, 1.0)]);
/// m.add_ge("floor", [(x, 1.0)], 3.0);
/// let sol = solve(&m).status.solution().unwrap().clone();
/// assert!((sol.value(x) - 3.0).abs() < 1e-6);
/// ```
pub fn solve(model: &Model) -> SolveOutput {
    solve_with(model, &SimplexConfig::default())
}

/// Solves a model with an explicit configuration. See [`solve`].
pub fn solve_with(model: &Model, config: &SimplexConfig) -> SolveOutput {
    solve_with_warm(model, config, None).0
}

/// Solves a model, optionally warm-starting from the basis of a
/// previous solve of a *bound-tightened variant* of the same model (the
/// branch-and-bound case: costs and coefficients unchanged, variable
/// bounds only tightened).
///
/// Returns the outcome plus, when the solve ended [`Status::Optimal`] on
/// the sparse backend, an opaque [`WarmStart`] capturing the optimal
/// basis for reuse. The dense backend ignores `warm` and returns `None`.
///
/// An incompatible warm start (different model shape) is detected and
/// ignored — the solve falls back to a cold start, never to a wrong
/// answer.
pub fn solve_with_warm(
    model: &Model,
    config: &SimplexConfig,
    warm: Option<&WarmStart>,
) -> (SolveOutput, Option<WarmStart>) {
    if model.validate().is_err() {
        let out = SolveOutput {
            status: Status::Infeasible,
            stats: SolveStats::default(),
        };
        return (out, None);
    }
    let span = config.obs.span("lp.solve");
    let resolved = config.backend.resolve_for(model);
    let (mut out, ws) = match resolved {
        SolverBackend::Sparse => crate::sparse::solve_sparse(model, config, warm),
        SolverBackend::Dense => (solve_dense(model, config), None),
        SolverBackend::Auto => unreachable!("resolve_for never returns Auto"),
    };
    out.stats.backend_chosen = resolved;
    config.obs.add(
        match resolved {
            SolverBackend::Sparse => "lp.backend_chosen.sparse",
            _ => "lp.backend_chosen.dense",
        },
        1,
    );
    config.obs.add("lp.pivots", out.stats.iterations);
    span.end();
    (out, ws)
}

fn solve_dense(model: &Model, config: &SimplexConfig) -> SolveOutput {
    match Tableau::build(model, config) {
        Ok(mut t) => t.run(model),
        Err(BuildVerdict::Infeasible) => SolveOutput {
            status: Status::Infeasible,
            stats: SolveStats::default(),
        },
    }
}

// ---------------------------------------------------------------------
// Standardization
// ---------------------------------------------------------------------

pub(crate) enum BuildVerdict {
    Infeasible,
}

/// How a model variable maps onto internal column(s):
/// `x_model = offset + sign * x_col` (plus a second negated column for
/// free variables).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct VarMap {
    pub(crate) col: usize,
    pub(crate) offset: f64,
    pub(crate) sign: f64,
    /// Second column for split (free) variables: `x = offset + x_col - x_neg`.
    pub(crate) neg_col: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColStatus {
    Basic,
    AtLower,
    AtUpper,
}

/// Presolve result: surviving constraint indices plus tightened bounds.
pub(crate) struct Presolved {
    /// Indices into `model.constraints()` of rows the solver keeps.
    pub(crate) kept: Vec<usize>,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) folded: usize,
}

/// Folds single-variable constraints into variable bounds (shared by
/// both backends so they standardize identically).
pub(crate) fn presolve(model: &Model, tol: f64) -> Result<Presolved, BuildVerdict> {
    let n = model.num_vars();
    let mut lb: Vec<f64> = (0..n).map(|i| model.vars[i].lb).collect();
    let mut ub: Vec<f64> = (0..n).map(|i| model.vars[i].ub).collect();
    let mut kept = Vec::new();
    let mut folded = 0usize;
    for (ci, c) in model.constraints().iter().enumerate() {
        let terms = c.expr.terms();
        match terms.len() {
            0 => {
                let ok = match c.sense {
                    ConstraintSense::Le => 0.0 <= c.rhs + tol,
                    ConstraintSense::Ge => 0.0 >= c.rhs - tol,
                    ConstraintSense::Eq => c.rhs.abs() <= tol,
                };
                if !ok {
                    return Err(BuildVerdict::Infeasible);
                }
                folded += 1;
            }
            1 => {
                let (v, a) = terms[0];
                let i = v.index();
                let bound = c.rhs / a;
                // a*x <= rhs  =>  x <= bound (a>0) or x >= bound (a<0)
                let tighten_le = |ub: &mut f64| *ub = ub.min(bound);
                let tighten_ge = |lb: &mut f64| *lb = lb.max(bound);
                match (c.sense, a > 0.0) {
                    (ConstraintSense::Le, true) | (ConstraintSense::Ge, false) => {
                        tighten_le(&mut ub[i])
                    }
                    (ConstraintSense::Le, false) | (ConstraintSense::Ge, true) => {
                        tighten_ge(&mut lb[i])
                    }
                    (ConstraintSense::Eq, _) => {
                        tighten_le(&mut ub[i]);
                        tighten_ge(&mut lb[i]);
                    }
                }
                folded += 1;
            }
            _ => kept.push(ci),
        }
    }
    for i in 0..n {
        if lb[i] > ub[i] + tol {
            return Err(BuildVerdict::Infeasible);
        }
        // Numerical cross-over from folding: clamp.
        if lb[i] > ub[i] {
            ub[i] = lb[i];
        }
    }
    Ok(Presolved {
        kept,
        lb,
        ub,
        folded,
    })
}

/// Maps model variables to internal columns with bounds `[0, u]`.
/// Returns `(maps, upper-per-structural-column, structural columns)`.
pub(crate) fn build_var_maps(lb: &[f64], ub: &[f64]) -> (Vec<VarMap>, Vec<f64>, usize) {
    let mut var_maps = Vec::with_capacity(lb.len());
    let mut upper = Vec::new();
    let mut next_col = 0usize;
    for (&l, &u) in lb.iter().zip(ub) {
        let map = if l.is_finite() {
            upper.push(u - l); // may be INFINITY
            let m = VarMap {
                col: next_col,
                offset: l,
                sign: 1.0,
                neg_col: None,
            };
            next_col += 1;
            m
        } else if u.is_finite() {
            // Mirror: x = u - x'
            upper.push(f64::INFINITY);
            let m = VarMap {
                col: next_col,
                offset: u,
                sign: -1.0,
                neg_col: None,
            };
            next_col += 1;
            m
        } else {
            // Free: x = x+ - x-
            upper.push(f64::INFINITY);
            upper.push(f64::INFINITY);
            let m = VarMap {
                col: next_col,
                offset: 0.0,
                sign: 1.0,
                neg_col: Some(next_col + 1),
            };
            next_col += 2;
            m
        };
        var_maps.push(map);
    }
    (var_maps, upper, next_col)
}

/// Internal minimization costs per structural column (sign-adjusted for
/// the model's optimization direction and each column's mapping).
pub(crate) fn internal_costs(model: &Model, var_maps: &[VarMap], ncols: usize) -> Vec<f64> {
    let mut cost = vec![0.0; ncols];
    let obj_sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for &(v, c) in model.objective().terms() {
        let map = var_maps[v.index()];
        cost[map.col] += obj_sign * c * map.sign;
        if let Some(ncol) = map.neg_col {
            cost[ncol] -= obj_sign * c;
        }
    }
    cost
}

struct Tableau {
    /// Dense `rows x cols` matrix `B^-1 A` (row-major).
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Current values of basic variables, one per row.
    beta: Vec<f64>,
    /// Column index basic in each row.
    basic: Vec<usize>,
    status: Vec<ColStatus>,
    /// Internal upper bound (span) per column; lower bound is always 0.
    upper: Vec<f64>,
    /// Phase-2 cost per column (internal minimization).
    cost: Vec<f64>,
    /// Reduced-cost row (for the current phase).
    d: Vec<f64>,
    /// First artificial column, if any.
    art_start: usize,
    var_maps: Vec<VarMap>,
    config: SimplexConfig,
    stats: SolveStats,
}

impl Tableau {
    fn build(model: &Model, config: &SimplexConfig) -> Result<Tableau, BuildVerdict> {
        // --- Presolve + variable mapping (shared with the sparse backend). ---
        let pre = presolve(model, config.tol)?;
        let (var_maps, mut upper, nstruct) = build_var_maps(&pre.lb, &pre.ub);
        let folded = pre.folded;
        let kept_rows: Vec<&crate::model::Constraint> = pre
            .kept
            .iter()
            .map(|&ci| &model.constraints()[ci])
            .collect();
        let m_rows = kept_rows.len();

        // --- Assemble rows (structural part + slack), rhs-normalized. ---
        // Columns: [0, nstruct) structural, [nstruct, nstruct+m) slack
        // (one per row; unused entries stay zero for Eq rows),
        // [art_start, ..) artificials for rows whose slack cannot start
        // basic.
        let nslack = m_rows;
        let pre_art_cols = nstruct + nslack;
        let mut dense: Vec<Vec<f64>> = Vec::with_capacity(m_rows);
        let mut rhs = Vec::with_capacity(m_rows);
        let mut needs_artificial = Vec::with_capacity(m_rows);
        for (r, c) in kept_rows.iter().enumerate() {
            let mut row = vec![0.0; pre_art_cols];
            let mut b = c.rhs;
            for &(v, coeff) in c.expr.terms() {
                let map = var_maps[v.index()];
                b -= coeff * map.offset;
                row[map.col] += coeff * map.sign;
                if let Some(ncol) = map.neg_col {
                    row[ncol] -= coeff;
                }
            }
            // Slack: Le -> +1, Ge -> -1, Eq -> none.
            let slack_coeff = match c.sense {
                ConstraintSense::Le => 1.0,
                ConstraintSense::Ge => -1.0,
                ConstraintSense::Eq => 0.0,
            };
            let mut scoef = slack_coeff;
            if b < 0.0 {
                for x in row.iter_mut() {
                    *x = -*x;
                }
                b = -b;
                scoef = -scoef;
            }
            if scoef != 0.0 {
                row[nstruct + r] = scoef;
            }
            // Slack can start basic only with +1 coefficient.
            needs_artificial.push(scoef <= 0.0);
            dense.push(row);
            rhs.push(b);
        }
        let n_art = needs_artificial.iter().filter(|&&x| x).count();
        let cols = pre_art_cols + n_art;

        // Flatten, adding artificial columns.
        let mut a = vec![0.0; m_rows * cols];
        let mut basic = vec![usize::MAX; m_rows];
        let mut art_next = pre_art_cols;
        for (r, row) in dense.into_iter().enumerate() {
            a[r * cols..r * cols + pre_art_cols].copy_from_slice(&row);
            if needs_artificial[r] {
                a[r * cols + art_next] = 1.0;
                basic[r] = art_next;
                art_next += 1;
            } else {
                basic[r] = nstruct + r;
            }
        }

        // Bounds for slack & artificial columns.
        upper.resize(nstruct, 0.0); // ensure len == nstruct (it already is)
        upper.extend(std::iter::repeat_n(f64::INFINITY, nslack));
        upper.extend(std::iter::repeat_n(f64::INFINITY, n_art));

        // Phase-2 costs (internal minimization).
        let cost = internal_costs(model, &var_maps, cols);

        let mut status = vec![ColStatus::AtLower; cols];
        for &b in &basic {
            status[b] = ColStatus::Basic;
        }

        let stats = SolveStats {
            iterations: 0,
            rows: m_rows,
            cols: pre_art_cols,
            folded_constraints: folded,
            backend_chosen: SolverBackend::Dense,
        };

        Ok(Tableau {
            a,
            rows: m_rows,
            cols,
            beta: rhs,
            basic,
            status,
            upper,
            cost,
            d: vec![0.0; cols],
            art_start: pre_art_cols,
            var_maps,
            config: config.clone(),
            stats,
        })
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    /// Recomputes the reduced-cost row `d = c - c_B^T (B^-1 A)` for the
    /// given per-column cost vector.
    fn recompute_reduced_costs(&mut self, costs: &[f64]) {
        self.d.copy_from_slice(costs);
        for r in 0..self.rows {
            let cb = costs[self.basic[r]];
            if cb != 0.0 {
                let row = &self.a[r * self.cols..(r + 1) * self.cols];
                for (dj, &arj) in self.d.iter_mut().zip(row) {
                    *dj -= cb * arj;
                }
            }
        }
    }

    /// Current value of the phase objective `sum(costs_j * x_j)`.
    fn phase_objective(&self, costs: &[f64]) -> f64 {
        let mut obj = 0.0;
        for r in 0..self.rows {
            obj += costs[self.basic[r]] * self.beta[r];
        }
        for (j, &cost) in costs.iter().enumerate() {
            if self.status[j] == ColStatus::AtUpper {
                obj += cost * self.upper[j];
            }
        }
        obj
    }

    fn iteration_cap(&self) -> u64 {
        self.config
            .max_iters
            .unwrap_or(50_000 + 50 * (self.rows as u64 + self.cols as u64))
    }

    /// Runs simplex iterations until optimal/unbounded/limit for the
    /// current reduced costs. Returns the termination kind.
    fn iterate(&mut self, costs: &[f64], phase1: bool) -> IterEnd {
        let tol = self.config.tol;
        let cap = self.iteration_cap();
        let mut local_iters: u64 = 0;
        let mut bland = false;
        let mut stall: u64 = 0;
        let mut best_obj = f64::INFINITY;
        loop {
            if local_iters >= cap {
                return IterEnd::IterationLimit;
            }
            // --- Pricing ---
            let mut entering: Option<usize> = None;
            let mut best_score = tol;
            for j in 0..self.cols {
                if self.status[j] == ColStatus::Basic || self.upper[j] <= 0.0 {
                    continue;
                }
                if phase1 && j >= self.art_start && self.status[j] != ColStatus::Basic {
                    // Nonbasic artificials never re-enter in phase 1.
                    continue;
                }
                let dj = self.d[j];
                let score = match self.status[j] {
                    ColStatus::AtLower => -dj,
                    ColStatus::AtUpper => dj,
                    ColStatus::Basic => unreachable!(),
                };
                if score > best_score {
                    entering = Some(j);
                    if bland {
                        break; // smallest index wins
                    }
                    best_score = score;
                }
            }
            let Some(jin) = entering else {
                return IterEnd::Optimal;
            };
            let sigma = if self.status[jin] == ColStatus::AtLower {
                1.0
            } else {
                -1.0
            };

            // --- Ratio test ---
            let mut tmax = self.upper[jin]; // bound-flip limit (may be INF)
            let mut leaving: Option<(usize, ColStatus)> = None; // (row, bound it hits)
            let mut leave_pivot = 0.0f64;
            for r in 0..self.rows {
                let arj = self.at(r, jin);
                let change = sigma * arj; // basic value changes by -t*change
                if change > tol {
                    let limit = (self.beta[r].max(0.0)) / change;
                    if limit < tmax - 1e-12
                        || (limit < tmax + 1e-12 && better_leaving(arj, leave_pivot, bland))
                    {
                        tmax = limit.max(0.0);
                        leaving = Some((r, ColStatus::AtLower));
                        leave_pivot = arj;
                    }
                } else if change < -tol {
                    let ub = self.upper[self.basic[r]];
                    if ub.is_finite() {
                        let limit = (ub - self.beta[r]).max(0.0) / (-change);
                        if limit < tmax - 1e-12
                            || (limit < tmax + 1e-12 && better_leaving(arj, leave_pivot, bland))
                        {
                            tmax = limit.max(0.0);
                            leaving = Some((r, ColStatus::AtUpper));
                            leave_pivot = arj;
                        }
                    }
                }
            }
            if tmax.is_infinite() {
                return IterEnd::Unbounded;
            }

            local_iters += 1;
            self.stats.iterations += 1;

            match leaving {
                None => {
                    // Bound flip of the entering variable.
                    let t = self.upper[jin];
                    for r in 0..self.rows {
                        let arj = self.at(r, jin);
                        if arj != 0.0 {
                            self.beta[r] -= sigma * t * arj;
                        }
                    }
                    self.status[jin] = match self.status[jin] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        ColStatus::Basic => unreachable!(),
                    };
                }
                Some((r, hit_bound)) => {
                    let t = tmax;
                    // Update basic values.
                    let entering_value = match self.status[jin] {
                        ColStatus::AtLower => sigma * t,
                        ColStatus::AtUpper => self.upper[jin] + sigma * t,
                        ColStatus::Basic => unreachable!(),
                    };
                    for i in 0..self.rows {
                        if i != r {
                            let aij = self.at(i, jin);
                            if aij != 0.0 {
                                self.beta[i] -= sigma * t * aij;
                            }
                        }
                    }
                    let jout = self.basic[r];
                    self.beta[r] = entering_value;
                    self.status[jout] = hit_bound;
                    self.status[jin] = ColStatus::Basic;
                    self.basic[r] = jin;
                    self.pivot(r, jin);
                }
            }

            // --- Stall detection -> Bland's rule ---
            let obj = self.phase_objective(costs);
            if obj < best_obj - 1e-10 * (1.0 + best_obj.abs()) {
                best_obj = obj;
                stall = 0;
            } else {
                stall += 1;
                if stall > self.config.stall_limit {
                    bland = true;
                }
            }
        }
    }

    /// Gauss-Jordan pivot of tableau + reduced-cost row on `(r, jin)`.
    fn pivot(&mut self, r: usize, jin: usize) {
        let cols = self.cols;
        let p = self.a[r * cols + jin];
        debug_assert!(p.abs() > 1e-12, "pivot on near-zero element");
        let inv = 1.0 / p;
        // Normalize pivot row.
        {
            let row = &mut self.a[r * cols..(r + 1) * cols];
            for x in row.iter_mut() {
                *x *= inv;
            }
            row[jin] = 1.0;
        }
        // Eliminate from other rows.
        let (before, rest) = self.a.split_at_mut(r * cols);
        let (prow, after) = rest.split_at_mut(cols);
        for (chunk_set, row_offset) in [(before, 0usize), (after, r + 1)] {
            let _ = row_offset;
            for row in chunk_set.chunks_exact_mut(cols) {
                let factor = row[jin];
                if factor != 0.0 {
                    for (x, &pv) in row.iter_mut().zip(prow.iter()) {
                        *x -= factor * pv;
                    }
                    row[jin] = 0.0;
                }
            }
        }
        // Reduced-cost row.
        let factor = self.d[jin];
        if factor != 0.0 {
            for (x, &pv) in self.d.iter_mut().zip(prow.iter()) {
                *x -= factor * pv;
            }
            self.d[jin] = 0.0;
        }
    }

    fn run(&mut self, model: &Model) -> SolveOutput {
        let tol = self.config.tol;

        // --- Phase 1 ---
        if self.art_start < self.cols {
            let _phase1 = self.config.obs.span("lp.phase1");
            let mut phase1_cost = vec![0.0; self.cols];
            for c in phase1_cost.iter_mut().skip(self.art_start) {
                *c = 1.0;
            }
            self.recompute_reduced_costs(&phase1_cost);
            match self.iterate(&phase1_cost, true) {
                IterEnd::Optimal => {}
                IterEnd::Unbounded => {
                    // Phase 1 objective is bounded below by zero; reaching
                    // here means numerical trouble.
                    return self.finish(Status::IterationLimit);
                }
                IterEnd::IterationLimit => return self.finish(Status::IterationLimit),
            }
            let infeas = self.phase_objective(&phase1_cost);
            if infeas > tol * (1.0 + self.rows as f64) {
                return self.finish(Status::Infeasible);
            }
            // Clamp artificials to zero so they can never re-activate.
            for j in self.art_start..self.cols {
                self.upper[j] = 0.0;
            }
        }

        // --- Phase 2 ---
        let _phase2 = self.config.obs.span("lp.phase2");
        let phase2_cost = self.cost.clone();
        self.recompute_reduced_costs(&phase2_cost);
        let end = self.iterate(&phase2_cost, false);
        match end {
            IterEnd::Optimal => {
                let values = self.extract(model);
                let objective = model.objective().eval(&values);
                self.finish(Status::Optimal(Solution { objective, values }))
            }
            IterEnd::Unbounded => self.finish(Status::Unbounded),
            IterEnd::IterationLimit => self.finish(Status::IterationLimit),
        }
    }

    /// Reconstructs model-space variable values from the internal state.
    fn extract(&self, model: &Model) -> Vec<f64> {
        let mut internal = vec![0.0; self.cols];
        for (j, x) in internal.iter_mut().enumerate() {
            if self.status[j] == ColStatus::AtUpper && self.upper[j].is_finite() {
                *x = self.upper[j];
            }
        }
        for r in 0..self.rows {
            internal[self.basic[r]] = self.beta[r];
        }
        let mut values = vec![0.0; model.num_vars()];
        for (i, map) in self.var_maps.iter().enumerate() {
            let mut v = map.offset + map.sign * internal[map.col];
            if let Some(ncol) = map.neg_col {
                v -= internal[ncol];
            }
            values[i] = v;
        }
        values
    }

    fn finish(&mut self, status: Status) -> SolveOutput {
        SolveOutput {
            status,
            stats: self.stats.clone(),
        }
    }
}

/// Tie-break for the leaving row: prefer larger pivot magnitude for
/// stability; under Bland's rule any deterministic choice terminates, and
/// keeping the first-seen minimum-ratio row is deterministic.
pub(crate) fn better_leaving(candidate_pivot: f64, current_pivot: f64, bland: bool) -> bool {
    if bland {
        false
    } else {
        candidate_pivot.abs() > current_pivot.abs()
    }
}

pub(crate) enum IterEnd {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn optimal(out: &SolveOutput) -> &Solution {
        match &out.status {
            Status::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max_problem() {
        // maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 3.0), (y, 5.0)]);
        m.add_le("c1", [(x, 1.0)], 4.0);
        m.add_le("c2", [(y, 2.0)], 12.0);
        m.add_le("c3", [(x, 3.0), (y, 2.0)], 18.0);
        let out = solve(&m);
        let s = optimal(&out);
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_rows_uses_phase1() {
        // minimize 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 2.0), (y, 3.0)]);
        m.add_ge("sum", [(x, 1.0), (y, 1.0)], 10.0);
        m.add_ge("minx", [(x, 1.0)], 2.0);
        m.add_ge("miny", [(y, 1.0)], 3.0);
        let out = solve(&m);
        let s = optimal(&out);
        // Cheapest: push x as high as possible => x=7, y=3 => 14+9=23.
        assert!((s.objective - 23.0).abs() < 1e-6, "obj={}", s.objective);
        assert!(s.is_feasible_for(&m, 1e-6));
    }

    #[test]
    fn equality_constraints() {
        // maximize x + y s.t. x + 2y = 4, x - y = 1.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_eq("e1", [(x, 1.0), (y, 2.0)], 4.0);
        m.add_eq("e2", [(x, 1.0), (y, -1.0)], 1.0);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.add_le("hi", [(x, 1.0)], 1.0);
        m.add_ge("lo", [(x, 1.0)], 2.0);
        assert!(matches!(solve(&m).status, Status::Infeasible));
    }

    #[test]
    fn detects_infeasible_via_bounds_presolve() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        m.add_ge("lo", [(x, 1.0)], 2.0); // folded into lb=2 > ub=1
        assert!(matches!(solve(&m).status, Status::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        m.add_ge("lo", [(x, 1.0)], 1.0);
        assert!(matches!(solve(&m).status, Status::Unbounded));
    }

    #[test]
    fn bounded_variables_flip_to_upper() {
        // maximize x + y with only bounds; no constraints at all.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 2.0);
        let y = m.add_var("y", 1.0, 3.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) - 2.0).abs() < 1e-9);
        assert!((s.value(y) - 3.0).abs() < 1e-9);
        assert!((s.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // minimize x s.t. x >= -5 (shifted variable).
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", -5.0, 5.0);
        m.set_objective([(x, 1.0)]);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) + 5.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_split() {
        // minimize |ish|: min x s.t. x >= -7 expressed via free var + row.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        m.add_ge("floor", [(x, 1.0)], -7.0);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) + 7.0).abs() < 1e-6, "x={}", s.value(x));
    }

    #[test]
    fn mirrored_variable() {
        // maximize x with x <= 9 and no lower bound.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", f64::NEG_INFINITY, 9.0);
        m.set_objective([(x, 1.0)]);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP (Beale's example shape).
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_var("x1", 0.0, f64::INFINITY);
        let x2 = m.add_var("x2", 0.0, f64::INFINITY);
        let x3 = m.add_var("x3", 0.0, f64::INFINITY);
        let x4 = m.add_var("x4", 0.0, f64::INFINITY);
        m.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
        m.add_le("r1", [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        m.add_le("r2", [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        m.add_le("r3", [(x3, 1.0)], 1.0);
        let out = solve(&m);
        let s = optimal(&out);
        assert!((s.objective - (-0.05)).abs() < 1e-6, "obj={}", s.objective);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // x - y <= -2 with 0 <= x,y <= 10; maximize x.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        m.set_objective([(x, 1.0)]);
        m.add_le("gap", [(x, 1.0), (y, -1.0)], -2.0);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) - 8.0).abs() < 1e-6);
        assert!(s.is_feasible_for(&m, 1e-6));
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 3.0, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(y, 1.0)]);
        m.add_le("c", [(x, 1.0), (y, 1.0)], 10.0);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) - 3.0).abs() < 1e-9);
        assert!((s.value(y) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn empty_objective_finds_feasible_point() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        m.add_eq("pin", [(x, 2.0)], 6.0);
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_do_not_break_phase1() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        m.add_eq("e1", [(x, 1.0), (y, 1.0)], 4.0);
        m.add_eq("e2", [(x, 2.0), (y, 2.0)], 8.0); // redundant copy
        let s = optimal(&solve(&m)).clone();
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn stats_report_presolve_folding() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_le("only_x", [(x, 1.0)], 5.0); // folds
        m.add_le("both", [(x, 1.0), (y, 1.0)], 8.0); // row
        let out = solve(&m);
        assert_eq!(out.stats.folded_constraints, 1);
        assert_eq!(out.stats.rows, 1);
        assert!((optimal(&out).objective - 8.0).abs() < 1e-6);
    }

    #[test]
    fn nan_model_reports_infeasible_not_panic() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        m.add_le("c", [(x, f64::NAN)], 1.0);
        assert!(matches!(solve(&m).status, Status::Infeasible));
    }
}
