//! Linear expressions over model variables.

use crate::model::VarId;

/// A linear expression `sum(coeff_i * var_i)`.
///
/// Duplicate variable mentions are allowed while building and are merged
/// by [`LinExpr::compact`] (which the model calls before storing).
///
/// # Examples
///
/// ```
/// use aqua_lp::{LinExpr, Model, Sense};
///
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_var("x", 0.0, 1.0);
/// let mut e = LinExpr::new();
/// e.add_term(x, 2.0);
/// e.add_term(x, 3.0);
/// assert_eq!(e.compact().terms(), &[(x, 5.0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// Creates an empty (zero) expression.
    pub fn new() -> LinExpr {
        LinExpr { terms: Vec::new() }
    }

    /// Appends `coeff * var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut LinExpr {
        self.terms.push((var, coeff));
        self
    }

    /// The raw (possibly uncompacted) term list.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Whether the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Merges duplicate variables and drops zero coefficients, returning
    /// a canonical expression sorted by variable id.
    pub fn compact(mut self) -> LinExpr {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for (v, c) in self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        LinExpr { terms: out }
    }

    /// Evaluates the expression at a point given as a dense slice indexed
    /// by variable id.
    ///
    /// # Panics
    ///
    /// Panics if a variable id is out of range for `point`.
    pub fn eval(&self, point: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * point[v.index()]).sum()
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> LinExpr {
        LinExpr {
            terms: iter.into_iter().collect(),
        }
    }
}

impl Extend<(VarId, f64)> for LinExpr {
    fn extend<I: IntoIterator<Item = (VarId, f64)>>(&mut self, iter: I) {
        self.terms.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn compact_merges_and_sorts() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0);
        let e: LinExpr = [(y, 1.0), (x, 2.0), (y, 3.0)].into_iter().collect();
        let c = e.compact();
        assert_eq!(c.terms(), &[(x, 2.0), (y, 4.0)]);
    }

    #[test]
    fn compact_drops_cancelled_terms() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 1.0);
        let e: LinExpr = [(x, 1.0), (x, -1.0)].into_iter().collect();
        assert!(e.compact().is_empty());
    }

    #[test]
    fn eval_at_point() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        let e: LinExpr = [(x, 2.0), (y, -1.0)].into_iter().collect();
        assert_eq!(e.eval(&[3.0, 4.0]), 2.0);
    }
}
