//! Sparse revised simplex: CSC column storage, a product-form eta basis
//! ([`crate::basis`]), and warm-started re-solves for branch-and-bound.
//!
//! The dense tableau of [`crate::simplex`] updates `B^-1 A` in full on
//! every pivot — `O(rows x cols)` per iteration, which is what makes the
//! paper's Enzyme10 LP slow. The revised method keeps only the original
//! columns (sparse) plus a factorization of the current basis, and per
//! iteration does one BTRAN, one pricing sweep over the nonzeros, and
//! one FTRAN — `O(nnz + m + eta file)`.
//!
//! Differences from the dense standardization that make warm starts
//! possible:
//!
//! * rows are **not** sign-normalized (the matrix is then independent of
//!   the variable bounds, so a parent and a bound-tightened child in
//!   branch-and-bound share the exact same column structure);
//! * artificial variables are **virtual**: one per row, never stored,
//!   materialized as `±e_r` on the fly with the sign chosen per solve
//!   from the right-hand side. Column numbering therefore never shifts.
//!
//! Warm starts: [`solve_sparse`] accepts the optimal basis of a previous
//! solve of a bound-tightened variant of the same model. The parent's
//! optimal basis stays *dual* feasible when only bounds change, so a
//! bounded-variable dual simplex restores primal feasibility in a few
//! pivots, followed by a primal phase-2 cleanup. Any incompatibility or
//! numerical trouble falls back to a cold start — never to a wrong
//! answer.

use crate::basis::EtaBasis;
use crate::model::{ConstraintSense, Model};
use crate::simplex::{
    better_leaving, build_var_maps, internal_costs, presolve, BuildVerdict, ColStatus, IterEnd,
    PricingRule, SimplexConfig, SolveOutput, SolveStats, SolverBackend, Status, VarMap,
};
use crate::solution::Solution;

// ---------------------------------------------------------------------
// CSC storage
// ---------------------------------------------------------------------

/// Compressed sparse column matrix.
#[derive(Debug, Clone)]
pub(crate) struct CscMatrix {
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<f64>,
}

impl CscMatrix {
    /// Builds from `(col, row, value)` triplets; rows within a column
    /// keep their triplet order.
    pub(crate) fn from_triplets(cols: usize, triplets: &[(usize, usize, f64)]) -> CscMatrix {
        let mut col_ptr = vec![0usize; cols + 1];
        for &(c, _, _) in triplets {
            col_ptr[c + 1] += 1;
        }
        for c in 0..cols {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut next = col_ptr.clone();
        let mut row_idx = vec![0usize; triplets.len()];
        let mut vals = vec![0.0f64; triplets.len()];
        for &(c, r, v) in triplets {
            let slot = next[c];
            row_idx[slot] = r;
            vals[slot] = v;
            next[c] += 1;
        }
        CscMatrix {
            col_ptr,
            row_idx,
            vals,
        }
    }

    /// Nonzeros of column `j` as `(row, value)` pairs.
    pub(crate) fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.vals[range].iter().copied())
    }

    pub(crate) fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }
}

// ---------------------------------------------------------------------
// Standard form (shared presolve + mapping, bound-independent matrix)
// ---------------------------------------------------------------------

/// The model in internal standard form for the revised simplex.
pub(crate) struct Standardized {
    /// Rows after presolve.
    m: usize,
    /// First artificial column (== structural + slack columns; the CSC
    /// matrix covers exactly `[0, art_start)`).
    art_start: usize,
    /// Total columns including the `m` virtual artificials.
    ncols: usize,
    csc: CscMatrix,
    /// Right-hand side after offset shifting. *Signed* — rows are not
    /// normalized.
    b: Vec<f64>,
    /// Upper bound (span) per real column; lower bounds are all 0.
    upper: Vec<f64>,
    /// Phase-2 internal minimization cost per real column.
    cost: Vec<f64>,
    /// Slack coefficient per row: `+1` for `<=`, `-1` for `>=`, `0` for `=`.
    slack: Vec<f64>,
    var_maps: Vec<VarMap>,
    folded: usize,
}

impl Standardized {
    fn build(model: &Model, tol: f64) -> Result<Standardized, BuildVerdict> {
        let pre = presolve(model, tol)?;
        let (var_maps, mut upper, nstruct) = build_var_maps(&pre.lb, &pre.ub);
        let m = pre.kept.len();
        let art_start = nstruct + m;

        let mut triplets = Vec::new();
        let mut b = Vec::with_capacity(m);
        let mut slack = Vec::with_capacity(m);
        for (r, &ci) in pre.kept.iter().enumerate() {
            let c = &model.constraints()[ci];
            let mut rhs = c.rhs;
            for &(v, coeff) in c.expr.terms() {
                let map = var_maps[v.index()];
                rhs -= coeff * map.offset;
                if coeff * map.sign != 0.0 {
                    triplets.push((map.col, r, coeff * map.sign));
                }
                if let Some(ncol) = map.neg_col {
                    if coeff != 0.0 {
                        triplets.push((ncol, r, -coeff));
                    }
                }
            }
            let scoef = match c.sense {
                ConstraintSense::Le => 1.0,
                ConstraintSense::Ge => -1.0,
                ConstraintSense::Eq => 0.0,
            };
            if scoef != 0.0 {
                triplets.push((nstruct + r, r, scoef));
            }
            slack.push(scoef);
            b.push(rhs);
        }
        // Slack bounds: free upwards for inequalities, pinned for
        // equalities (their empty column must never be priced).
        for &s in &slack {
            upper.push(if s != 0.0 { f64::INFINITY } else { 0.0 });
        }
        let csc = CscMatrix::from_triplets(art_start, &triplets);
        let cost = internal_costs(model, &var_maps, art_start);
        Ok(Standardized {
            m,
            art_start,
            ncols: art_start + m,
            csc,
            b,
            upper,
            cost,
            slack,
            var_maps,
            folded: pre.folded,
        })
    }
}

// ---------------------------------------------------------------------
// Warm starts
// ---------------------------------------------------------------------

/// Opaque optimal-basis snapshot from a sparse solve, reusable to
/// warm-start a solve of a bound-tightened variant of the same model
/// (see [`crate::solve_with_warm`]).
#[derive(Debug, Clone)]
pub struct WarmStart {
    ncols: usize,
    basic: Vec<usize>,
    status: Vec<ColStatus>,
    /// Structural signature: bound tightening that changes a variable's
    /// *mapping* (e.g. free -> bounded) changes column structure, which
    /// this detects.
    var_maps: Vec<VarMap>,
}

enum WarmOutcome {
    Done(SolveOutput),
    Fallback,
}

// ---------------------------------------------------------------------
// The revised simplex
// ---------------------------------------------------------------------

struct Revised<'a> {
    std: Standardized,
    model: &'a Model,
    config: SimplexConfig,
    stats: SolveStats,
    m: usize,
    ncols: usize,
    basic: Vec<usize>,
    status: Vec<ColStatus>,
    /// Per-column spans; artificial entries are toggled between 0 and
    /// +inf around phase 1.
    upper: Vec<f64>,
    /// Sign of each row's virtual artificial column.
    art_sign: Vec<f64>,
    beta: Vec<f64>,
    basis: EtaBasis,
}

/// Entry point used by [`crate::solve_with_warm`] for the sparse
/// backend. The model must already be validated.
pub(crate) fn solve_sparse(
    model: &Model,
    config: &SimplexConfig,
    warm: Option<&WarmStart>,
) -> (SolveOutput, Option<WarmStart>) {
    let std = match Standardized::build(model, config.tol) {
        Ok(s) => s,
        Err(BuildVerdict::Infeasible) => {
            let out = SolveOutput {
                status: Status::Infeasible,
                stats: SolveStats::default(),
            };
            return (out, None);
        }
    };
    let mut solver = Revised::new(std, model, config.clone());
    if let Some(ws) = warm {
        if solver.warm_compatible(ws) {
            if let WarmOutcome::Done(out) = solver.run_warm(ws) {
                let snapshot = solver.snapshot_if_optimal(&out);
                return (out, snapshot);
            }
            // Incompatible numerics: fall through to a cold start.
        }
    }
    let out = solver.run_cold();
    let snapshot = solver.snapshot_if_optimal(&out);
    (out, snapshot)
}

impl<'a> Revised<'a> {
    fn new(std: Standardized, model: &'a Model, config: SimplexConfig) -> Revised<'a> {
        let m = std.m;
        let ncols = std.ncols;
        let art_start = std.art_start;
        let mut upper = std.upper.clone();
        upper.resize(ncols, 0.0); // artificials start unusable
        let stats = SolveStats {
            iterations: 0,
            rows: m,
            cols: art_start,
            folded_constraints: std.folded,
            backend_chosen: SolverBackend::Sparse,
        };
        Revised {
            std,
            model,
            config,
            stats,
            m,
            ncols,
            basic: vec![usize::MAX; m],
            status: vec![ColStatus::AtLower; ncols],
            upper,
            art_sign: vec![1.0; m],
            beta: vec![0.0; m],
            basis: EtaBasis::new(m),
        }
    }

    // --- column access (real columns from CSC, artificials virtual) ---

    fn scatter_col(&self, j: usize, x: &mut [f64]) {
        if j < self.std.art_start {
            for (i, v) in self.std.csc.col(j) {
                x[i] += v;
            }
        } else {
            let r = j - self.std.art_start;
            x[r] += self.art_sign[r];
        }
    }

    fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.std.art_start {
            self.std.csc.col(j).map(|(i, v)| v * y[i]).sum()
        } else {
            let r = j - self.std.art_start;
            self.art_sign[r] * y[r]
        }
    }

    // --- basis maintenance ---

    fn refactor(&mut self) -> Result<(), ()> {
        self.config.obs.add("lp.eta_refactors", 1);
        let std = &self.std;
        let art_sign = &self.art_sign;
        let col = |j: usize, f: &mut dyn FnMut(usize, f64)| {
            if j < std.art_start {
                for (i, v) in std.csc.col(j) {
                    f(i, v);
                }
            } else {
                let r = j - std.art_start;
                f(r, art_sign[r]);
            }
        };
        let nnz = |j: usize| {
            if j < std.art_start {
                std.csc.col_nnz(j)
            } else {
                1
            }
        };
        self.basis
            .refactor(&mut self.basic, col, nnz)
            .map_err(|_| ())?;
        self.recompute_beta();
        Ok(())
    }

    /// Recomputes basic values `beta = B^-1 (b - sum_{j at upper} u_j a_j)`.
    fn recompute_beta(&mut self) {
        let mut rhs = self.std.b.clone();
        for j in 0..self.ncols {
            if self.status[j] == ColStatus::AtUpper
                && self.upper[j].is_finite()
                && self.upper[j] > 0.0
            {
                let u = self.upper[j];
                if j < self.std.art_start {
                    for (i, v) in self.std.csc.col(j) {
                        rhs[i] -= v * u;
                    }
                } else {
                    let r = j - self.std.art_start;
                    rhs[r] -= self.art_sign[r] * u;
                }
            }
        }
        self.basis.ftran(&mut rhs);
        self.beta = rhs;
    }

    fn iteration_cap(&self) -> u64 {
        self.config
            .max_iters
            .unwrap_or(50_000 + 50 * (self.m as u64 + self.std.art_start as u64))
    }

    /// Phase objective `sum(costs_j * x_j)` at the current point.
    fn phase_objective(&self, costs: &[f64]) -> f64 {
        let mut obj = 0.0;
        for r in 0..self.m {
            obj += costs[self.basic[r]] * self.beta[r];
        }
        for (j, &cost) in costs.iter().enumerate() {
            if self.status[j] == ColStatus::AtUpper {
                obj += cost * self.upper[j];
            }
        }
        obj
    }

    // --- primal simplex (mirrors the dense backend's pivoting rules) ---

    fn iterate(&mut self, costs: &[f64], phase1: bool) -> IterEnd {
        match self.config.pricing {
            PricingRule::Dantzig => self.iterate_dantzig(costs, phase1),
            PricingRule::Devex => self.iterate_devex(costs, phase1),
        }
    }

    fn iterate_dantzig(&mut self, costs: &[f64], phase1: bool) -> IterEnd {
        let tol = self.config.tol;
        let cap = self.iteration_cap();
        let mut local_iters: u64 = 0;
        let mut bland = false;
        let mut stall: u64 = 0;
        let mut best_obj = f64::INFINITY;
        let mut y = vec![0.0; self.m];
        let mut w = vec![0.0; self.m];
        loop {
            if local_iters >= cap {
                return IterEnd::IterationLimit;
            }
            // --- Pricing: y = B^-T c_B, then d_j = c_j - y . a_j ---
            y.iter_mut().for_each(|v| *v = 0.0);
            for r in 0..self.m {
                y[r] = costs[self.basic[r]];
            }
            self.basis.btran(&mut y);
            let mut entering: Option<usize> = None;
            let mut best_score = tol;
            for (j, &cj) in costs.iter().enumerate().take(self.ncols) {
                if self.status[j] == ColStatus::Basic || self.upper[j] <= 0.0 {
                    continue;
                }
                if phase1 && j >= self.std.art_start {
                    // Nonbasic artificials never re-enter in phase 1.
                    continue;
                }
                let dj = cj - self.col_dot(j, &y);
                let score = match self.status[j] {
                    ColStatus::AtLower => -dj,
                    ColStatus::AtUpper => dj,
                    ColStatus::Basic => unreachable!(),
                };
                if score > best_score {
                    entering = Some(j);
                    if bland {
                        break; // smallest index wins
                    }
                    best_score = score;
                }
            }
            let Some(jin) = entering else {
                return IterEnd::Optimal;
            };
            let sigma = if self.status[jin] == ColStatus::AtLower {
                1.0
            } else {
                -1.0
            };

            // --- FTRAN the entering column ---
            w.iter_mut().for_each(|v| *v = 0.0);
            self.scatter_col(jin, &mut w);
            self.basis.ftran(&mut w);

            // --- Ratio test (identical rules to the dense backend) ---
            let mut tmax = self.upper[jin]; // bound-flip limit (may be INF)
            let mut leaving: Option<(usize, ColStatus)> = None;
            let mut leave_pivot = 0.0f64;
            for (r, &arj) in w.iter().enumerate() {
                let change = sigma * arj; // basic value changes by -t*change
                if change > tol {
                    let limit = (self.beta[r].max(0.0)) / change;
                    if limit < tmax - 1e-12
                        || (limit < tmax + 1e-12 && better_leaving(arj, leave_pivot, bland))
                    {
                        tmax = limit.max(0.0);
                        leaving = Some((r, ColStatus::AtLower));
                        leave_pivot = arj;
                    }
                } else if change < -tol {
                    let ub = self.upper[self.basic[r]];
                    if ub.is_finite() {
                        let limit = (ub - self.beta[r]).max(0.0) / (-change);
                        if limit < tmax - 1e-12
                            || (limit < tmax + 1e-12 && better_leaving(arj, leave_pivot, bland))
                        {
                            tmax = limit.max(0.0);
                            leaving = Some((r, ColStatus::AtUpper));
                            leave_pivot = arj;
                        }
                    }
                }
            }
            if tmax.is_infinite() {
                return IterEnd::Unbounded;
            }

            local_iters += 1;
            self.stats.iterations += 1;

            match leaving {
                None => {
                    // Bound flip of the entering variable.
                    let t = self.upper[jin];
                    for (b, &wr) in self.beta.iter_mut().zip(&w) {
                        if wr != 0.0 {
                            *b -= sigma * t * wr;
                        }
                    }
                    self.status[jin] = match self.status[jin] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        ColStatus::Basic => unreachable!(),
                    };
                }
                Some((r, hit_bound)) => {
                    let t = tmax;
                    let entering_value = match self.status[jin] {
                        ColStatus::AtLower => sigma * t,
                        ColStatus::AtUpper => self.upper[jin] + sigma * t,
                        ColStatus::Basic => unreachable!(),
                    };
                    for (i, (b, &wi)) in self.beta.iter_mut().zip(&w).enumerate() {
                        if i != r && wi != 0.0 {
                            *b -= sigma * t * wi;
                        }
                    }
                    let jout = self.basic[r];
                    self.beta[r] = entering_value;
                    self.status[jout] = hit_bound;
                    self.status[jin] = ColStatus::Basic;
                    self.basic[r] = jin;
                    self.basis.push(r, &w);
                    if self.basis.updates_since_refactor() >= EtaBasis::REFACTOR_LIMIT
                        && self.refactor().is_err()
                    {
                        return IterEnd::IterationLimit; // numerically singular
                    }
                }
            }

            // --- Stall detection -> Bland's rule ---
            let obj = self.phase_objective(costs);
            if obj < best_obj - 1e-10 * (1.0 + best_obj.abs()) {
                best_obj = obj;
                stall = 0;
            } else {
                stall += 1;
                if stall > self.config.stall_limit {
                    bland = true;
                }
            }
        }
    }

    // --- devex pricing (Forrest-Goldfarb reference weights) ---

    /// Reduced costs `d = c - c_B^T B^-1 A` for every column, computed
    /// from scratch through one BTRAN plus a full column sweep.
    fn compute_reduced_costs(&self, costs: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for r in 0..self.m {
            y[r] = costs[self.basic[r]];
        }
        self.basis.btran(&mut y);
        (0..self.ncols)
            .map(|j| costs[j] - self.col_dot(j, &y))
            .collect()
    }

    /// Improving-direction score of nonbasic column `j` under reduced
    /// costs `d`, or `None` when the column is not eligible to enter.
    fn price_eligible(&self, j: usize, d: &[f64], phase1: bool, tol: f64) -> Option<f64> {
        if self.status[j] == ColStatus::Basic || self.upper[j] <= 0.0 {
            return None;
        }
        if phase1 && j >= self.std.art_start {
            // Nonbasic artificials never re-enter in phase 1.
            return None;
        }
        let score = match self.status[j] {
            ColStatus::AtLower => -d[j],
            ColStatus::AtUpper => d[j],
            ColStatus::Basic => unreachable!(),
        };
        (score > tol).then_some(score)
    }

    /// Picks the entering column. Under Bland's rule: the smallest
    /// eligible index (full scan). Otherwise: the best devex merit
    /// `d_j^2 / w_j` within the candidate list, rebuilding the list by a
    /// cyclic sectional scan when it runs dry — partial pricing stops at
    /// the first section that yields any candidate (or at the list cap),
    /// and `cursor` carries the scan position across rebuilds so every
    /// column is revisited fairly. Fully deterministic.
    fn price_next(
        &self,
        d: &[f64],
        weights: &[f64],
        cands: &mut Vec<usize>,
        cursor: &mut usize,
        phase1: bool,
        bland: bool,
    ) -> Option<usize> {
        let tol = self.config.tol;
        if bland {
            return (0..self.ncols).find(|&j| self.price_eligible(j, d, phase1, tol).is_some());
        }
        let best_of = |list: &[usize]| -> Option<usize> {
            let mut best: Option<(usize, f64)> = None;
            for &j in list {
                if let Some(score) = self.price_eligible(j, d, phase1, tol) {
                    let merit = score * score / weights[j];
                    if best.is_none_or(|(_, bm)| merit > bm) {
                        best = Some((j, merit));
                    }
                }
            }
            best.map(|(j, _)| j)
        };
        if let Some(j) = best_of(cands) {
            return Some(j);
        }
        cands.clear();
        self.config.obs.add("lp.pricing.candidate_rebuilds", 1);
        let n = self.ncols;
        let section = (n / 8).clamp(64, 4096).min(n);
        const CAND_LIMIT: usize = 64;
        let start = *cursor % n;
        let mut k = 0usize;
        while k < n {
            let j = (start + k) % n;
            k += 1;
            if self.price_eligible(j, d, phase1, tol).is_some() {
                cands.push(j);
                if cands.len() >= CAND_LIMIT {
                    break;
                }
            }
            if k.is_multiple_of(section) && !cands.is_empty() {
                break;
            }
        }
        *cursor = (start + k) % n;
        best_of(cands)
    }

    /// Primal simplex with devex pricing: reduced costs are maintained
    /// incrementally (one BTRAN of the pivot row per pivot replaces the
    /// per-iteration BTRAN-plus-full-sweep of Dantzig pricing), devex
    /// reference weights steer the entering choice, and the reference
    /// framework resets on every refactorization. Because maintained
    /// reduced costs drift, optimality and unboundedness are always
    /// re-verified against freshly computed ones before returning.
    fn iterate_devex(&mut self, costs: &[f64], phase1: bool) -> IterEnd {
        let tol = self.config.tol;
        let cap = self.iteration_cap();
        let mut local_iters: u64 = 0;
        let mut bland = false;
        let mut stall: u64 = 0;
        let mut best_obj = f64::INFINITY;
        let mut w = vec![0.0; self.m];
        let mut rho = vec![0.0; self.m];
        let mut d = self.compute_reduced_costs(costs);
        let mut weights = vec![1.0f64; self.ncols];
        let mut cands: Vec<usize> = Vec::new();
        let mut cursor = 0usize;
        loop {
            if local_iters >= cap {
                return IterEnd::IterationLimit;
            }
            // --- Pricing ---
            let picked = self.price_next(&d, &weights, &mut cands, &mut cursor, phase1, bland);
            let Some(jin) = picked else {
                // No candidate under the maintained reduced costs:
                // confirm against fresh ones before declaring optimal.
                let fresh = self.compute_reduced_costs(costs);
                let drifted =
                    (0..self.ncols).any(|j| self.price_eligible(j, &fresh, phase1, tol).is_some());
                d = fresh;
                cands.clear();
                if !drifted {
                    return IterEnd::Optimal;
                }
                self.config.obs.add("lp.pricing.drift_rescans", 1);
                continue;
            };
            let sigma = if self.status[jin] == ColStatus::AtLower {
                1.0
            } else {
                -1.0
            };

            // --- FTRAN the entering column ---
            w.iter_mut().for_each(|v| *v = 0.0);
            self.scatter_col(jin, &mut w);
            self.basis.ftran(&mut w);

            // --- Ratio test (identical rules to the dense backend) ---
            let mut tmax = self.upper[jin];
            let mut leaving: Option<(usize, ColStatus)> = None;
            let mut leave_pivot = 0.0f64;
            for (r, &arj) in w.iter().enumerate() {
                let change = sigma * arj;
                if change > tol {
                    let limit = (self.beta[r].max(0.0)) / change;
                    if limit < tmax - 1e-12
                        || (limit < tmax + 1e-12 && better_leaving(arj, leave_pivot, bland))
                    {
                        tmax = limit.max(0.0);
                        leaving = Some((r, ColStatus::AtLower));
                        leave_pivot = arj;
                    }
                } else if change < -tol {
                    let ub = self.upper[self.basic[r]];
                    if ub.is_finite() {
                        let limit = (ub - self.beta[r]).max(0.0) / (-change);
                        if limit < tmax - 1e-12
                            || (limit < tmax + 1e-12 && better_leaving(arj, leave_pivot, bland))
                        {
                            tmax = limit.max(0.0);
                            leaving = Some((r, ColStatus::AtUpper));
                            leave_pivot = arj;
                        }
                    }
                }
            }
            if tmax.is_infinite() {
                // A drifted reduced cost can make a non-improving column
                // look like an unbounded ray; re-verify before giving up.
                let fresh = self.compute_reduced_costs(costs);
                if self.price_eligible(jin, &fresh, phase1, tol).is_some() {
                    return IterEnd::Unbounded;
                }
                d = fresh;
                cands.clear();
                self.config.obs.add("lp.pricing.drift_rescans", 1);
                continue;
            }

            local_iters += 1;
            self.stats.iterations += 1;

            match leaving {
                None => {
                    // Bound flip: basis, duals, and weights unchanged.
                    let t = self.upper[jin];
                    for (b, &wr) in self.beta.iter_mut().zip(&w) {
                        if wr != 0.0 {
                            *b -= sigma * t * wr;
                        }
                    }
                    self.status[jin] = match self.status[jin] {
                        ColStatus::AtLower => ColStatus::AtUpper,
                        ColStatus::AtUpper => ColStatus::AtLower,
                        ColStatus::Basic => unreachable!(),
                    };
                }
                Some((r, hit_bound)) => {
                    // Row r of B^-1 A *before* the basis changes:
                    // rho = B^-T e_r, alpha_j = rho . a_j. One sweep
                    // updates every reduced cost exactly (d_j -=
                    // theta_d * alpha_j) and every devex weight
                    // (w_j = max(w_j, (alpha_j/alpha_q)^2 w_q)).
                    rho.iter_mut().for_each(|v| *v = 0.0);
                    rho[r] = 1.0;
                    self.basis.btran(&mut rho);
                    let alpha_q = w[r];
                    let theta_d = d[jin] / alpha_q;
                    let wq = weights[jin];
                    for j in 0..self.ncols {
                        if j == jin {
                            continue;
                        }
                        let alpha = self.col_dot(j, &rho);
                        if alpha == 0.0 {
                            continue;
                        }
                        d[j] -= theta_d * alpha;
                        if self.status[j] != ColStatus::Basic {
                            let grow = (alpha / alpha_q) * (alpha / alpha_q) * wq;
                            if grow > weights[j] {
                                weights[j] = grow;
                            }
                        }
                    }
                    d[jin] = 0.0;

                    let t = tmax;
                    let entering_value = match self.status[jin] {
                        ColStatus::AtLower => sigma * t,
                        ColStatus::AtUpper => self.upper[jin] + sigma * t,
                        ColStatus::Basic => unreachable!(),
                    };
                    for (i, (b, &wi)) in self.beta.iter_mut().zip(&w).enumerate() {
                        if i != r && wi != 0.0 {
                            *b -= sigma * t * wi;
                        }
                    }
                    let jout = self.basic[r];
                    self.beta[r] = entering_value;
                    self.status[jout] = hit_bound;
                    self.status[jin] = ColStatus::Basic;
                    self.basic[r] = jin;
                    // The leaving variable joins the nonbasic frame with
                    // the devex weight transferred through the pivot.
                    weights[jout] = (wq / (alpha_q * alpha_q)).max(1.0);
                    self.basis.push(r, &w);
                    if self.basis.updates_since_refactor() >= EtaBasis::REFACTOR_LIMIT {
                        if self.refactor().is_err() {
                            return IterEnd::IterationLimit; // numerically singular
                        }
                        // Reference-framework reset: weights back to 1,
                        // reduced costs recomputed against the fresh
                        // factorization (this is also what keeps the
                        // incremental d numerically honest).
                        d = self.compute_reduced_costs(costs);
                        weights.iter_mut().for_each(|v| *v = 1.0);
                        cands.clear();
                        self.config.obs.add("lp.pricing.devex_resets", 1);
                    }
                }
            }

            // --- Stall detection -> Bland's rule ---
            let obj = self.phase_objective(costs);
            if obj < best_obj - 1e-10 * (1.0 + best_obj.abs()) {
                best_obj = obj;
                stall = 0;
            } else {
                stall += 1;
                if stall > self.config.stall_limit && !bland {
                    bland = true;
                    // Bland's anti-cycling argument needs trustworthy
                    // reduced-cost signs; refresh once at the switch.
                    d = self.compute_reduced_costs(costs);
                    cands.clear();
                    self.config.obs.add("lp.pricing.bland_switches", 1);
                }
            }
        }
    }

    // --- cold start ---

    fn run_cold(&mut self) -> SolveOutput {
        let tol = self.config.tol;
        let art_start = self.std.art_start;

        // Initial basis: the row's slack when it can sit at a feasible
        // value, otherwise the row's (activated) artificial.
        self.status.iter_mut().for_each(|s| *s = ColStatus::AtLower);
        for j in art_start..self.ncols {
            self.upper[j] = 0.0;
        }
        let mut any_artificial = false;
        for r in 0..self.m {
            let s = self.std.slack[r];
            self.art_sign[r] = if self.std.b[r] < 0.0 { -1.0 } else { 1.0 };
            if s != 0.0 && s * self.std.b[r] >= 0.0 {
                self.basic[r] = art_start - self.m + r; // slack column nstruct + r
            } else {
                self.basic[r] = art_start + r;
                self.upper[art_start + r] = f64::INFINITY;
                any_artificial = true;
            }
        }
        for r in 0..self.m {
            self.status[self.basic[r]] = ColStatus::Basic;
        }
        if self.refactor().is_err() {
            // A ± unit basis cannot be singular; defensive only.
            return self.finish(Status::IterationLimit);
        }

        // --- Phase 1 ---
        if any_artificial {
            let _phase1 = self.config.obs.span("lp.phase1");
            let mut phase1_cost = vec![0.0; self.ncols];
            for c in phase1_cost.iter_mut().skip(art_start) {
                *c = 1.0;
            }
            match self.iterate(&phase1_cost, true) {
                IterEnd::Optimal => {}
                IterEnd::Unbounded => {
                    // Bounded below by zero; reaching here means
                    // numerical trouble.
                    return self.finish(Status::IterationLimit);
                }
                IterEnd::IterationLimit => return self.finish(Status::IterationLimit),
            }
            let infeas = self.phase_objective(&phase1_cost);
            if infeas > tol * (1.0 + self.m as f64) {
                return self.finish(Status::Infeasible);
            }
            // Clamp artificials so they can never re-activate.
            for j in art_start..self.ncols {
                self.upper[j] = 0.0;
            }
        }

        self.run_phase2()
    }

    fn run_phase2(&mut self) -> SolveOutput {
        let _phase2 = self.config.obs.span("lp.phase2");
        let mut phase2_cost = self.std.cost.clone();
        phase2_cost.resize(self.ncols, 0.0);
        match self.iterate(&phase2_cost, false) {
            IterEnd::Optimal => {
                let values = self.extract();
                let objective = self.model.objective().eval(&values);
                self.finish(Status::Optimal(Solution { objective, values }))
            }
            IterEnd::Unbounded => self.finish(Status::Unbounded),
            IterEnd::IterationLimit => self.finish(Status::IterationLimit),
        }
    }

    // --- warm start + dual simplex ---

    fn warm_compatible(&self, ws: &WarmStart) -> bool {
        ws.ncols == self.ncols
            && ws.basic.len() == self.m
            && ws.status.len() == self.ncols
            && ws.var_maps == self.std.var_maps
            && ws.basic.iter().all(|&j| j < self.std.art_start)
    }

    fn run_warm(&mut self, ws: &WarmStart) -> WarmOutcome {
        self.basic.copy_from_slice(&ws.basic);
        self.status.copy_from_slice(&ws.status);
        for j in self.std.art_start..self.ncols {
            self.upper[j] = 0.0;
            self.status[j] = ColStatus::AtLower;
        }
        // A bound that was finite in the parent may have tightened; one
        // that was infinite stays infinite (tightening only). Demote any
        // nonbasic-at-upper column whose span is no longer usable.
        for j in 0..self.std.art_start {
            if self.status[j] == ColStatus::AtUpper
                && !(self.upper[j].is_finite() && self.upper[j] > 0.0)
            {
                self.status[j] = ColStatus::AtLower;
            }
        }
        if self.refactor().is_err() {
            return WarmOutcome::Fallback;
        }
        let mut phase2_cost = self.std.cost.clone();
        phase2_cost.resize(self.ncols, 0.0);
        self.config.obs.add("lp.warm_restores", 1);
        match self.dual_restore(&phase2_cost) {
            DualEnd::Feasible => WarmOutcome::Done(self.run_phase2()),
            DualEnd::Infeasible => WarmOutcome::Done(self.finish(Status::Infeasible)),
            DualEnd::GiveUp => WarmOutcome::Fallback,
        }
    }

    /// Bounded-variable dual simplex: drives primal-infeasible basic
    /// variables to their violated bound while keeping reduced costs
    /// dual feasible. Used to re-optimize after bound tightening.
    fn dual_restore(&mut self, costs: &[f64]) -> DualEnd {
        let tol = self.config.tol;
        let cap = 200 + 2 * self.m as u64;
        let mut iters: u64 = 0;
        let mut y = vec![0.0; self.m];
        let mut rho = vec![0.0; self.m];
        let mut w = vec![0.0; self.m];
        loop {
            // --- Leaving: most primal-infeasible basic variable ---
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, below_lower)
            for r in 0..self.m {
                let q = self.basic[r];
                let below = -self.beta[r];
                let above = if self.upper[q].is_finite() {
                    self.beta[r] - self.upper[q]
                } else {
                    f64::NEG_INFINITY
                };
                let (viol, is_low) = if below >= above {
                    (below, true)
                } else {
                    (above, false)
                };
                if viol > tol && leave.as_ref().is_none_or(|&(_, v, _)| viol > v) {
                    leave = Some((r, viol, is_low));
                }
            }
            let Some((r, _, below_lower)) = leave else {
                return DualEnd::Feasible;
            };
            if iters >= cap {
                return DualEnd::GiveUp;
            }

            // Reduced costs (recomputed; dual re-solves take few pivots).
            y.iter_mut().for_each(|v| *v = 0.0);
            for i in 0..self.m {
                y[i] = costs[self.basic[i]];
            }
            self.basis.btran(&mut y);
            // Row r of B^-1 A: rho = B^-T e_r, alpha_j = rho . a_j.
            rho.iter_mut().for_each(|v| *v = 0.0);
            rho[r] = 1.0;
            self.basis.btran(&mut rho);

            // --- Entering: dual ratio test, min |d_j / alpha_j| ---
            let mut enter: Option<(usize, f64, f64)> = None; // (col, ratio, alpha)
            for (j, &cj) in costs.iter().enumerate().take(self.ncols) {
                if self.status[j] == ColStatus::Basic || self.upper[j] <= 0.0 {
                    continue;
                }
                let alpha = self.col_dot(j, &rho);
                let admissible = match (below_lower, self.status[j]) {
                    // x_q must rise to 0: entering from lower needs
                    // alpha < 0, from upper needs alpha > 0.
                    (true, ColStatus::AtLower) => alpha < -tol,
                    (true, ColStatus::AtUpper) => alpha > tol,
                    // x_q must fall to its upper bound: signs reverse.
                    (false, ColStatus::AtLower) => alpha > tol,
                    (false, ColStatus::AtUpper) => alpha < -tol,
                    (_, ColStatus::Basic) => false,
                };
                if !admissible {
                    continue;
                }
                let dj = cj - self.col_dot(j, &y);
                let ratio = (dj / alpha).abs();
                if enter
                    .as_ref()
                    .is_none_or(|&(_, best, _)| ratio < best - 1e-12)
                {
                    enter = Some((j, ratio, alpha));
                }
            }
            let Some((jin, _, _)) = enter else {
                // Dual unbounded: the tightened model is infeasible.
                return DualEnd::Infeasible;
            };

            // --- Pivot ---
            w.iter_mut().for_each(|v| *v = 0.0);
            self.scatter_col(jin, &mut w);
            self.basis.ftran(&mut w);
            if w[r].abs() < 1e-11 {
                return DualEnd::GiveUp; // numerically degenerate pivot
            }
            let q = self.basic[r];
            let target = if below_lower { 0.0 } else { self.upper[q] };
            // w[r] is alpha_r,jin computed through the (fresher) FTRAN.
            let delta = (self.beta[r] - target) / w[r];
            for (i, (b, &wi)) in self.beta.iter_mut().zip(&w).enumerate() {
                if i != r && wi != 0.0 {
                    *b -= delta * wi;
                }
            }
            self.beta[r] = match self.status[jin] {
                ColStatus::AtLower => delta,
                ColStatus::AtUpper => self.upper[jin] + delta,
                ColStatus::Basic => unreachable!(),
            };
            self.status[q] = if below_lower {
                ColStatus::AtLower
            } else {
                ColStatus::AtUpper
            };
            self.status[jin] = ColStatus::Basic;
            self.basic[r] = jin;
            self.basis.push(r, &w);
            iters += 1;
            self.stats.iterations += 1;
            if self.basis.updates_since_refactor() >= EtaBasis::REFACTOR_LIMIT
                && self.refactor().is_err()
            {
                return DualEnd::GiveUp;
            }
        }
    }

    fn snapshot_if_optimal(&self, out: &SolveOutput) -> Option<WarmStart> {
        if !out.status.is_optimal() {
            return None;
        }
        // A basic artificial (possible at value 0 after a degenerate
        // phase 1) would pin the child's basis to this solve's artificial
        // signs; skip the snapshot in that rare case.
        if self.basic.iter().any(|&j| j >= self.std.art_start) {
            return None;
        }
        Some(WarmStart {
            ncols: self.ncols,
            basic: self.basic.clone(),
            status: self.status.clone(),
            var_maps: self.std.var_maps.clone(),
        })
    }

    /// Reconstructs model-space values from the internal state.
    fn extract(&self) -> Vec<f64> {
        let mut internal = vec![0.0; self.ncols];
        for (j, x) in internal.iter_mut().enumerate() {
            if self.status[j] == ColStatus::AtUpper && self.upper[j].is_finite() {
                *x = self.upper[j];
            }
        }
        for r in 0..self.m {
            internal[self.basic[r]] = self.beta[r];
        }
        let mut values = vec![0.0; self.model.num_vars()];
        for (i, map) in self.std.var_maps.iter().enumerate() {
            let mut v = map.offset + map.sign * internal[map.col];
            if let Some(ncol) = map.neg_col {
                v -= internal[ncol];
            }
            values[i] = v;
        }
        values
    }

    fn finish(&mut self, status: Status) -> SolveOutput {
        SolveOutput {
            status,
            stats: self.stats.clone(),
        }
    }
}

enum DualEnd {
    Feasible,
    Infeasible,
    GiveUp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex::{solve_with, solve_with_warm, SolverBackend};

    fn sparse_config() -> SimplexConfig {
        SimplexConfig {
            backend: SolverBackend::Sparse,
            ..SimplexConfig::default()
        }
    }

    fn optimal(out: &SolveOutput) -> &Solution {
        match &out.status {
            Status::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn csc_from_triplets_roundtrip() {
        let trips = [(0, 0, 1.0), (2, 1, 3.0), (0, 1, 2.0), (2, 0, -1.0)];
        let csc = CscMatrix::from_triplets(3, &trips);
        assert_eq!(csc.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(csc.col_nnz(1), 0);
        assert_eq!(csc.col(2).collect::<Vec<_>>(), vec![(1, 3.0), (0, -1.0)]);
    }

    #[test]
    fn sparse_solves_textbook_problem() {
        // Same as the dense textbook test: maximize 3x + 5y.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 3.0), (y, 5.0)]);
        m.add_le("c1", [(x, 1.0)], 4.0);
        m.add_le("c2", [(y, 2.0)], 12.0);
        m.add_le("c3", [(x, 3.0), (y, 2.0)], 18.0);
        let out = solve_with(&m, &sparse_config());
        let s = optimal(&out);
        assert!((s.objective - 36.0).abs() < 1e-6);
    }

    #[test]
    fn warm_start_resolves_after_tightening() {
        // maximize x + y s.t. x + y <= 10, x - y <= 4.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 20.0);
        let y = m.add_var("y", 0.0, 20.0);
        m.set_objective([(x, 2.0), (y, 1.0)]);
        m.add_le("cap", [(x, 1.0), (y, 1.0)], 10.0);
        m.add_le("gap", [(x, 1.0), (y, -1.0)], 4.0);
        let (out, warm) = solve_with_warm(&m, &sparse_config(), None);
        let parent_obj = optimal(&out).objective;
        assert!((parent_obj - 17.0).abs() < 1e-6, "obj={parent_obj}");
        let warm = warm.expect("optimal solve yields a warm start");

        // Child: tighten x <= 5 (as branch-and-bound would).
        let mut child = m.clone();
        child.tighten_bounds(x, f64::NEG_INFINITY, 5.0);
        let (warm_out, _) = solve_with_warm(&child, &sparse_config(), Some(&warm));
        let (cold_out, _) = solve_with_warm(&child, &sparse_config(), None);
        let wobj = optimal(&warm_out).objective;
        let cobj = optimal(&cold_out).objective;
        assert!((wobj - cobj).abs() < 1e-6, "warm {wobj} vs cold {cobj}");
        assert!(optimal(&warm_out).is_feasible_for(&child, 1e-6));
    }

    #[test]
    fn warm_start_detects_child_infeasibility() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0);
        let y = m.add_var("y", 0.0, 10.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_ge("floor", [(x, 1.0), (y, 1.0)], 8.0);
        let (_, warm) = solve_with_warm(&m, &sparse_config(), None);
        let warm = warm.expect("warm start");
        let mut child = m.clone();
        child.tighten_bounds(x, f64::NEG_INFINITY, 2.0);
        child.tighten_bounds(y, f64::NEG_INFINITY, 2.0);
        let (out, _) = solve_with_warm(&child, &sparse_config(), Some(&warm));
        assert!(matches!(out.status, Status::Infeasible), "{:?}", out.status);
    }

    #[test]
    fn incompatible_warm_start_falls_back_to_cold() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0);
        m.set_objective([(x, 1.0)]);
        m.add_le("c", [(x, 2.0)], 6.0);
        let (_, warm) = solve_with_warm(&m, &sparse_config(), None);
        let warm = warm.expect("warm start");

        // A structurally different model: the stale basis must be ignored.
        let mut other = Model::new(Sense::Maximize);
        let a = other.add_var("a", 0.0, 4.0);
        let b = other.add_var("b", 0.0, 4.0);
        other.set_objective([(a, 1.0), (b, 1.0)]);
        other.add_le("c", [(a, 1.0), (b, 1.0)], 5.0);
        let (out, _) = solve_with_warm(&other, &sparse_config(), Some(&warm));
        assert!((optimal(&out).objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn eta_refactorization_survives_long_runs() {
        // A chain LP needing well over REFACTOR_LIMIT pivots end to end.
        let n = 260;
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), 0.0, f64::INFINITY))
            .collect();
        m.set_objective(vars.iter().map(|&v| (v, 1.0)));
        for i in 0..n - 1 {
            m.add_ge(
                format!("link{i}"),
                [(vars[i], 1.0), (vars[i + 1], 1.0)],
                2.0,
            );
        }
        let out = solve_with(&m, &sparse_config());
        let s = optimal(&out);
        assert!(s.is_feasible_for(&m, 1e-6));
    }
}
