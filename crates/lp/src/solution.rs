//! Solution values returned by the solvers.

use crate::model::{Model, VarId};

/// An optimal (or incumbent, for ILP) assignment of variable values.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Objective value in the model's own sense (maximization values are
    /// reported as maximization values).
    pub objective: f64,
    /// Variable values, indexed by [`VarId::index`].
    pub values: Vec<f64>,
}

impl Solution {
    /// The value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the model this solution solves.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Checks this solution against a model: all bounds and constraints
    /// within `tol`.
    pub fn is_feasible_for(&self, model: &Model, tol: f64) -> bool {
        model.is_feasible(&self.values, tol)
    }
}
