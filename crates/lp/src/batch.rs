//! Parallel batch solving on a from-scratch work-stealing thread pool.
//!
//! The volume-management pipeline produces many *independent* LPs — one
//! per assay in a suite, one per partition of a DAG with unknown
//! volumes, one per branch-and-bound subtree. This module fans such
//! batches out across OS threads with plain `std::thread::scope` (no
//! external runtime):
//!
//! * each worker owns a deque of task indices, seeded round-robin;
//! * a worker pops its own deque LIFO (cache-warm) and, when empty,
//!   steals FIFO from the other workers (oldest task first, the classic
//!   work-stealing discipline);
//! * results land in per-task slots, so the output order always matches
//!   the input order regardless of which thread ran what.
//!
//! Determinism: every task computes a pure function of its input model,
//! so scheduling order affects wall time only, never results.
//!
//! # Examples
//!
//! ```
//! use aqua_lp::{batch, Model, Sense};
//!
//! let models: Vec<Model> = (1..=4)
//!     .map(|k| {
//!         let mut m = Model::new(Sense::Maximize);
//!         let x = m.add_var("x", 0.0, k as f64);
//!         m.set_objective([(x, 1.0)]);
//!         m
//!     })
//!     .collect();
//! let outs = batch::solve_all(&models);
//! let objs: Vec<f64> = outs
//!     .iter()
//!     .map(|o| o.status.solution().unwrap().objective)
//!     .collect();
//! assert_eq!(objs, vec![1.0, 2.0, 3.0, 4.0]);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::ilp::{solve_ilp, IlpConfig, IlpOutcome};
use crate::model::Model;
use crate::simplex::{solve_with, SimplexConfig, SolveOutput};

/// Runs `f(0..n)` across the available cores and returns the results in
/// index order. The building block under [`solve_all`]; exposed so
/// other crates can parallelize their own independent per-item work
/// (e.g. per-partition volume normalization) on the same pool
/// discipline.
pub fn run_parallel<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    // Per-worker deques, seeded round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((0..n).filter(|i| i % threads == w).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own deque first (LIFO), then steal (FIFO) round-robin
                // starting from the next worker.
                let task = queues[w].lock().unwrap().pop_back().or_else(|| {
                    (1..threads)
                        .map(|k| (w + k) % threads)
                        .find_map(|v| queues[v].lock().unwrap().pop_front())
                });
                match task {
                    Some(i) => {
                        let out = f(i);
                        *slots[i].lock().unwrap() = Some(out);
                    }
                    // No new tasks are ever produced, so globally-empty
                    // deques mean this worker is done.
                    None => break,
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("no worker panicked")
                .expect("every task index was queued exactly once")
        })
        .collect()
}

/// Solves every model with the default configuration, in parallel.
/// Results are in input order, identical to a sequential
/// [`crate::solve`] per model.
pub fn solve_all(models: &[Model]) -> Vec<SolveOutput> {
    solve_all_with(models, &SimplexConfig::default())
}

/// Solves every model with an explicit configuration, in parallel.
pub fn solve_all_with(models: &[Model], config: &SimplexConfig) -> Vec<SolveOutput> {
    run_parallel(models.len(), |i| solve_with(&models[i], config))
}

/// Solves every model as an ILP, in parallel. Each branch-and-bound
/// search runs sequentially within its task (warm starts flow parent to
/// child inside one search, which is inherently serial); parallelism is
/// across models.
pub fn solve_ilp_all(models: &[Model], config: &IlpConfig) -> Vec<IlpOutcome> {
    run_parallel(models.len(), |i| solve_ilp(&models[i], config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex::Status;

    #[test]
    fn empty_batch() {
        assert!(solve_all(&[]).is_empty());
    }

    #[test]
    fn results_keep_input_order() {
        // Many models with distinct optima; order must be preserved even
        // when tasks outnumber threads.
        let models: Vec<Model> = (0..64)
            .map(|k| {
                let mut m = Model::new(Sense::Maximize);
                let x = m.add_var("x", 0.0, f64::INFINITY);
                let y = m.add_var("y", 0.0, 1.0);
                m.set_objective([(x, 1.0)]);
                m.add_le("cap", [(x, 2.0), (y, 1.0)], k as f64);
                m
            })
            .collect();
        let outs = solve_all(&models);
        assert_eq!(outs.len(), 64);
        for (k, out) in outs.iter().enumerate() {
            let s = out.status.solution().unwrap();
            assert!(
                (s.objective - k as f64 / 2.0).abs() < 1e-6,
                "model {k}: {}",
                s.objective
            );
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let models: Vec<Model> = (0..8)
            .map(|k| {
                let mut m = Model::new(Sense::Minimize);
                let x = m.add_var("x", 0.0, 10.0);
                let y = m.add_var("y", 0.0, 10.0);
                m.set_objective([(x, 1.0), (y, 2.0)]);
                m.add_ge("floor", [(x, 1.0), (y, 1.0)], 3.0 + k as f64 / 2.0);
                m
            })
            .collect();
        let par = solve_all(&models);
        for (m, out) in models.iter().zip(&par) {
            let seq = crate::simplex::solve_with(m, &SimplexConfig::default());
            let (a, b) = match (&out.status, &seq.status) {
                (Status::Optimal(a), Status::Optimal(b)) => (a, b),
                other => panic!("status mismatch: {other:?}"),
            };
            assert!((a.objective - b.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn run_parallel_arbitrary_work() {
        let squares = run_parallel(100, |i| i * i);
        assert_eq!(squares.len(), 100);
        assert_eq!(squares[7], 49);
        assert_eq!(squares[99], 9801);
    }

    #[test]
    fn ilp_batch() {
        let models: Vec<Model> = (0..4)
            .map(|k| {
                let mut m = Model::new(Sense::Maximize);
                let x = m.add_int_var("x", 0.0, f64::INFINITY);
                m.set_objective([(x, 1.0)]);
                m.add_le("c", [(x, 2.0)], 5.0 + k as f64);
                m
            })
            .collect();
        let outs = solve_ilp_all(&models, &IlpConfig::default());
        let expect = [2.0, 3.0, 3.0, 4.0]; // floor((5+k)/2)
        for (k, out) in outs.iter().enumerate() {
            match &out.status {
                crate::ilp::IlpStatus::Optimal(s) => {
                    assert!((s.objective - expect[k]).abs() < 1e-6)
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
