//! Parallel batch solving on a from-scratch work-stealing thread pool.
//!
//! The volume-management pipeline produces many *independent* LPs — one
//! per assay in a suite, one per partition of a DAG with unknown
//! volumes, one per branch-and-bound subtree. This module fans such
//! batches out across OS threads with plain `std::thread::scope` (no
//! external runtime):
//!
//! * each worker owns a deque of task indices, seeded round-robin;
//! * a worker pops its own deque LIFO (cache-warm) and, when empty,
//!   steals FIFO from the other workers (oldest task first, the classic
//!   work-stealing discipline);
//! * results land in per-task slots, so the output order always matches
//!   the input order regardless of which thread ran what.
//!
//! Determinism: every task computes a pure function of its input model,
//! so scheduling order affects wall time only, never results.
//!
//! # Examples
//!
//! ```
//! use aqua_lp::{batch, Model, Sense};
//!
//! let models: Vec<Model> = (1..=4)
//!     .map(|k| {
//!         let mut m = Model::new(Sense::Maximize);
//!         let x = m.add_var("x", 0.0, k as f64);
//!         m.set_objective([(x, 1.0)]);
//!         m
//!     })
//!     .collect();
//! let outs = batch::solve_all(&models);
//! let objs: Vec<f64> = outs
//!     .iter()
//!     .map(|o| o.status.solution().unwrap().objective)
//!     .collect();
//! assert_eq!(objs, vec![1.0, 2.0, 3.0, 4.0]);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::ilp::{solve_ilp, IlpConfig, IlpOutcome};
use crate::model::Model;
use crate::simplex::{solve_with, SimplexConfig, SolveOutput};

/// Runs `f(0..n)` across the available cores and returns the results in
/// index order. The building block under [`solve_all`]; exposed so
/// other crates can parallelize their own independent per-item work
/// (e.g. per-partition volume normalization) on the same pool
/// discipline.
pub fn run_parallel<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    run_parallel_threads(n, threads, f)
}

/// [`run_parallel`] with an explicit worker-thread count (clamped to
/// `[1, n]`). Results are in input order and identical for every
/// `threads` value — the determinism tests pin exactly this: the pool
/// writes each result into its own per-index slot, so scheduling can
/// only change wall time, never placement.
pub fn run_parallel_threads<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_parallel_threads_counted(n, threads, f).0
}

/// Scheduling statistics from one pool run. Observability only: steal
/// counts depend on OS scheduling and vary run to run, but the results
/// they accompany never do.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Worker threads actually spawned (after clamping to `[1, n]`).
    pub workers: usize,
    /// Tasks a worker took from another worker's deque rather than its
    /// own. Zero on the sequential (`threads <= 1`) path.
    pub steals: u64,
}

/// [`run_parallel_threads`] that also reports pool scheduling
/// statistics. The parallel branch-and-bound rounds in
/// [`solve_ilp`] use this to expose
/// `ilp.par.steals` without perturbing results.
pub fn run_parallel_threads_counted<T, F>(n: usize, threads: usize, f: F) -> (Vec<T>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return (Vec::new(), PoolStats::default());
    }
    let threads = threads.clamp(1, n);
    if threads <= 1 {
        let out = (0..n).map(f).collect();
        return (
            out,
            PoolStats {
                workers: 1,
                steals: 0,
            },
        );
    }

    // Per-worker deques, seeded round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((0..n).filter(|i| i % threads == w).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            let steals = &steals;
            scope.spawn(move || loop {
                // Own deque first (LIFO), then steal (FIFO) round-robin
                // starting from the next worker.
                let task = lock(&queues[w]).pop_back().or_else(|| {
                    (1..threads)
                        .map(|k| (w + k) % threads)
                        .find_map(|v| lock(&queues[v]).pop_front())
                        .inspect(|_| {
                            steals.fetch_add(1, Ordering::Relaxed);
                        })
                });
                match task {
                    Some(i) => {
                        let out = f(i);
                        *lock(&slots[i]) = Some(out);
                    }
                    // No new tasks are ever produced, so globally-empty
                    // deques mean this worker is done.
                    None => break,
                }
            });
        }
    });

    let out = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every task index was queued exactly once")
        })
        .collect();
    (
        out,
        PoolStats {
            workers: threads,
            steals: steals.into_inner(),
        },
    )
}

/// Poison-proof lock: a panicking worker must not turn every later
/// `lock()` into a second panic — the scope already propagates the
/// original one, and the queued indices/results remain valid data.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Solves every model with the default configuration, in parallel.
/// Results are in input order, identical to a sequential
/// [`crate::solve`] per model.
pub fn solve_all(models: &[Model]) -> Vec<SolveOutput> {
    solve_all_with(models, &SimplexConfig::default())
}

/// Solves every model with an explicit configuration, in parallel.
pub fn solve_all_with(models: &[Model], config: &SimplexConfig) -> Vec<SolveOutput> {
    run_parallel(models.len(), |i| solve_with(&models[i], config))
}

/// Solves every model as an ILP, in parallel. Each branch-and-bound
/// search runs sequentially within its task (warm starts flow parent to
/// child inside one search, which is inherently serial); parallelism is
/// across models.
pub fn solve_ilp_all(models: &[Model], config: &IlpConfig) -> Vec<IlpOutcome> {
    run_parallel(models.len(), |i| solve_ilp(&models[i], config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;
    use crate::simplex::Status;

    #[test]
    fn empty_batch() {
        assert!(solve_all(&[]).is_empty());
    }

    #[test]
    fn results_keep_input_order() {
        // Many models with distinct optima; order must be preserved even
        // when tasks outnumber threads.
        let models: Vec<Model> = (0..64)
            .map(|k| {
                let mut m = Model::new(Sense::Maximize);
                let x = m.add_var("x", 0.0, f64::INFINITY);
                let y = m.add_var("y", 0.0, 1.0);
                m.set_objective([(x, 1.0)]);
                m.add_le("cap", [(x, 2.0), (y, 1.0)], k as f64);
                m
            })
            .collect();
        let outs = solve_all(&models);
        assert_eq!(outs.len(), 64);
        for (k, out) in outs.iter().enumerate() {
            let s = out.status.solution().unwrap();
            assert!(
                (s.objective - k as f64 / 2.0).abs() < 1e-6,
                "model {k}: {}",
                s.objective
            );
        }
    }

    #[test]
    fn batch_matches_sequential() {
        let models: Vec<Model> = (0..8)
            .map(|k| {
                let mut m = Model::new(Sense::Minimize);
                let x = m.add_var("x", 0.0, 10.0);
                let y = m.add_var("y", 0.0, 10.0);
                m.set_objective([(x, 1.0), (y, 2.0)]);
                m.add_ge("floor", [(x, 1.0), (y, 1.0)], 3.0 + k as f64 / 2.0);
                m
            })
            .collect();
        let par = solve_all(&models);
        for (m, out) in models.iter().zip(&par) {
            let seq = crate::simplex::solve_with(m, &SimplexConfig::default());
            let (a, b) = match (&out.status, &seq.status) {
                (Status::Optimal(a), Status::Optimal(b)) => (a, b),
                other => panic!("status mismatch: {other:?}"),
            };
            assert!((a.objective - b.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn run_parallel_arbitrary_work() {
        let squares = run_parallel(100, |i| i * i);
        assert_eq!(squares.len(), 100);
        assert_eq!(squares[7], 49);
        assert_eq!(squares[99], 9801);
    }

    /// Determinism across thread counts: the same batch solved with 1,
    /// 2, and 8 workers must return bit-identical solutions in input
    /// order. Guards the per-index result slots against any future
    /// "optimization" that would let work stealing permute results.
    #[test]
    fn batch_is_bit_identical_across_thread_counts() {
        let models: Vec<Model> = (0..24)
            .map(|k| {
                let mut m = Model::new(Sense::Maximize);
                let x = m.add_var("x", 0.0, f64::INFINITY);
                let y = m.add_var("y", 0.0, 4.0 + (k % 3) as f64);
                m.set_objective([(x, 3.0), (y, 1.0)]);
                m.add_le("cap", [(x, 2.0), (y, 1.0)], 7.0 + k as f64);
                m.add_ge("floor", [(x, 1.0), (y, 1.0)], 1.0 + (k % 5) as f64 / 2.0);
                m
            })
            .collect();
        let config = SimplexConfig::default();
        let runs: Vec<Vec<SolveOutput>> = [1usize, 2, 8]
            .iter()
            .map(|&t| run_parallel_threads(models.len(), t, |i| solve_with(&models[i], &config)))
            .collect();
        for run in &runs[1..] {
            assert_eq!(run.len(), runs[0].len());
            for (a, b) in runs[0].iter().zip(run) {
                let (sa, sb) = match (&a.status, &b.status) {
                    (Status::Optimal(sa), Status::Optimal(sb)) => (sa, sb),
                    other => panic!("status mismatch across thread counts: {other:?}"),
                };
                // Bit-identical, not approximately equal: the solver is
                // a pure function of its input, so the fan-out must not
                // perturb a single ULP.
                assert_eq!(sa.objective.to_bits(), sb.objective.to_bits());
                assert_eq!(sa.values.len(), sb.values.len());
                for (va, vb) in sa.values.iter().zip(&sb.values) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
                assert_eq!(a.stats.iterations, b.stats.iterations);
            }
        }
    }

    #[test]
    fn ilp_batch() {
        let models: Vec<Model> = (0..4)
            .map(|k| {
                let mut m = Model::new(Sense::Maximize);
                let x = m.add_int_var("x", 0.0, f64::INFINITY);
                m.set_objective([(x, 1.0)]);
                m.add_le("c", [(x, 2.0)], 5.0 + k as f64);
                m
            })
            .collect();
        let outs = solve_ilp_all(&models, &IlpConfig::default());
        let expect = [2.0, 3.0, 3.0, 4.0]; // floor((5+k)/2)
        for (k, out) in outs.iter().enumerate() {
            match &out.status {
                crate::ilp::IlpStatus::Optimal(s) => {
                    assert!((s.objective - expect[k]).abs() < 1e-6)
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
