//! Branch-and-bound integer programming over the simplex relaxation.
//!
//! The paper used LP_Solve 5.5's MILP mode to attack IVol directly and
//! found that it "ran for hours without generating a solution" on the
//! enzyme assay. To make that observation reproducible (rather than
//! literally re-running for hours), this solver takes explicit node and
//! wall-clock budgets and reports a [`IlpStatus::BudgetExhausted`]
//! outcome carrying the best incumbent found so far, if any.
//!
//! The search is deterministic: nodes are expanded best-first with ties
//! broken by creation order, and branching picks the most fractional
//! variable with ties broken by smallest variable index. On the sparse
//! simplex backend, each child's relaxation is warm-started from its
//! parent's optimal basis (see [`crate::solve_with_warm`]).
//!
//! # Deterministic parallel search
//!
//! With [`IlpConfig::threads`] > 1 the search runs in batch-synchronous
//! rounds: each round selects the best [`IlpConfig::sync_width`] open
//! nodes by `(bound, seq)`, solves their relaxations concurrently on
//! the [`crate::batch`] work-stealing pool, then processes the results
//! *sequentially in selection order* — re-checking each against the
//! incumbent as it stood when its turn comes (incumbent
//! reconciliation). Node selection, branching, and incumbent updates
//! therefore depend only on `sync_width`, never on `threads` or on OS
//! scheduling: the same model solved with 1, 2, or 8 threads at a fixed
//! width returns bit-identical incumbents, node counts, and iteration
//! counts. `sync_width == 1` degenerates to the classic sequential
//! best-first loop (and is the default, so single-threaded behavior is
//! unchanged). Warm starts still flow parent to child: each selected
//! node carries its parent's optimal basis into its relaxation solve.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::batch::run_parallel_threads_counted;
use crate::model::{Model, Sense};
use crate::simplex::{solve_with_warm, SimplexConfig, Status};
use crate::solution::Solution;
use crate::sparse::WarmStart;

/// Budgets and tolerances for [`solve_ilp`].
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Maximum branch-and-bound nodes to expand.
    pub max_nodes: u64,
    /// Wall-clock budget, checked at round boundaries.
    pub time_budget: Duration,
    /// A value within this distance of an integer counts as integral.
    pub int_tol: f64,
    /// Configuration for the relaxation solves.
    pub simplex: SimplexConfig,
    /// Worker threads for the relaxation solves within one round
    /// (clamped to at least 1). Results are identical for every value;
    /// only wall time changes.
    pub threads: usize,
    /// Open nodes expanded per synchronization round (clamped to at
    /// least 1). This — not `threads` — determines the search tree:
    /// widths above 1 solve speculative nodes that a width-1 search
    /// might have pruned first, so node counts are comparable only at
    /// equal widths. Keep it thread-count independent (it is not
    /// derived from `threads`) so determinism across thread counts
    /// holds by construction.
    pub sync_width: usize,
}

impl Default for IlpConfig {
    fn default() -> IlpConfig {
        IlpConfig {
            max_nodes: 100_000,
            time_budget: Duration::from_secs(60),
            int_tol: 1e-6,
            simplex: SimplexConfig::default(),
            threads: 1,
            sync_width: 1,
        }
    }
}

/// Statistics from a branch-and-bound run.
#[derive(Debug, Clone, Default)]
pub struct IlpStats {
    /// Nodes whose relaxation was solved.
    pub nodes: u64,
    /// Total simplex iterations across all nodes.
    pub simplex_iterations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Synchronization rounds (equals `nodes` when `sync_width` is 1).
    pub rounds: u64,
    /// Work-stealing pool steals across all rounds. Scheduling noise —
    /// varies run to run, unlike every other field.
    pub steals: u64,
}

/// Terminal status of an ILP solve.
#[derive(Debug, Clone)]
pub enum IlpStatus {
    /// Proven-optimal integer solution.
    Optimal(Solution),
    /// The relaxation (and hence the ILP) is infeasible.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// A budget ran out; `incumbent` is the best integer solution found
    /// (possibly none).
    BudgetExhausted {
        /// Best integer-feasible solution discovered before the budget
        /// ran out, if any.
        incumbent: Option<Solution>,
    },
}

/// Status plus statistics from [`solve_ilp`].
#[derive(Debug, Clone)]
pub struct IlpOutcome {
    /// Terminal status.
    pub status: IlpStatus,
    /// Search statistics.
    pub stats: IlpStats,
}

/// Solves the model as an ILP: variables added with
/// [`Model::add_int_var`] (or marked via [`Model::set_integer`]) must
/// take integer values.
///
/// # Examples
///
/// ```
/// use aqua_lp::{solve_ilp, IlpConfig, IlpStatus, Model, Sense};
///
/// // maximize x + y s.t. 2x + y <= 4, x + 2y <= 5 (integers)
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_int_var("x", 0.0, f64::INFINITY);
/// let y = m.add_int_var("y", 0.0, f64::INFINITY);
/// m.set_objective([(x, 1.0), (y, 1.0)]);
/// m.add_le("c1", [(x, 2.0), (y, 1.0)], 4.0);
/// m.add_le("c2", [(x, 1.0), (y, 2.0)], 5.0);
/// let out = solve_ilp(&m, &IlpConfig::default());
/// match out.status {
///     IlpStatus::Optimal(s) => assert!((s.objective - 3.0).abs() < 1e-6),
///     other => panic!("unexpected: {other:?}"),
/// }
/// ```
pub fn solve_ilp(model: &Model, config: &IlpConfig) -> IlpOutcome {
    let _span = config.simplex.obs.span("ilp.solve");
    let start = Instant::now();
    let mut stats = IlpStats::default();
    let int_vars = model.integer_vars();
    let threads = config.threads.max(1);
    let width = config.sync_width.max(1);

    // Each open node is a set of tightened bounds plus the parent's
    // relaxation bound (best-first ordering), a creation sequence number
    // (deterministic tie-breaking), and the parent's optimal basis
    // (warm-starting the child's relaxation on the sparse backend).
    struct Node {
        bounds: Vec<(usize, f64, f64)>, // (var index, lb, ub)
        bound: f64,                     // relaxation objective (internal min)
        seq: u64,                       // creation order, unique
        warm: Option<Arc<WarmStart>>,
    }
    // Internally minimize: for Maximize, compare negated objectives.
    let to_internal = |obj: f64| match model.sense() {
        Sense::Minimize => obj,
        Sense::Maximize => -obj,
    };

    let mut open: Vec<Node> = vec![Node {
        bounds: Vec::new(),
        bound: f64::NEG_INFINITY,
        seq: 0,
        warm: None,
    }];
    let mut next_seq: u64 = 1;
    let mut incumbent: Option<Solution> = None;
    let mut incumbent_internal = f64::INFINITY;
    let mut saw_budget_stop = false;

    // Best-first: expand the open node with the lowest relaxation bound;
    // equal bounds break by creation order, making the search order (and
    // hence any tie among equally-good incumbents) deterministic
    // regardless of how `open` is stored.
    let best_node = |open: &[Node]| -> Option<usize> {
        open.iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.bound.total_cmp(&b.bound).then(a.seq.cmp(&b.seq)))
            .map(|(i, _)| i)
    };

    // Batch-synchronous rounds. Width 1 replays the classic sequential
    // best-first loop move for move; wider rounds solve the top-`width`
    // open nodes concurrently and reconcile sequentially.
    while !open.is_empty() {
        if stats.nodes >= config.max_nodes || start.elapsed() >= config.time_budget {
            saw_budget_stop = true;
            break;
        }
        // Select the round's nodes: repeatedly pull the best open node,
        // discarding any the current incumbent already dominates (they
        // can never revive — the incumbent only improves). Clamped so a
        // round can never blow through the node budget.
        let take = width.min((config.max_nodes - stats.nodes) as usize);
        let mut selected: Vec<Node> = Vec::with_capacity(take);
        while selected.len() < take {
            let Some(pos) = best_node(&open) else { break };
            let node = open.swap_remove(pos);
            if node.bound >= incumbent_internal - 1e-9 {
                continue; // pruned by bound
            }
            selected.push(node);
        }
        if selected.is_empty() {
            break;
        }
        stats.rounds += 1;

        // Solve every selected relaxation on the work-stealing pool.
        // Each solve is a pure function of (model, node bounds, warm
        // start), so thread count and steal order cannot perturb the
        // per-slot results.
        let (results, pool) = run_parallel_threads_counted(selected.len(), threads, |i| {
            let node = &selected[i];
            let mut sub = model.clone();
            for &(vi, lb, ub) in &node.bounds {
                sub.tighten_bounds(crate::model::VarId(vi), lb, ub);
            }
            solve_with_warm(&sub, &config.simplex, node.warm.as_deref())
        });
        stats.steals += pool.steals;

        // Reconcile sequentially in selection order: each result sees
        // the incumbent exactly as a width-1 search over this same
        // selection would have, so acceptance decisions are
        // deterministic no matter which thread solved what.
        for (node, (out, warm_out)) in selected.into_iter().zip(results) {
            stats.nodes += 1;
            stats.simplex_iterations += out.stats.iterations;
            let sol = match out.status {
                Status::Optimal(s) => s,
                Status::Infeasible => continue,
                Status::Unbounded => {
                    // Root unbounded => ILP unbounded (or ill-posed);
                    // child unbounded cannot happen if root was bounded.
                    if stats.nodes == 1 {
                        stats.elapsed = start.elapsed();
                        return IlpOutcome {
                            status: IlpStatus::Unbounded,
                            stats,
                        };
                    }
                    continue;
                }
                Status::IterationLimit => continue,
            };
            let internal_obj = to_internal(sol.objective);
            if internal_obj >= incumbent_internal - 1e-9 {
                continue; // cannot beat the (possibly this-round) incumbent
            }
            // Branch on the most fractional integer variable; the strict
            // `>` keeps the smallest variable index on exact
            // fractionality ties.
            let mut branch: Option<(usize, f64)> = None;
            let mut best_frac = config.int_tol;
            for v in &int_vars {
                let val = sol.values[v.index()];
                let frac = (val - val.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch = Some((v.index(), val));
                }
            }
            match branch {
                None => {
                    // Integer feasible: new incumbent.
                    incumbent_internal = internal_obj;
                    incumbent = Some(sol);
                }
                Some((vi, val)) => {
                    // Children inherit this node's optimal basis:
                    // tightening a bound keeps it dual feasible, so the
                    // child re-solve is a short dual-simplex run instead
                    // of a cold start.
                    let warm = warm_out.map(Arc::new);
                    open.push(Node {
                        bounds: with_bound(&node.bounds, vi, f64::NEG_INFINITY, val.floor()),
                        bound: internal_obj,
                        seq: next_seq,
                        warm: warm.clone(),
                    });
                    open.push(Node {
                        bounds: with_bound(&node.bounds, vi, val.ceil(), f64::INFINITY),
                        bound: internal_obj,
                        seq: next_seq + 1,
                        warm,
                    });
                    next_seq += 2;
                }
            }
        }
    }

    stats.elapsed = start.elapsed();
    config.simplex.obs.add("ilp.nodes", stats.nodes);
    config.simplex.obs.add("ilp.par.workers", threads as u64);
    config.simplex.obs.add("ilp.par.sync", stats.rounds);
    config.simplex.obs.add("ilp.par.steals", stats.steals);
    let status = if saw_budget_stop {
        IlpStatus::BudgetExhausted { incumbent }
    } else if let Some(s) = incumbent {
        IlpStatus::Optimal(s)
    } else {
        IlpStatus::Infeasible
    };
    IlpOutcome { status, stats }
}

fn with_bound(bounds: &[(usize, f64, f64)], vi: usize, lb: f64, ub: f64) -> Vec<(usize, f64, f64)> {
    let mut out = bounds.to_vec();
    out.push((vi, lb, ub));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack_like_ilp() {
        // maximize 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binary.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_int_var("a", 0.0, 1.0);
        let b = m.add_int_var("b", 0.0, 1.0);
        let c = m.add_int_var("c", 0.0, 1.0);
        let d = m.add_int_var("d", 0.0, 1.0);
        m.set_objective([(a, 8.0), (b, 11.0), (c, 6.0), (d, 4.0)]);
        m.add_le("w", [(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], 14.0);
        let out = solve_ilp(&m, &IlpConfig::default());
        match out.status {
            IlpStatus::Optimal(s) => {
                assert!((s.objective - 21.0).abs() < 1e-6, "obj={}", s.objective);
                // b + c + d (weight 14, value 21) beats a + b (19).
                assert!(s.value(b) > 0.5 && s.value(c) > 0.5 && s.value(d) > 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn relaxation_differs_from_ilp() {
        // LP relaxation gives fractional x; ILP must round down.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        m.add_le("c", [(x, 2.0)], 7.0); // x <= 3.5
        let out = solve_ilp(&m, &IlpConfig::default());
        match out.status {
            IlpStatus::Optimal(s) => assert!((s.value(x) - 3.0).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_ilp() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, 1.0);
        m.add_ge("lo", [(x, 1.0)], 2.0);
        let out = solve_ilp(&m, &IlpConfig::default());
        assert!(matches!(out.status, IlpStatus::Infeasible));
    }

    #[test]
    fn budget_exhaustion_reports_incumbent() {
        // A model easy enough to find *an* incumbent at the root's first
        // dives, but with a node budget of 1 we stop immediately after.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, 10.0);
        let y = m.add_int_var("y", 0.0, 10.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_le("c", [(x, 3.0), (y, 5.0)], 22.3);
        let cfg = IlpConfig {
            max_nodes: 1,
            ..IlpConfig::default()
        };
        let out = solve_ilp(&m, &cfg);
        assert!(matches!(out.status, IlpStatus::BudgetExhausted { .. }));
        assert!(out.stats.nodes <= 1);
    }

    #[test]
    fn mixed_integer_continuous() {
        // x integer, y continuous: maximize x + y, x + y <= 3.7, x <= 2.2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_int_var("x", 0.0, f64::INFINITY);
        let y = m.add_var("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_le("sum", [(x, 1.0), (y, 1.0)], 3.7);
        m.add_le("xcap", [(x, 1.0)], 2.2);
        let out = solve_ilp(&m, &IlpConfig::default());
        match out.status {
            IlpStatus::Optimal(s) => {
                assert!((s.value(x) - s.value(x).round()).abs() < 1e-6);
                assert!((s.objective - 3.7).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn search_is_deterministic_and_backend_agnostic() {
        use crate::simplex::{SimplexConfig, SolverBackend};
        // A model with plenty of ties to exercise the tie-breaking rules.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_int_var(format!("x{i}"), 0.0, 4.0))
            .collect();
        m.set_objective(vars.iter().map(|&v| (v, 1.0)));
        m.add_le("caps", vars.iter().map(|&v| (v, 2.0)), 13.0);
        m.add_le(
            "odd",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 2) as f64)),
            9.5,
        );

        let a = solve_ilp(&m, &IlpConfig::default());
        let b = solve_ilp(&m, &IlpConfig::default());
        // Same node count, iteration count, and solution on repeat runs.
        assert_eq!(a.stats.nodes, b.stats.nodes);
        assert_eq!(a.stats.simplex_iterations, b.stats.simplex_iterations);
        let (sa, sb) = match (&a.status, &b.status) {
            (IlpStatus::Optimal(sa), IlpStatus::Optimal(sb)) => (sa, sb),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(sa.values, sb.values);

        // Dense backend (no warm starts) reaches the same optimum.
        let dense_cfg = IlpConfig {
            simplex: SimplexConfig {
                backend: SolverBackend::Dense,
                ..SimplexConfig::default()
            },
            ..IlpConfig::default()
        };
        let d = solve_ilp(&m, &dense_cfg);
        match &d.status {
            IlpStatus::Optimal(sd) => {
                assert!((sd.objective - sa.objective).abs() < 1e-6)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// A maximize model with many integer variables, deliberate ties,
    /// and a non-trivial search tree — enough rounds that width-8
    /// batches actually mix speculative and accepted nodes.
    fn bushy_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_int_var(format!("x{i}"), 0.0, 5.0))
            .collect();
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 3.0 + (i % 3) as f64)),
        );
        m.add_le("caps", vars.iter().map(|&v| (v, 2.0)), 17.0);
        m.add_le(
            "odd",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 2) as f64)),
            11.5,
        );
        m.add_ge("floor", vars.iter().map(|&v| (v, 1.0)), 2.5);
        m
    }

    /// The tentpole determinism guarantee: at a fixed `sync_width`, the
    /// thread count must not perturb anything observable — incumbent
    /// values bit for bit, node counts, simplex iterations, rounds.
    #[test]
    fn parallel_bnb_bit_identical_across_thread_counts() {
        let m = bushy_model();
        let outs: Vec<IlpOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                solve_ilp(
                    &m,
                    &IlpConfig {
                        threads: t,
                        sync_width: 8,
                        ..IlpConfig::default()
                    },
                )
            })
            .collect();
        let base = match &outs[0].status {
            IlpStatus::Optimal(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            outs[0].stats.rounds > 1,
            "model too easy to exercise rounds"
        );
        for out in &outs[1..] {
            assert_eq!(out.stats.nodes, outs[0].stats.nodes);
            assert_eq!(
                out.stats.simplex_iterations,
                outs[0].stats.simplex_iterations
            );
            assert_eq!(out.stats.rounds, outs[0].stats.rounds);
            let s = match &out.status {
                IlpStatus::Optimal(s) => s,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(s.objective.to_bits(), base.objective.to_bits());
            assert_eq!(s.values.len(), base.values.len());
            for (a, b) in s.values.iter().zip(&base.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    /// Wider rounds may expand speculative nodes, so node counts are
    /// only comparable at equal widths — but the proven optimum never
    /// moves, and width 1 must replay the sequential search exactly.
    #[test]
    fn sync_width_preserves_optimum() {
        let m = bushy_model();
        let solve_w = |width: usize| {
            solve_ilp(
                &m,
                &IlpConfig {
                    sync_width: width,
                    ..IlpConfig::default()
                },
            )
        };
        let seq = solve_w(1);
        let default = solve_ilp(&m, &IlpConfig::default());
        assert_eq!(seq.stats.nodes, default.stats.nodes);
        assert_eq!(seq.stats.rounds, seq.stats.nodes);
        let obj = |o: &IlpOutcome| match &o.status {
            IlpStatus::Optimal(s) => s.objective,
            other => panic!("unexpected {other:?}"),
        };
        for width in [2usize, 8, 64] {
            assert!((obj(&solve_w(width)) - obj(&seq)).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_lp_passthrough() {
        // No integer vars: behaves exactly like the LP.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 4.0);
        m.set_objective([(x, 2.0)]);
        let out = solve_ilp(&m, &IlpConfig::default());
        match out.status {
            IlpStatus::Optimal(s) => assert!((s.objective - 8.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(out.stats.nodes, 1);
    }
}
