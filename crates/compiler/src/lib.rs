//! The assay compiler: source text → assay DAG → volume management →
//! AquaCore (AIS) code with a metered volume plan.
//!
//! The pipeline mirrors the paper's toolchain (§4.1): "the usual steps
//! of parsing, intermediate representation, register allocation, and
//! code generation are similar to those of a conventional compiler",
//! plus the volume-management stages this paper adds:
//!
//! 1. [`aqua_lang`] parses and unrolls the assay;
//! 2. [`lower::lower_to_dag`] builds the assay DAG (Figure 2);
//! 3. [`aqua_volume::manage_volumes`] runs the DAGSolve/LP hierarchy
//!    (possibly rewriting the DAG via cascading/replication), or — when
//!    separations have statically-unknown yields —
//!    [`aqua_volume::unknown::partition`] defers dispensing to run time;
//! 4. [`codegen`] allocates reservoirs (register allocation) and emits
//!    AIS, attaching a [`codegen::VolumePlan`] that gives every metered
//!    `move` its absolute volume (or its run-time lookup key).
//!
//! # Examples
//!
//! ```
//! use aqua_compiler::compile;
//! use aqua_volume::Machine;
//!
//! let src = "
//! ASSAY demo START
//! fluid A, B;
//! MIX A AND B IN RATIOS 1 : 4 FOR 10;
//! SENSE OPTICAL it INTO R;
//! END";
//! let out = compile(src, &Machine::paper_default(), &Default::default())?;
//! assert_eq!(out.program.name(), "demo");
//! assert!(out.program.len_wet() > 0);
//! # Ok::<(), aqua_compiler::CompileError>(())
//! ```

#![warn(missing_docs)]
// Lib targets must not panic on `unwrap()`: reachable failure paths
// carry typed errors, invariants use `expect` with a justification.
// Test code (cfg(test)) is exempt — asserting via unwrap is idiomatic.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod codegen;
pub mod error;
pub mod lower;

use aqua_ais::Program;
use aqua_dag::Dag;
use aqua_lang::FlatAssay;
use aqua_volume::hierarchy::{ManagedOutcome, VolumeManagerOptions};
use aqua_volume::unknown::{self, PartitionPlan};
use aqua_volume::Machine;

pub use codegen::{PlannedVolume, VolumePlan};
pub use error::CompileError;
pub use lower::{lower_to_dag, DagMap};

/// Compiler options.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Options forwarded to the volume-management hierarchy.
    pub volume: VolumeManagerOptions,
    /// Skip volume management entirely (emit relative volumes only);
    /// used to reproduce the paper's "no volume management" baseline.
    pub skip_volume_management: bool,
}

/// How volumes were resolved for this compilation.
///
/// Carries the full outcome/plan by value — one per compilation, owned
/// by the caller (see `ManagedOutcome`).
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum VolumeResolution {
    /// A static assignment (DAGSolve or LP, possibly after rewrites).
    Static(ManagedOutcome),
    /// Deferred to run time via partitioned dispensing (§3.5).
    Partitioned(PartitionPlan),
    /// Volume management skipped (baseline mode): execution relies on
    /// regeneration.
    None,
}

/// Everything the compiler produces.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The unrolled assay.
    pub flat: FlatAssay,
    /// The final assay DAG (after any volume-management rewrites).
    pub dag: Dag,
    /// Mapping between flat fluids and DAG nodes (pre-rewrite ids
    /// remain valid: rewrites only add nodes).
    pub dag_map: DagMap,
    /// The emitted AIS program.
    pub program: Program,
    /// Per-instruction volume annotations.
    pub volume_plan: VolumePlan,
    /// How volumes were resolved.
    pub resolution: VolumeResolution,
}

/// Compiles assay source to AIS with automatic volume management.
///
/// # Errors
///
/// Returns [`CompileError`] for language errors, malformed DAGs,
/// exceeded machine resources, or code-generation failures. An assay
/// that merely *underflows* (needs regeneration at run time) still
/// compiles; the condition is reported in [`VolumeResolution`].
pub fn compile(
    src: &str,
    machine: &Machine,
    opts: &CompileOptions,
) -> Result<CompileOutput, CompileError> {
    // The hierarchy's obs handle doubles as the compiler's: one handle
    // covers the whole pipeline.
    let flat = {
        let _span = opts.volume.obs.span("compile.parse");
        aqua_lang::compile_to_flat(src)?
    };
    compile_flat(flat, machine, opts)
}

/// Compiles an already-flattened assay. See [`compile`].
///
/// # Errors
///
/// See [`compile`].
pub fn compile_flat(
    flat: FlatAssay,
    machine: &Machine,
    opts: &CompileOptions,
) -> Result<CompileOutput, CompileError> {
    let obs = opts.volume.obs.clone();
    let (dag, dag_map) = {
        let _span = obs.span("compile.lower");
        let (dag, dag_map) = lower::lower_to_dag(&flat)?;
        dag.validate().map_err(CompileError::Dag)?;
        (dag, dag_map)
    };

    // --- Volume management ---
    let vol_span = obs.span("compile.volumes");
    let (final_dag, resolution) = if opts.skip_volume_management {
        (dag, VolumeResolution::None)
    } else if unknown::has_unknown_volumes(&dag) {
        let plan = unknown::partition(&dag, machine).map_err(CompileError::Partition)?;
        // Partitioning computes one compile-time Vnorm table per
        // partition; report them on the same counter the hierarchy uses.
        obs.add("vol.vnorm_passes", plan.partitions.len() as u64);
        obs.add("vol.partitions", plan.partitions.len() as u64);
        (dag, VolumeResolution::Partitioned(plan))
    } else {
        // Thread explicit OUTPUT weights into the hierarchy.
        let mut vol_opts = opts.volume.clone();
        for (&node, &w) in &dag_map.output_weights {
            vol_opts
                .output_weights
                .insert(node, aqua_rational::Ratio::from_int(w as i128));
        }
        let outcome = aqua_volume::manage_volumes(&dag, machine, &vol_opts);
        match outcome {
            ManagedOutcome::ResourcesExceeded { reason, .. } => {
                return Err(CompileError::ResourcesExceeded(reason));
            }
            ManagedOutcome::Solved { ref dag, .. }
            | ManagedOutcome::NeedsRegeneration { ref dag, .. } => {
                let d = dag.clone();
                (d, VolumeResolution::Static(outcome))
            }
        }
    };

    vol_span.end();

    // --- Code generation ---
    let (program, volume_plan) = {
        let _span = obs.span("compile.codegen");
        codegen::emit(&flat.name, &final_dag, &dag_map, machine, &resolution)?
    };

    Ok(CompileOutput {
        flat,
        dag: final_dag,
        dag_map,
        program,
        volume_plan,
        resolution,
    })
}
