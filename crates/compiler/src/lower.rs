//! Lowering the flat assay to the assay DAG.
//!
//! Conventions chosen to match the paper's DAG accounting (Figure 3 /
//! Table 2):
//!
//! * each `MIX` is a mix node with exact in-edge fractions;
//! * `INCUBATE`/`CONCENTRATE` are pass-through process nodes;
//! * `SENSE` is a *leaf* process node (the sensed aliquot is consumed);
//! * `SEPARATE` is a separation node — with a known fraction when the
//!   assay gives a `YIELD` hint, otherwise statically unknown (§3.5);
//!   matrix and pusher loads are not part of the volume DAG (they are
//!   `move`d wholesale at codegen, with no relative-volume semantics);
//! * any produced fluid never consumed becomes an output leaf as-is
//!   (leaf nodes are the normalization anchors of DAGSolve).

use std::collections::HashMap;

use aqua_dag::{Dag, NodeId};
use aqua_lang::{FlatAssay, FlatOp, FluidId, SenseMode, SepKind};

use crate::error::CompileError;

/// Mapping between flat-assay entities and DAG nodes.
#[derive(Debug, Clone, Default)]
pub struct DagMap {
    /// DAG node producing each fluid instance (inputs map to their
    /// input node). Waste streams map to `None`.
    pub fluid_node: HashMap<FluidId, NodeId>,
    /// DAG node for each op index (the consuming/producing operation
    /// node; `Sense` ops map to their leaf node).
    pub op_node: HashMap<usize, NodeId>,
    /// For separation nodes: (matrix fluid name, pusher fluid name,
    /// separation kind, duration seconds) needed at codegen.
    pub separate_details: HashMap<NodeId, (String, String, SepKind, u64)>,
    /// For sense leaves: (modality, result-slot label).
    pub sense_details: HashMap<NodeId, (SenseMode, String)>,
    /// For incubate/concentrate process nodes: (temperature C, seconds).
    pub process_details: HashMap<NodeId, (i64, u64)>,
    /// Relative production weights of explicit `OUTPUT` nodes (the
    /// paper's `Va:Vb:Vc` output proportions).
    pub output_weights: HashMap<NodeId, u64>,
}

/// Lowers a flat assay to its DAG.
///
/// # Errors
///
/// Returns [`CompileError::WasteUsed`] if the assay consumes a waste
/// stream, or [`CompileError::Dag`]-level issues for degenerate mixes.
pub fn lower_to_dag(flat: &FlatAssay) -> Result<(Dag, DagMap), CompileError> {
    let mut dag = Dag::new();
    let mut map = DagMap::default();
    let mut waste_fluids: Vec<FluidId> = Vec::new();

    // Inputs first (so input node ids are dense and stable).
    for id in flat.inputs() {
        let n = dag.add_input(flat.fluid(id).name.clone());
        map.fluid_node.insert(id, n);
    }

    let node_of = |map: &DagMap, fluid: FluidId| -> Result<NodeId, CompileError> {
        map.fluid_node
            .get(&fluid)
            .copied()
            .ok_or_else(|| CompileError::WasteUsed {
                fluid: flat.fluid(fluid).name.clone(),
            })
    };

    for (idx, op) in flat.ops.iter().enumerate() {
        match op {
            FlatOp::Mix {
                out,
                parts,
                seconds,
            } => {
                let mut srcs = Vec::with_capacity(parts.len());
                for (f, r) in parts {
                    srcs.push((node_of(&map, *f)?, *r));
                }
                let n = dag
                    .add_mix_exact(flat.fluid(*out).name.clone(), &srcs, *seconds)
                    .map_err(|_| {
                        CompileError::Codegen(format!(
                            "mix `{}` has degenerate ratios",
                            flat.fluid(*out).name
                        ))
                    })?;
                map.fluid_node.insert(*out, n);
                map.op_node.insert(idx, n);
            }
            FlatOp::Incubate {
                out,
                input,
                temp_c,
                seconds,
            } => {
                let src = node_of(&map, *input)?;
                let n = dag.add_process(flat.fluid(*out).name.clone(), "incubate", src);
                map.process_details.insert(n, (*temp_c, *seconds));
                map.fluid_node.insert(*out, n);
                map.op_node.insert(idx, n);
            }
            FlatOp::Concentrate {
                out,
                input,
                temp_c,
                seconds,
            } => {
                let src = node_of(&map, *input)?;
                let n = dag.add_process(flat.fluid(*out).name.clone(), "concentrate", src);
                map.process_details.insert(n, (*temp_c, *seconds));
                map.fluid_node.insert(*out, n);
                map.op_node.insert(idx, n);
            }
            FlatOp::Separate {
                out,
                waste,
                input,
                kind,
                matrix,
                using,
                seconds,
                yield_hint,
            } => {
                let src = node_of(&map, *input)?;
                let n = dag.add_separate(flat.fluid(*out).name.clone(), src, *yield_hint);
                map.separate_details
                    .insert(n, (matrix.clone(), using.clone(), *kind, *seconds));
                map.fluid_node.insert(*out, n);
                map.op_node.insert(idx, n);
                waste_fluids.push(*waste);
            }
            FlatOp::Output { input, weight } => {
                let src = node_of(&map, *input)?;
                let n = dag.add_output(format!("out_{}", flat.fluid(*input).name), src);
                map.output_weights.insert(n, *weight);
                map.op_node.insert(idx, n);
            }
            FlatOp::Sense {
                input,
                mode,
                target,
            } => {
                let src = node_of(&map, *input)?;
                let opname = match mode {
                    SenseMode::Optical => "sense.OD",
                    SenseMode::Fluorescence => "sense.FL",
                };
                let n = dag.add_process(target.clone(), opname, src);
                map.sense_details.insert(n, (*mode, target.clone()));
                map.op_node.insert(idx, n);
            }
        }
    }

    // Waste streams must stay dead ends.
    let counts = flat.use_counts();
    for w in waste_fluids {
        if counts[w.index()] > 0 {
            return Err(CompileError::WasteUsed {
                fluid: flat.fluid(w).name.clone(),
            });
        }
    }

    Ok((dag, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dag::NodeKind;
    use aqua_lang::compile_to_flat;
    use aqua_rational::Ratio;

    fn lower(src: &str) -> (Dag, DagMap) {
        lower_to_dag(&compile_to_flat(src).unwrap()).unwrap()
    }

    #[test]
    fn glucose_dag_matches_paper_accounting() {
        // 3 inputs + 5 mixes + 5 sense leaves = 13 nodes; 15 edges.
        let (d, _) = lower(
            "ASSAY glucose START
             fluid Glucose, Reagent, Sample;
             fluid a, b, c, d, e;
             VAR Result[5];
             a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
             SENSE OPTICAL it INTO Result[1];
             b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
             SENSE OPTICAL it INTO Result[2];
             c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
             SENSE OPTICAL it INTO Result[3];
             d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
             SENSE OPTICAL it INTO Result[4];
             e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
             SENSE OPTICAL it INTO Result[5];
             END",
        );
        assert_eq!(d.num_nodes(), 13);
        assert_eq!(d.num_edges(), 15);
        assert!(d.validate().is_ok());
        // The 1:8 mix has fractions 1/9 and 8/9.
        let mix_d = d.find_node("d").unwrap();
        let fr: Vec<Ratio> = d
            .in_edges(mix_d)
            .iter()
            .map(|&e| d.edge(e).fraction)
            .collect();
        assert_eq!(
            fr,
            vec![Ratio::new(1, 9).unwrap(), Ratio::new(8, 9).unwrap()]
        );
    }

    #[test]
    fn separate_without_yield_is_unknown() {
        let (d, m) = lower(
            "ASSAY g START
             fluid A, B, s, lectin, buf, eff, waste;
             s = MIX A AND B FOR 30;
             SEPARATE s MATRIX lectin USING buf FOR 30 INTO eff AND waste;
             MIX eff AND A FOR 30;
             END",
        );
        let sep = d.find_node("eff").unwrap();
        assert_eq!(d.node(sep).kind, NodeKind::Separate { fraction: None });
        assert_eq!(
            m.separate_details[&sep],
            (
                "lectin".to_string(),
                "buf".to_string(),
                SepKind::Affinity,
                30
            )
        );
        // The matrix fluid is not a DAG node.
        assert!(d.find_node("lectin").is_none());
    }

    #[test]
    fn yield_hint_becomes_known_fraction() {
        let (d, _) = lower(
            "ASSAY g START
             fluid A, B, s, m, buf, eff, waste;
             s = MIX A AND B FOR 30;
             LCSEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste YIELD 1/2;
             SENSE OPTICAL eff INTO R;
             END",
        );
        let sep = d.find_node("eff").unwrap();
        assert_eq!(
            d.node(sep).kind,
            NodeKind::Separate {
                fraction: Some(Ratio::new(1, 2).unwrap())
            }
        );
    }

    #[test]
    fn waste_use_is_rejected() {
        let flat = compile_to_flat(
            "ASSAY g START
             fluid A, B, s, m, buf, eff, waste;
             s = MIX A AND B FOR 30;
             SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
             MIX waste AND A FOR 30;
             END",
        )
        .unwrap();
        assert!(matches!(
            lower_to_dag(&flat),
            Err(CompileError::WasteUsed { .. })
        ));
    }

    #[test]
    fn unconsumed_products_are_leaves() {
        let (d, _) = lower(
            "ASSAY g START
             fluid A, B, x;
             x = MIX A AND B FOR 5;
             END",
        );
        let x = d.find_node("x").unwrap();
        assert!(d.out_edges(x).is_empty());
    }

    #[test]
    fn incubate_chain_is_pass_through() {
        let (d, m) = lower(
            "ASSAY g START
             fluid A, B;
             MIX A AND B FOR 5;
             INCUBATE it AT 37 FOR 300;
             SENSE OPTICAL it INTO R;
             END",
        );
        assert_eq!(d.num_nodes(), 5);
        let inc = d
            .node_ids()
            .find(|&n| matches!(&d.node(n).kind, NodeKind::Process { op } if op == "incubate"))
            .unwrap();
        assert_eq!(m.process_details[&inc], (37, 300));
    }
}
