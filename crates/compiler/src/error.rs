//! Compiler errors.

use std::error::Error;
use std::fmt;

use aqua_dag::DagError;
use aqua_lang::LangError;
use aqua_volume::unknown::PartitionError;

/// Any failure of the compilation pipeline.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CompileError {
    /// Lexical/syntactic/semantic error in the assay source.
    Lang(LangError),
    /// The lowered DAG failed validation (compiler bug or degenerate
    /// assay such as an all-zero mix).
    Dag(DagError),
    /// Partitioning for unknown volumes failed.
    Partition(PartitionError),
    /// A rewrite needed more fluid-path resources than the machine has.
    ResourcesExceeded(String),
    /// Code generation could not honor the machine's unit inventory.
    Codegen(String),
    /// The assay uses a separation's waste stream, which the volume DAG
    /// does not model.
    WasteUsed {
        /// The waste fluid's name.
        fluid: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lang(e) => write!(f, "{e}"),
            CompileError::Dag(e) => write!(f, "invalid assay DAG: {e}"),
            CompileError::Partition(e) => write!(f, "partitioning failed: {e}"),
            CompileError::ResourcesExceeded(what) => {
                write!(f, "assay exceeds machine resources: {what}")
            }
            CompileError::Codegen(what) => write!(f, "code generation failed: {what}"),
            CompileError::WasteUsed { fluid } => write!(
                f,
                "waste stream `{fluid}` is consumed later in the assay; waste volumes are \
                 not managed"
            ),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Lang(e) => Some(e),
            CompileError::Dag(e) => Some(e),
            CompileError::Partition(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> CompileError {
        CompileError::Lang(e)
    }
}
