//! AIS code generation with reservoir allocation and volume planning.
//!
//! Walks the (possibly rewritten) assay DAG in topological order and
//! emits AIS. Register allocation follows the AquaCore conventions:
//!
//! * every external input is loaded into its own reservoir
//!   (`input sN, ipM`);
//! * single-use intermediates stay *parked* in their producing
//!   functional unit and flow straight to their consumer (storage-less
//!   operands); a parked fluid is evicted to a reservoir only if its
//!   unit is needed first;
//! * multi-use intermediates are stored to a reservoir immediately and
//!   metered out per use;
//! * reservoirs are freed at a fluid's last use (linear-scan style).
//!
//! Every fluid-moving instruction gets a [`PlannedVolume`] entry: a
//! static picoliter amount (IVol-rounded), a run-time lookup key into
//! the partition plan (§3.5), or "move everything".

use std::collections::HashMap;

use aqua_ais::{DryReg, Instr, Picoliters, Program, SenseKind, SepPort, SeparateKind, WetLoc};
use aqua_dag::{Dag, EdgeId, NodeId, NodeKind, Ratio};
use aqua_lang::{SenseMode, SepKind};
use aqua_volume::hierarchy::ManagedOutcome;
use aqua_volume::Machine;

use crate::error::CompileError;
use crate::lower::DagMap;
use crate::VolumeResolution;

/// The volume to meter for one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedVolume {
    /// A compile-time amount in picoliters (a least-count multiple).
    Static(Picoliters),
    /// Resolved at run time: the volume of `edge` in partition
    /// `partition` of the compile-time partition plan.
    Runtime {
        /// Partition index in the [`aqua_volume::unknown::PartitionPlan`].
        partition: usize,
        /// Local edge id within that partition.
        edge: EdgeId,
    },
    /// Transfer everything at the source location.
    All,
}

/// Per-instruction volume annotations, parallel to the program's
/// instruction list (`None` for non-fluid instructions).
#[derive(Debug, Clone, Default)]
pub struct VolumePlan {
    /// `entries[i]` annotates instruction `i`.
    pub entries: Vec<Option<PlannedVolume>>,
    /// Which fluid each chip input port supplies.
    pub port_fluids: HashMap<u32, String>,
    /// For known-fraction separation instructions: the output fraction.
    pub separation_fractions: HashMap<usize, f64>,
    /// For unknown-volume separation instructions under partitioned
    /// resolution: the `(partition, local node)` key whose measurement
    /// the run-time dispenser needs.
    pub unknown_separations: HashMap<usize, (usize, aqua_dag::NodeId)>,
    /// For metered instructions: the original-DAG edge being executed.
    /// Lets the run-time recovery engine map an instruction back to the
    /// plan it is drawing from.
    pub instr_edges: HashMap<usize, EdgeId>,
    /// For metered instructions: the original-DAG node whose fluid is
    /// drawn (the input node itself for `Input` loads). The recovery
    /// engine regenerates this node's backward slice on a shortfall.
    pub instr_sources: HashMap<usize, NodeId>,
    /// For run-time-resolved instructions: which partition they draw
    /// from (derived from the `Runtime` entries).
    pub instr_partitions: HashMap<usize, usize>,
    /// Per-node slack in pl under a static resolution: planned
    /// production minus planned draws — the "re-dispense with slack"
    /// budget of recovery tier 1. Empty without a static volume table.
    pub node_slack_pl: Vec<Picoliters>,
}

impl VolumePlan {
    /// The annotation for instruction `i`, if any.
    pub fn get(&self, i: usize) -> Option<&PlannedVolume> {
        self.entries.get(i).and_then(|e| e.as_ref())
    }
}

/// Where a produced fluid currently lives during emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// Not yet produced.
    Pending,
    /// In reservoir `sN`.
    Reservoir(u32),
    /// Parked in a functional unit.
    Unit(WetLoc),
    /// Fully consumed.
    Gone,
}

struct Emitter<'a> {
    dag: &'a Dag,
    map: &'a DagMap,
    machine: &'a Machine,
    program: Program,
    plan: Vec<Option<PlannedVolume>>,
    /// Current location of each node's product.
    loc: Vec<Loc>,
    /// Uses remaining per node.
    remaining: Vec<usize>,
    /// Reservoir free list (ascending).
    free_reservoirs: Vec<u32>,
    /// Input port assigned to each auxiliary (matrix/pusher) fluid.
    aux_ports: HashMap<String, u32>,
    next_input_port: u32,
    /// Per-edge planned volume (static path), already IVol-rounded.
    edge_pl: Option<Vec<Picoliters>>,
    /// Run-time lookup: original edge -> (partition, local edge).
    runtime_edges: Option<HashMap<EdgeId, (usize, EdgeId)>>,
    /// Planned production per node in pl (for input loads and drains).
    node_pl: Option<Vec<Picoliters>>,
    /// For unknown separations: original node -> (partition, local id).
    unknown_keys: HashMap<NodeId, (usize, NodeId)>,
    instr_edges: HashMap<usize, EdgeId>,
    instr_sources: HashMap<usize, NodeId>,
    port_fluids: HashMap<u32, String>,
    separation_fractions: HashMap<usize, f64>,
    unknown_separations: HashMap<usize, (usize, NodeId)>,
    /// Next dedicated port for explicit outputs (op1 is the waste/drain
    /// port).
    next_output_port: u32,
}

/// Emits AIS for a DAG under a volume resolution.
///
/// # Errors
///
/// Returns [`CompileError::Codegen`] if the machine's reservoir or port
/// inventory is exhausted.
pub fn emit(
    name: &str,
    dag: &Dag,
    map: &DagMap,
    machine: &Machine,
    resolution: &VolumeResolution,
) -> Result<(Program, VolumePlan), CompileError> {
    // --- Volume tables by resolution mode. ---
    let lc = machine.least_count_nl();
    let to_pl = |nl: Ratio| -> Picoliters {
        let rounded = Ratio::from_int((nl / lc).round()) * lc;
        let pl = rounded * Ratio::from_int(1000);
        pl.round().max(0) as Picoliters
    };
    let mut edge_pl: Option<Vec<Picoliters>> = None;
    let mut node_pl: Option<Vec<Picoliters>> = None;
    let mut runtime_edges: Option<HashMap<EdgeId, (usize, EdgeId)>> = None;
    match resolution {
        VolumeResolution::Static(ManagedOutcome::Solved { volumes, .. }) => {
            edge_pl = Some(volumes.edge_volumes_nl.iter().map(|&v| to_pl(v)).collect());
            node_pl = Some(volumes.node_volumes_nl.iter().map(|&v| to_pl(v)).collect());
        }
        VolumeResolution::Static(ManagedOutcome::NeedsRegeneration {
            best_effort: Some(sol),
            ..
        }) => {
            edge_pl = Some(sol.edge_volumes_nl.iter().map(|&v| to_pl(v)).collect());
            node_pl = Some(sol.node_volumes_nl.iter().map(|&v| to_pl(v)).collect());
        }
        VolumeResolution::Partitioned(plan) => {
            let mut lookup = HashMap::new();
            for (pi, part) in plan.partitions.iter().enumerate() {
                for (&orig, &local) in &part.edge_map {
                    lookup.insert(orig, (pi, local));
                }
            }
            runtime_edges = Some(lookup);
        }
        _ => {}
    }
    // --- Conservation reconciliation (IVol drift repair). ---
    // Per-edge rounding drifts independently, so a node's rounded uses
    // can exceed its rounded production by a few least counts (worst at
    // 16-way fan-outs like the enzyme dilutions). Walk the DAG in
    // topological order, cap each node's out-flow at its physical
    // in-flow, and rebuild node productions from the reconciled edges —
    // the executed plan then conserves volume exactly.
    if let (Some(edges), Some(nodes)) = (&mut edge_pl, &mut node_pl) {
        let lc_pl = (lc * Ratio::from_int(1000)).round().max(1) as Picoliters;
        let order = dag
            .topological_order()
            .map_err(|err| CompileError::Codegen(err.to_string()))?;
        for &n in &order {
            let node = dag.node(n);
            let production: Picoliters = if node.kind.is_source() {
                // Sources load exactly what their uses draw — capped at
                // the reservoir capacity (rounded draws can overshoot
                // it by a least count or two; the shaving loop below
                // trims the uses back).
                let cap_pl =
                    (machine.max_capacity_nl() * Ratio::from_int(1000)).round() as Picoliters;
                let total = dag
                    .out_edges(n)
                    .iter()
                    .map(|&e| edges[e.index()])
                    .sum::<Picoliters>()
                    .min(cap_pl);
                nodes[n.index()] = total;
                total
            } else {
                let in_total: Picoliters = dag.in_edges(n).iter().map(|&e| edges[e.index()]).sum();
                let out = match &node.kind {
                    NodeKind::Separate { fraction: Some(f) } => {
                        let exact = Ratio::from_int(in_total as i128) * *f;
                        let counts = (exact / Ratio::from_int(lc_pl as i128)).floor();
                        (counts.max(0) as Picoliters) * lc_pl
                    }
                    _ => in_total,
                };
                nodes[n.index()] = out;
                out
            };
            // Cap out-flow at production, shaving the largest edges in
            // least-count steps (never below one least count).
            let mut out_total: Picoliters =
                dag.out_edges(n).iter().map(|&e| edges[e.index()]).sum();
            while out_total > production {
                let Some(&biggest) = dag
                    .out_edges(n)
                    .iter()
                    .filter(|&&e| edges[e.index()] > lc_pl)
                    .max_by_key(|&&e| edges[e.index()])
                else {
                    break; // everything at the floor: leave the drift
                };
                edges[biggest.index()] -= lc_pl;
                out_total -= lc_pl;
            }
        }
    }

    let mut unknown_keys = HashMap::new();
    if let VolumeResolution::Partitioned(plan) = resolution {
        for n in dag.node_ids() {
            if matches!(dag.node(n).kind, NodeKind::Separate { fraction: None }) {
                if let Some(key) = plan.locate(n) {
                    unknown_keys.insert(n, key);
                }
            }
        }
    }

    let mut e = Emitter {
        dag,
        map,
        machine,
        program: Program::new(name),
        plan: Vec::new(),
        loc: vec![Loc::Pending; dag.num_nodes()],
        remaining: dag.node_ids().map(|n| dag.num_uses(n)).collect(),
        free_reservoirs: (1..=machine.reservoirs as u32).rev().collect(),
        aux_ports: HashMap::new(),
        next_input_port: 1,
        edge_pl,
        runtime_edges,
        node_pl,
        unknown_keys,
        instr_edges: HashMap::new(),
        instr_sources: HashMap::new(),
        port_fluids: HashMap::new(),
        separation_fractions: HashMap::new(),
        unknown_separations: HashMap::new(),
        next_output_port: 2,
    };

    let order = dag
        .topological_order()
        .map_err(|err| CompileError::Codegen(err.to_string()))?;
    for node in order {
        e.emit_node(node)?;
    }
    let instr_partitions = e
        .plan
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Some(PlannedVolume::Runtime { partition, .. }) => Some((i, *partition)),
            _ => None,
        })
        .collect();
    // Tier-1 recovery budget: slack a node's reservoir holds beyond its
    // planned draws (after reconciliation, so never negative in effect).
    let node_slack_pl = match (&e.node_pl, &e.edge_pl) {
        (Some(nodes), Some(edges)) => dag
            .node_ids()
            .map(|n| {
                let drawn: Picoliters = dag.out_edges(n).iter().map(|&ed| edges[ed.index()]).sum();
                nodes[n.index()].saturating_sub(drawn)
            })
            .collect(),
        _ => Vec::new(),
    };
    let plan = VolumePlan {
        entries: e.plan.clone(),
        port_fluids: e.port_fluids.clone(),
        separation_fractions: e.separation_fractions.clone(),
        unknown_separations: e.unknown_separations.clone(),
        instr_edges: e.instr_edges.clone(),
        instr_sources: e.instr_sources.clone(),
        instr_partitions,
        node_slack_pl,
    };
    Ok((e.program, plan))
}

impl<'a> Emitter<'a> {
    fn push(&mut self, instr: Instr, vol: Option<PlannedVolume>) {
        self.program.push(instr);
        self.plan.push(vol);
    }

    /// Records which DAG edge/source the *next* pushed instruction
    /// executes, so the run-time recovery engine can map a shortfall
    /// back to its plan volume and starved fluid.
    fn note_meta(&mut self, edge: Option<EdgeId>, src: Option<NodeId>) {
        let idx = self.program.instrs().len();
        if let Some(e) = edge {
            self.instr_edges.insert(idx, e);
        }
        if let Some(s) = src {
            self.instr_sources.insert(idx, s);
        }
    }

    fn alloc_reservoir(&mut self) -> Result<u32, CompileError> {
        self.free_reservoirs.pop().ok_or_else(|| {
            CompileError::Codegen(format!(
                "out of reservoirs ({} available)",
                self.machine.reservoirs
            ))
        })
    }

    fn alloc_input_port(&mut self) -> Result<u32, CompileError> {
        let p = self.next_input_port;
        if p as usize > self.machine.input_ports {
            return Err(CompileError::Codegen(format!(
                "out of input ports ({} available)",
                self.machine.input_ports
            )));
        }
        self.next_input_port += 1;
        Ok(p)
    }

    /// Volume annotation for a metered transfer along `edge`.
    fn edge_volume(&self, edge: EdgeId) -> PlannedVolume {
        if let Some(tbl) = &self.edge_pl {
            return PlannedVolume::Static(tbl[edge.index()]);
        }
        if let Some(rt) = &self.runtime_edges {
            if let Some(&(pi, local)) = rt.get(&edge) {
                return PlannedVolume::Runtime {
                    partition: pi,
                    edge: local,
                };
            }
        }
        PlannedVolume::All
    }

    /// Integer "relative volume" operand for display: the edge fraction
    /// scaled to the smallest integer parts among the consumer's inputs.
    fn rel_parts(&self, node: NodeId) -> HashMap<EdgeId, u64> {
        let ins = self.dag.in_edges(node);
        let mut denom_lcm: i128 = 1;
        for &e in ins {
            let d = self.dag.edge(e).fraction.denom();
            denom_lcm = lcm(denom_lcm, d);
            if denom_lcm > 1_000_000_000 {
                break;
            }
        }
        let mut out = HashMap::new();
        for &e in ins {
            let f = self.dag.edge(e).fraction;
            let part = if denom_lcm <= 1_000_000_000 {
                (f.numer() * (denom_lcm / f.denom())).max(1) as u64
            } else {
                // Fractions too wild for a display integer: use 1.
                1
            };
            out.insert(e, part);
        }
        out
    }

    /// Ensures the fluid produced by `node` is addressable, returning
    /// its current wet location (evictions already handled by callers).
    fn location(&self, node: NodeId) -> Result<WetLoc, CompileError> {
        match self.loc[node.index()] {
            Loc::Reservoir(r) => Ok(WetLoc::Reservoir(r)),
            Loc::Unit(u) => Ok(u),
            state => Err(CompileError::Codegen(format!(
                "fluid `{}` is {state:?} when needed",
                self.dag.node(node).name
            ))),
        }
    }

    /// Evicts whatever is parked in `unit` (if anything) to a reservoir.
    fn evict_unit(&mut self, unit: WetLoc) -> Result<(), CompileError> {
        let parked = self
            .dag
            .node_ids()
            .find(|&n| self.loc[n.index()] == Loc::Unit(unit));
        if let Some(n) = parked {
            let r = self.alloc_reservoir()?;
            self.push(
                Instr::Move {
                    dst: WetLoc::Reservoir(r),
                    src: unit,
                    rel_vol: None,
                },
                Some(PlannedVolume::All),
            );
            self.loc[n.index()] = Loc::Reservoir(r);
        }
        Ok(())
    }

    /// Consumes one use of `src`'s fluid; frees its reservoir at the
    /// last use, draining any leftover so the reservoir can be reused
    /// without contamination.
    fn consume(&mut self, src: NodeId) {
        let rem = &mut self.remaining[src.index()];
        *rem = rem.saturating_sub(1);
        if *rem == 0 {
            if let Loc::Reservoir(r) = self.loc[src.index()] {
                if self.may_have_residue(src) {
                    self.push(
                        Instr::Output {
                            port: WetLoc::OutputPort(1),
                            src: WetLoc::Reservoir(r),
                        },
                        Some(PlannedVolume::All),
                    );
                }
                self.free_reservoirs.push(r);
            }
            self.loc[src.index()] = Loc::Gone;
        }
    }

    /// Whether a node's production may exceed the sum of its planned
    /// draws (leftover fluid in its reservoir after the last use).
    /// Without a static volume table the answer is conservatively yes.
    fn may_have_residue(&self, node: NodeId) -> bool {
        let (Some(node_pl), Some(edge_pl)) = (&self.node_pl, &self.edge_pl) else {
            return true;
        };
        let drawn: Picoliters = self
            .dag
            .out_edges(node)
            .iter()
            .map(|&e| edge_pl[e.index()])
            .sum();
        node_pl[node.index()] > drawn
    }

    /// After producing at `unit`: park single-use products, store
    /// multi-use products to a reservoir.
    fn place_product(&mut self, node: NodeId, unit: WetLoc) -> Result<(), CompileError> {
        if self.dag.num_uses(node) <= 1 {
            self.loc[node.index()] = Loc::Unit(unit);
        } else {
            let r = self.alloc_reservoir()?;
            self.push(
                Instr::Move {
                    dst: WetLoc::Reservoir(r),
                    src: unit,
                    rel_vol: None,
                },
                Some(PlannedVolume::All),
            );
            self.loc[node.index()] = Loc::Reservoir(r);
        }
        Ok(())
    }

    /// Input port supplying an auxiliary fluid (separation matrix /
    /// pusher); allocated on first use. Aux fluids are loaded straight
    /// into the separator's port per separation — they never occupy a
    /// reservoir and are flushed through the column by the separation.
    fn aux_port(&mut self, fluid: &str) -> Result<u32, CompileError> {
        if let Some(&p) = self.aux_ports.get(fluid) {
            return Ok(p);
        }
        let p = self.alloc_input_port()?;
        self.port_fluids.insert(p, fluid.to_owned());
        self.aux_ports.insert(fluid.to_owned(), p);
        Ok(p)
    }

    fn emit_node(&mut self, node: NodeId) -> Result<(), CompileError> {
        let kind = self.dag.node(node).kind.clone();
        match kind {
            NodeKind::Input | NodeKind::ConstrainedInput => {
                let r = self.alloc_reservoir()?;
                let p = self.alloc_input_port()?;
                self.push(
                    Instr::Comment(format!(" {}", self.dag.node(node).name)),
                    None,
                );
                let vol = match &self.node_pl {
                    Some(tbl) => PlannedVolume::Static(tbl[node.index()]),
                    None => PlannedVolume::All, // load to capacity
                };
                self.note_meta(None, Some(node));
                self.push(
                    Instr::Input {
                        dst: WetLoc::Reservoir(r),
                        port: WetLoc::InputPort(p),
                    },
                    Some(vol),
                );
                self.port_fluids.insert(p, self.dag.node(node).name.clone());
                self.loc[node.index()] = Loc::Reservoir(r);
                Ok(())
            }
            NodeKind::Mix { seconds } => {
                let mixer = WetLoc::Mixer(1);
                // If one of the inputs is parked in the mixer already,
                // mixing happens around it; otherwise clear the mixer.
                let ins: Vec<EdgeId> = self.dag.in_edges(node).to_vec();
                let parked_input = ins
                    .iter()
                    .find(|&&e| self.loc[self.dag.edge(e).src.index()] == Loc::Unit(mixer))
                    .copied();
                if parked_input.is_none() {
                    self.evict_unit(mixer)?;
                }
                let parts = self.rel_parts(node);
                for &e in &ins {
                    let src = self.dag.edge(e).src;
                    if Some(e) == parked_input {
                        self.consume(src);
                        continue; // already in the mixer
                    }
                    let src_loc = self.location(src)?;
                    let vol = self.edge_volume(e);
                    self.note_meta(Some(e), Some(src));
                    self.push(
                        Instr::Move {
                            dst: mixer,
                            src: src_loc,
                            rel_vol: Some(parts[&e]),
                        },
                        Some(vol),
                    );
                    self.consume(src);
                }
                self.push(
                    Instr::Mix {
                        unit: mixer,
                        seconds,
                    },
                    None,
                );
                self.place_product(node, mixer)
            }
            NodeKind::Process { ref op } => {
                if op.starts_with("sense") {
                    return self.emit_sense(node, op);
                }
                let heater = WetLoc::Heater(1);
                let e = self.dag.in_edges(node)[0];
                let src = self.dag.edge(e).src;
                if self.loc[src.index()] != Loc::Unit(heater) {
                    self.evict_unit(heater)?;
                    let src_loc = self.location(src)?;
                    let vol = self.edge_volume(e);
                    let metered = self.dag.num_uses(src) > 1;
                    self.note_meta(Some(e), Some(src));
                    self.push(
                        Instr::Move {
                            dst: heater,
                            src: src_loc,
                            rel_vol: metered.then_some(1),
                        },
                        Some(vol),
                    );
                }
                self.consume(src);
                let (temp_c, seconds) = self
                    .map
                    .process_details
                    .get(&node)
                    .copied()
                    .unwrap_or((37, 0));
                let instr = if op == "concentrate" {
                    Instr::Concentrate {
                        unit: heater,
                        temp_c,
                        seconds,
                    }
                } else {
                    Instr::Incubate {
                        unit: heater,
                        temp_c,
                        seconds,
                    }
                };
                self.push(instr, None);
                self.place_product(node, heater)
            }
            NodeKind::Separate { .. } => {
                let sep = WetLoc::Separator(1, SepPort::Main);
                self.evict_unit(sep)?;
                self.evict_unit(WetLoc::Separator(1, SepPort::Out1))?;
                let (matrix, pusher, kind, seconds) = match self.map.separate_details.get(&node) {
                    Some((m, u, k, s)) => (m.clone(), u.clone(), *k, *s),
                    None => (
                        "matrix".to_owned(),
                        "pusher".to_owned(),
                        SepKind::Affinity,
                        0,
                    ),
                };
                let m_port = self.aux_port(&matrix)?;
                let p_port = self.aux_port(&pusher)?;
                self.push(Instr::Comment(format!(" {matrix} (matrix)")), None);
                self.push(
                    Instr::Input {
                        dst: WetLoc::Separator(1, SepPort::Matrix),
                        port: WetLoc::InputPort(m_port),
                    },
                    Some(PlannedVolume::All),
                );
                self.push(Instr::Comment(format!(" {pusher} (pusher)")), None);
                self.push(
                    Instr::Input {
                        dst: WetLoc::Separator(1, SepPort::Pusher),
                        port: WetLoc::InputPort(p_port),
                    },
                    Some(PlannedVolume::All),
                );
                let e = self.dag.in_edges(node)[0];
                let src = self.dag.edge(e).src;
                let src_loc = self.location(src)?;
                let vol = self.edge_volume(e);
                let metered = self.dag.num_uses(src) > 1;
                self.note_meta(Some(e), Some(src));
                self.push(
                    Instr::Move {
                        dst: sep,
                        src: src_loc,
                        rel_vol: metered.then_some(1),
                    },
                    Some(vol),
                );
                self.consume(src);
                let ais_kind = match kind {
                    SepKind::Affinity => SeparateKind::Affinity,
                    SepKind::LiquidChromatography => SeparateKind::LiquidChromatography,
                    SepKind::Electrophoresis => SeparateKind::Electrophoresis,
                    SepKind::Size => SeparateKind::Size,
                };
                let sep_idx = self.program.instrs().len();
                self.push(
                    Instr::Separate {
                        unit: sep,
                        kind: ais_kind,
                        seconds,
                    },
                    None,
                );
                match self.dag.node(node).kind {
                    NodeKind::Separate { fraction: Some(f) } => {
                        self.separation_fractions.insert(sep_idx, f.to_f64());
                    }
                    NodeKind::Separate { fraction: None } => {
                        if let Some(&key) = self.unknown_keys.get(&node) {
                            self.unknown_separations.insert(sep_idx, key);
                        }
                    }
                    _ => {}
                }
                self.place_product(node, WetLoc::Separator(1, SepPort::Out1))
            }
            NodeKind::Output | NodeKind::Excess => {
                // Excess discards go to the shared waste port (op1);
                // explicit outputs each get a dedicated port.
                let port = if kind == NodeKind::Output {
                    let p = self.next_output_port;
                    self.next_output_port += 1;
                    p
                } else {
                    1
                };
                let e = self.dag.in_edges(node)[0];
                let src = self.dag.edge(e).src;
                let src_loc = self.location(src)?;
                let vol = self.edge_volume(e);
                let metered = self.dag.num_uses(src) > 1;
                self.note_meta(Some(e), Some(src));
                self.push(
                    Instr::Output {
                        port: WetLoc::OutputPort(port),
                        src: src_loc,
                    },
                    Some(if metered { vol } else { PlannedVolume::All }),
                );
                self.consume(src);
                self.loc[node.index()] = Loc::Gone;
                Ok(())
            }
        }
    }

    fn emit_sense(&mut self, node: NodeId, op: &str) -> Result<(), CompileError> {
        let sensor = WetLoc::Sensor(2); // the paper's listings use sensor2
        let e = self.dag.in_edges(node)[0];
        let src = self.dag.edge(e).src;
        if self.loc[src.index()] != Loc::Unit(sensor) {
            self.evict_unit(sensor)?;
            let src_loc = self.location(src)?;
            let vol = self.edge_volume(e);
            let metered = self.dag.num_uses(src) > 1;
            self.note_meta(Some(e), Some(src));
            self.push(
                Instr::Move {
                    dst: sensor,
                    src: src_loc,
                    rel_vol: metered.then_some(1),
                },
                Some(vol),
            );
        }
        self.consume(src);
        let (mode, target) = match self.map.sense_details.get(&node) {
            Some((m, t)) => (*m, t.clone()),
            None => (SenseMode::Optical, self.dag.node(node).name.clone()),
        };
        let kind = match (mode, op) {
            (SenseMode::Fluorescence, _) => SenseKind::Fluorescence,
            (_, "sense.FL") => SenseKind::Fluorescence,
            _ => SenseKind::OpticalDensity,
        };
        self.push(
            Instr::Sense {
                unit: sensor,
                kind,
                dst: DryReg(target),
            },
            None,
        );
        // The sensed aliquot is consumed; the sensor is free again.
        self.loc[node.index()] = Loc::Gone;
        Ok(())
    }
}

fn lcm(a: i128, b: i128) -> i128 {
    fn gcd(mut a: i128, mut b: i128) -> i128 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    (a / gcd(a, b)).saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, CompileOptions};

    const GLUCOSE: &str = "
ASSAY glucose START
fluid Glucose, Reagent, Sample;
fluid a, b, c, d, e;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[1];
b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO Result[2];
c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[3];
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL it INTO Result[4];
e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[5];
END";

    #[test]
    fn glucose_emits_paper_shaped_code() {
        let machine = Machine::paper_default();
        let out = compile(GLUCOSE, &machine, &CompileOptions::default()).unwrap();
        let text = out.program.to_string();
        // The paper's Figure 9(b) landmarks.
        assert!(text.contains("input s1, ip1"));
        assert!(text.contains("move mixer1, s"));
        assert!(text.contains("mix mixer1, 10"));
        assert!(text.contains("move sensor2, mixer1"));
        assert!(text.contains("sense.OD sensor2, Result[1]"));
        // 3 inputs + (2 moves + mix + move-to-sensor + sense) * 5 = 28
        // executable instructions.
        assert_eq!(out.program.len_executable(), 28);
    }

    #[test]
    fn glucose_plan_volumes_match_dagsolve() {
        let machine = Machine::paper_default();
        let out = compile(GLUCOSE, &machine, &CompileOptions::default()).unwrap();
        // The minimum metered move is the 1:8 glucose aliquot: 3.3 nl
        // = 3300 pl (Figure 12's "smallest volume dispensed is 3.3 nl").
        let mut min_static = u64::MAX;
        for entry in out.volume_plan.entries.iter().flatten() {
            if let PlannedVolume::Static(v) = entry {
                if *v > 0 {
                    min_static = min_static.min(*v);
                }
            }
        }
        assert_eq!(min_static, 3300);
    }

    #[test]
    fn every_instruction_has_a_plan_slot() {
        let machine = Machine::paper_default();
        let out = compile(GLUCOSE, &machine, &CompileOptions::default()).unwrap();
        assert_eq!(out.volume_plan.entries.len(), out.program.instrs().len());
    }

    #[test]
    fn multi_use_products_are_stored_to_reservoirs() {
        let machine = Machine::paper_default();
        let src = "
ASSAY t START
fluid A, B, premix;
premix = MIX A AND B FOR 5;
MIX premix AND A IN RATIOS 1 : 1 FOR 5;
SENSE OPTICAL it INTO R1;
MIX premix AND B IN RATIOS 1 : 2 FOR 5;
SENSE OPTICAL it INTO R2;
END";
        let out = compile(src, &machine, &CompileOptions::default()).unwrap();
        let text = out.program.to_string();
        // premix (2 uses) must be parked in a reservoir: a move from
        // mixer1 to a reservoir appears right after the first mix.
        let lines: Vec<&str> = text.lines().collect();
        let mix_idx = lines.iter().position(|l| l.contains("mix mixer1")).unwrap();
        assert!(
            lines[mix_idx + 1].trim().starts_with("move s"),
            "expected store after first mix, got `{}`",
            lines[mix_idx + 1]
        );
    }

    #[test]
    fn separation_emits_matrix_and_pusher_loads() {
        let machine = Machine::paper_default();
        let src = "
ASSAY t START
fluid A, B, s, lectin, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX lectin USING buf FOR 30 INTO eff AND waste;
MIX eff AND A FOR 30;
END";
        let out = compile(src, &machine, &CompileOptions::default()).unwrap();
        let text = out.program.to_string();
        assert!(text.contains("input separator1.matrix, ip"));
        assert!(text.contains("input separator1.pusher, ip"));
        assert!(text.contains("separate.AF separator1, 30"));
        assert!(text.contains("separator1.out1"));
    }

    #[test]
    fn unknown_volume_assay_gets_runtime_plan_entries() {
        let machine = Machine::paper_default();
        let src = "
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
MIX eff AND A FOR 30;
SENSE OPTICAL it INTO R;
END";
        let out = compile(src, &machine, &CompileOptions::default()).unwrap();
        assert!(matches!(
            out.resolution,
            crate::VolumeResolution::Partitioned(_)
        ));
        let has_runtime = out
            .volume_plan
            .entries
            .iter()
            .flatten()
            .any(|p| matches!(p, PlannedVolume::Runtime { .. }));
        assert!(has_runtime, "expected run-time volume entries");
    }

    #[test]
    fn metered_instructions_carry_recovery_metadata() {
        let machine = Machine::paper_default();
        let out = compile(GLUCOSE, &machine, &CompileOptions::default()).unwrap();
        let plan = &out.volume_plan;
        // Every static-metered instruction maps back to a DAG source.
        for (i, entry) in plan.entries.iter().enumerate() {
            if matches!(entry, Some(PlannedVolume::Static(_))) {
                assert!(
                    plan.instr_sources.contains_key(&i),
                    "instr {i} has a static volume but no source node"
                );
            }
        }
        // Slack table covers the whole DAG and sources have headroom
        // only where production exceeds draws (reconciled: no negatives).
        assert_eq!(plan.node_slack_pl.len(), out.dag.num_nodes());
        // Runtime entries (none for glucose) would populate partitions.
        assert!(plan.instr_partitions.is_empty());
    }

    #[test]
    fn reservoir_exhaustion_is_a_codegen_error() {
        let mut machine = Machine::paper_default();
        machine.reservoirs = 1;
        let out = compile(GLUCOSE, &machine, &CompileOptions::default());
        assert!(matches!(out, Err(CompileError::Codegen(_))));
    }

    #[test]
    fn skip_volume_management_marks_moves_all_or_relative() {
        let machine = Machine::paper_default();
        let opts = CompileOptions {
            skip_volume_management: true,
            ..Default::default()
        };
        let out = compile(GLUCOSE, &machine, &opts).unwrap();
        assert!(matches!(out.resolution, crate::VolumeResolution::None));
        for p in out.volume_plan.entries.iter().flatten() {
            assert_eq!(*p, PlannedVolume::All);
        }
    }

    #[test]
    fn reservoirs_are_recycled_after_last_use() {
        // A long chain of single-shot mixes must not accumulate
        // reservoirs: 20 sequential mixes with 2 inputs fits in the
        // default 32 reservoirs.
        let mut src = String::from("ASSAY t START\nfluid A, B;\n");
        for i in 0..20 {
            src.push_str(&format!(
                "MIX A AND B IN RATIOS 1 : {} FOR 5;\nSENSE OPTICAL it INTO R{i};\n",
                i + 1
            ));
        }
        src.push_str("END");
        let machine = Machine::paper_default();
        let out = compile(&src, &machine, &CompileOptions::default());
        assert!(out.is_ok(), "{:?}", out.err());
    }
}
