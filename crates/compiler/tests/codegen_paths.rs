//! Code-generation corner cases: unit eviction, parked products, and
//! plan/instruction consistency.

use aqua_ais::{Instr, WetLoc};
use aqua_compiler::{compile, CompileOptions};
use aqua_volume::Machine;

/// Two independent mixes contend for the single mixer: the first
/// product must be evicted to a reservoir before the second mix runs,
/// and still reach its consumer afterwards.
#[test]
fn parked_products_are_evicted_when_the_unit_is_reused() {
    let machine = Machine::paper_default();
    let src = "
ASSAY t START
fluid A, B, x, y;
x = MIX A AND B IN RATIOS 1 : 1 FOR 5;
y = MIX A AND B IN RATIOS 1 : 2 FOR 5;
MIX x AND y FOR 5;
SENSE OPTICAL it INTO R;
END";
    let out = compile(src, &machine, &CompileOptions::default()).unwrap();
    // Find an eviction: a move FROM mixer1 TO a reservoir that is not
    // the multi-use store (x and y are single-use, so any
    // mixer->reservoir move is an eviction).
    let evictions = out
        .program
        .instrs()
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::Move {
                    dst: WetLoc::Reservoir(_),
                    src: WetLoc::Mixer(1),
                    ..
                }
            )
        })
        .count();
    assert!(evictions >= 1, "expected an eviction:\n{}", out.program);
    // And the program still executes cleanly.
    let report = aqua_sim::exec::Executor::new(&machine, Default::default())
        .run(&out)
        .unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // The final 1:1 mix of x (1:1) and y (1:2) has A:B =
    // (1/2 + 1/3)/2 : (1/2 + 2/3)/2 = 5/12 : 7/12.
    let s = &report.sense_results[0];
    let ratio = s.composition["B"] / s.composition["A"];
    assert!((ratio - 7.0 / 5.0).abs() < 0.02, "B:A {ratio}");
}

/// The sensor is also contended: two products sensed back-to-back must
/// not leak into each other.
#[test]
fn sensor_contention_does_not_mix_samples() {
    let machine = Machine::paper_default();
    let src = "
ASSAY t START
fluid A, B, C;
MIX A AND B FOR 5;
SENSE OPTICAL it INTO R1;
MIX A AND C FOR 5;
SENSE OPTICAL it INTO R2;
END";
    let out = compile(src, &machine, &CompileOptions::default()).unwrap();
    let report = aqua_sim::exec::Executor::new(&machine, Default::default())
        .run(&out)
        .unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let r1 = report
        .sense_results
        .iter()
        .find(|s| s.target == "R1")
        .unwrap();
    let r2 = report
        .sense_results
        .iter()
        .find(|s| s.target == "R2")
        .unwrap();
    assert!(r1.composition.get("C").copied().unwrap_or(0.0) < 1e-9);
    assert!(r2.composition.get("B").copied().unwrap_or(0.0) < 1e-9);
}

/// Every emitted instruction has a plan slot, and every metered move's
/// static volume is a least-count multiple.
#[test]
fn plans_are_complete_and_least_count_aligned() {
    let machine = Machine::paper_default();
    for bench in [
        aqua_assays::Benchmark::Glucose,
        aqua_assays::Benchmark::Enzyme,
    ] {
        let out = bench.compile(&machine).unwrap();
        assert_eq!(out.volume_plan.entries.len(), out.program.instrs().len());
        for entry in out.volume_plan.entries.iter().flatten() {
            if let aqua_compiler::PlannedVolume::Static(pl) = entry {
                assert_eq!(pl % 100, 0, "{pl} pl is not a 100 pl multiple");
            }
        }
    }
}

/// An unknown-volume separation with two uses in different partitions
/// splits its measured yield 1/2 + 1/2.
#[test]
fn multi_use_unknown_yield_is_split() {
    let machine = Machine::paper_default();
    let src = "
ASSAY t START
fluid A, B, s, m, buf, eff, waste;
s = MIX A AND B FOR 30;
SEPARATE s MATRIX m USING buf FOR 30 INTO eff AND waste;
MIX eff AND A FOR 5;
SENSE OPTICAL it INTO R1;
MIX eff AND B FOR 5;
SENSE OPTICAL it INTO R2;
END";
    let out = compile(src, &machine, &CompileOptions::default()).unwrap();
    let aqua_compiler::VolumeResolution::Partitioned(plan) = &out.resolution else {
        panic!("expected partitioned resolution");
    };
    let mut shares = Vec::new();
    for part in &plan.partitions {
        for binding in part.bindings.values() {
            if let aqua_volume::unknown::Binding::Runtime { share, .. } = binding {
                shares.push(*share);
            }
        }
    }
    shares.sort();
    let half = aqua_rational::Ratio::new(1, 2).unwrap();
    assert!(
        shares.iter().filter(|&&s| s == half).count() >= 2,
        "expected two 1/2 shares, got {shares:?}"
    );
    // And execution respects the split.
    let report = aqua_sim::exec::Executor::new(&machine, Default::default())
        .run(&out)
        .unwrap();
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}
