//! The glucose assay (Figure 9): concentration calibration against an
//! optical sensor. All volumes and uses are statically known, so the
//! whole volume assignment happens at compile time (zero run-time
//! overhead — §4.2).

/// Figure 9(a), verbatim in our assay language.
pub const SOURCE: &str = "
ASSAY glucose START
fluid Glucose, Reagent, Sample;
fluid a, b, c, d, e;
VAR Result[5];
a = MIX Glucose AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[1];
b = MIX Glucose AND Reagent IN RATIOS 1 : 2 FOR 10;
SENSE OPTICAL it INTO Result[2];
c = MIX Glucose AND Reagent IN RATIOS 1 : 4 FOR 10;
SENSE OPTICAL it INTO Result[3];
d = MIX Glucose AND Reagent IN RATIOS 1 : 8 FOR 10;
SENSE OPTICAL it INTO Result[4];
e = MIX Sample AND Reagent IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Result[5];
END
";

#[cfg(test)]
mod tests {
    use aqua_rational::Ratio;
    use aqua_volume::{dagsolve, Machine};

    #[test]
    fn figure12_smallest_dispensed_volume_is_3_3_nl() {
        let machine = Machine::paper_default();
        let flat = aqua_lang::compile_to_flat(super::SOURCE).unwrap();
        let (dag, _) = aqua_compiler::lower_to_dag(&flat).unwrap();
        let sol = dagsolve::solve(&dag, &machine).unwrap();
        assert!(sol.underflow.is_none());
        let (_, min) = sol.min_edge.unwrap();
        // Exact: (1/9) * 100 / (302/90) nl = 1000/302 nl ~ 3.311 nl;
        // the paper reports it as 3.3 nl.
        assert_eq!(min, Ratio::new(1000, 302).unwrap());
        let rounded = machine.round_to_least_count(min);
        assert_eq!(rounded, Ratio::new(33, 10).unwrap());
    }

    #[test]
    fn figure12_vnorms() {
        // Reagent carries the maximum Vnorm 302/90; Glucose 103/90;
        // Sample 1/2.
        let flat = aqua_lang::compile_to_flat(super::SOURCE).unwrap();
        let (dag, _) = aqua_compiler::lower_to_dag(&flat).unwrap();
        let t = aqua_volume::vnorm::compute(&dag).unwrap();
        let v = |name: &str| t.node[dag.find_node(name).unwrap().index()];
        assert_eq!(v("Reagent"), Ratio::new(302, 90).unwrap());
        assert_eq!(v("Glucose"), Ratio::new(103, 90).unwrap());
        assert_eq!(v("Sample"), Ratio::new(1, 2).unwrap());
        assert_eq!(t.max_load(), Ratio::new(302, 90).unwrap());
    }
}
