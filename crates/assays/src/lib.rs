//! The paper's benchmark assays (§4.1) and synthetic workloads.
//!
//! * [`glucose`] — glucose-concentration calibration (Figure 9): five
//!   mixes against a shared reagent, all volumes statically known;
//! * [`glycomics`] — the glycan-analysis pipeline (Figure 10): three
//!   separations with statically-unknown yields, exercising §3.5
//!   run-time partitioning;
//! * [`enzyme`] — enzyme-kinetics inhibition (Figure 11): serial
//!   dilutions (1:1 … 1:999) crossed combinatorially, exercising
//!   extreme ratios (cascading) and numerous uses (replication);
//!   [`enzyme::source_n`] scales the dilution count — `source_n(10)`
//!   is Table 2's *Enzyme10*;
//! * [`figure2`] — the running example of Figures 2/3/5;
//! * [`synthetic`] — seeded random DAG generators for property tests
//!   and scaling studies.
//!
//! # Examples
//!
//! ```
//! use aqua_assays::glucose;
//! use aqua_volume::Machine;
//!
//! let out = aqua_compiler::compile(
//!     glucose::SOURCE,
//!     &Machine::paper_default(),
//!     &Default::default(),
//! )?;
//! assert_eq!(out.dag.num_nodes(), 13);
//! # Ok::<(), aqua_compiler::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod enzyme;
pub mod figure2;
pub mod glucose;
pub mod glycomics;
pub mod synthetic;

use aqua_compiler::{CompileError, CompileOptions, CompileOutput};
use aqua_volume::Machine;

/// The paper's benchmark suite, as used by Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Figure 9.
    Glucose,
    /// Figure 10.
    Glycomics,
    /// Figure 11 (four dilutions).
    Enzyme,
    /// The Enzyme assay scaled to `n` dilutions (Table 2 uses 10).
    EnzymeN(u32),
}

impl Benchmark {
    /// The display name used in tables.
    pub fn name(self) -> String {
        match self {
            Benchmark::Glucose => "Glucose".into(),
            Benchmark::Glycomics => "Glycomics".into(),
            Benchmark::Enzyme => "Enzyme".into(),
            Benchmark::EnzymeN(n) => format!("Enzyme{n}"),
        }
    }

    /// The assay source text.
    pub fn source(self) -> String {
        match self {
            Benchmark::Glucose => glucose::SOURCE.to_owned(),
            Benchmark::Glycomics => glycomics::SOURCE.to_owned(),
            Benchmark::Enzyme => enzyme::source_n(4),
            Benchmark::EnzymeN(n) => enzyme::source_n(n),
        }
    }

    /// Compiles the benchmark for a machine.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`].
    pub fn compile(self, machine: &Machine) -> Result<CompileOutput, CompileError> {
        aqua_compiler::compile(&self.source(), machine, &CompileOptions::default())
    }

    /// All Table 2 rows.
    pub fn table2_suite() -> Vec<Benchmark> {
        vec![
            Benchmark::Glucose,
            Benchmark::Glycomics,
            Benchmark::Enzyme,
            Benchmark::EnzymeN(10),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_table2() {
        let names: Vec<String> = Benchmark::table2_suite()
            .into_iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(names, ["Glucose", "Glycomics", "Enzyme", "Enzyme10"]);
    }

    #[test]
    fn every_benchmark_source_parses() {
        for b in [
            Benchmark::Glucose,
            Benchmark::Glycomics,
            Benchmark::Enzyme,
            Benchmark::EnzymeN(2),
            Benchmark::EnzymeN(6),
        ] {
            let flat = aqua_lang::compile_to_flat(&b.source())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(!flat.ops.is_empty());
        }
    }

    #[test]
    fn enzyme_n_scales_cubically() {
        let ops = |n| {
            aqua_lang::compile_to_flat(&enzyme::source_n(n))
                .unwrap()
                .ops
                .len()
        };
        // 3n dilutions + 3 n^3 combination steps.
        assert_eq!(ops(2), 6 + 3 * 8);
        assert_eq!(ops(3), 9 + 3 * 27);
        assert_eq!(ops(5), 15 + 3 * 125);
    }
}
