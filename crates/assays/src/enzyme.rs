//! The enzyme assay (Figure 11): inhibitor/enzyme/substrate kinetics.
//!
//! `n` serial dilutions of each of three reagents (ratios `1:1`,
//! `1:9`, `1:99`, ... against a shared diluent) are crossed into
//! `n^3` three-way mixes, each incubated and sensed. With `n = 4` the
//! deepest dilution is 1:999 — beyond the 1000x hardware span — and the
//! diluent is used 12 times, so the assay needs *both* cascading and
//! static replication (§4.2, Figure 14). `source_n(10)` is Table 2's
//! Enzyme10 scaling study.

/// The paper's Figure 11(a) with `n` dilutions per reagent (paper: 4).
pub fn source_n(n: u32) -> String {
    format!(
        "
ASSAY enzyme_test START
VAR inhibitor_diluent, enzyme_diluent, substrate_diluent;
VAR i, j, k, temp, RESULT[{n}][{n}][{n}];
fluid Diluted_Inhibitor[{n}], Diluted_Enzyme[{n}];
fluid Diluted_Substrate[{n}];
fluid inhibitor, enzyme, diluent, substrate;
inhibitor_diluent = 1;
enzyme_diluent = 1;
substrate_diluent = 1;
temp = 1;
FOR i FROM 1 TO {n} START --inhibitor
  Diluted_Inhibitor[i] = MIX inhibitor AND diluent IN RATIOS 1:inhibitor_diluent FOR 30;
  temp = temp * 10;
  inhibitor_diluent = temp - 1;
ENDFOR
temp = 1;
FOR j FROM 1 TO {n} START --enzyme
  Diluted_Enzyme[j] = MIX enzyme AND diluent IN RATIOS 1:enzyme_diluent FOR 30;
  temp = temp * 10;
  enzyme_diluent = temp - 1;
ENDFOR
temp = 1;
FOR k FROM 1 TO {n} START --substrate
  Diluted_Substrate[k] = MIX substrate AND diluent IN RATIOS 1:substrate_diluent FOR 30;
  temp = temp * 10;
  substrate_diluent = temp - 1;
ENDFOR
FOR i FROM 1 TO {n} START --inhibitor
  FOR j FROM 1 TO {n} START --enzyme
    FOR k FROM 1 TO {n} START --substrate
      MIX Diluted_Inhibitor[i] AND Diluted_Enzyme[j] AND Diluted_Substrate[k] FOR 60;
      INCUBATE it AT 37 FOR 300;
      SENSE OPTICAL it INTO RESULT[i][j][k];
    ENDFOR
  ENDFOR
ENDFOR
END
"
    )
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use aqua_rational::Ratio;
    use aqua_volume::{cascade, dagsolve, replicate, vnorm, Machine};

    fn r(n: i128, d: i128) -> Ratio {
        Ratio::new(n, d).unwrap()
    }

    fn enzyme_dag() -> aqua_dag::Dag {
        let flat = aqua_lang::compile_to_flat(&super::source_n(4)).unwrap();
        let (dag, _) = aqua_compiler::lower_to_dag(&flat).unwrap();
        dag
    }

    #[test]
    fn unrolls_to_the_papers_shape() {
        let dag = enzyme_dag();
        // 4 inputs + 12 dilutions + 64 mixes + 64 incubates + 64 senses.
        assert_eq!(dag.num_nodes(), 4 + 12 + 64 * 3);
        // Diluent used 12 times; each dilution used 16 times.
        let diluent = dag.find_node("diluent").unwrap();
        assert_eq!(dag.num_uses(diluent), 12);
        let d1 = dag.find_node("Diluted_Enzyme[2]").unwrap();
        assert_eq!(dag.num_uses(d1), 16);
    }

    /// Figure 14(a): dilution Vnorm 16/3, diluent Vnorm ~54 (exactly
    /// 16 * 3389/1000), minimum dispensed volume 9.8 pl (underflow).
    #[test]
    fn figure14_baseline_numbers() {
        let machine = Machine::paper_default();
        let dag = enzyme_dag();
        let t = vnorm::compute(&dag).unwrap();
        let diluted = dag.find_node("Diluted_Enzyme[4]").unwrap();
        assert_eq!(t.node[diluted.index()], r(16, 3));
        let diluent = dag.find_node("diluent").unwrap();
        // 16/3 * 3 * (1/2 + 9/10 + 99/100 + 999/1000) = 16*3389/1000.
        assert_eq!(t.node[diluent.index()], r(16 * 3389, 1000));
        assert_eq!(t.max_load(), r(16 * 3389, 1000));

        let sol = dagsolve::solve(&dag, &machine).unwrap();
        // Dilutions get ~9.8 nl; the 1:999 enzyme aliquot is ~9.8 pl.
        let dil_nl = sol.node_nl(diluted).to_f64();
        assert!((dil_nl - 9.83).abs() < 0.05, "dilution volume {dil_nl}");
        let (_, min) = sol.min_edge.unwrap();
        let min_pl = min.to_f64() * 1000.0;
        assert!((min_pl - 9.83).abs() < 0.1, "min dispense {min_pl} pl");
        assert!(sol.underflow.is_some(), "must underflow at 9.8 pl");
    }

    /// Figure 14(b): cascading the three 1:999 mixes raises diluent
    /// uses 12 -> 18 and its Vnorm to ~81; the new minimum (the 1:99
    /// aliquot) is ~65.6 pl — still underflow.
    #[test]
    fn figure14_cascading_alone_is_not_enough() {
        let machine = Machine::paper_default();
        let mut dag = enzyme_dag();
        let extremes = cascade::find_extreme_mixes(&dag, &machine);
        assert_eq!(extremes.len(), 3, "three 1:999 dilutions");
        for node in extremes {
            let info = cascade::apply_cascade(&mut dag, node, &machine).unwrap();
            assert_eq!(info.plan.depth(), 3, "1:999 cascades to three 1:9s");
            // Intermediates inherit the original node's Vnorm 16/3.
        }
        assert!(dag.validate().is_ok());
        let diluent = dag.find_node("diluent").unwrap();
        assert_eq!(dag.num_uses(diluent), 18);
        let t = vnorm::compute(&dag).unwrap();
        // 54.224 - 3*5.328 + 3*14.4 = 81.44 exactly 16*3389/1000
        // - 3*(999/1000)*(16/3) + 9*(9/10)*(16/3).
        let expect = r(16 * 3389, 1000) - r(3 * 999 * 16, 3000) + r(9 * 9 * 16, 30);
        assert_eq!(t.node[diluent.index()], expect);
        assert!((t.node[diluent.index()].to_f64() - 81.44).abs() < 0.01);
        // Intermediate stages carry Vnorm 16/3 (the paper's statement).
        let c1 = dag
            .node_ids()
            .find(|&n| dag.node(n).name.contains("#c1"))
            .unwrap();
        assert_eq!(t.node[c1.index()], r(16, 3));

        let sol = dagsolve::solve(&dag, &machine).unwrap();
        let (edge, min) = sol.min_edge.unwrap();
        let min_pl = min.to_f64() * 1000.0;
        // The minimum is now the 1:99 enzyme aliquot at ~65.5 pl.
        assert!((min_pl - 65.5).abs() < 0.5, "min {min_pl} pl");
        assert!(sol.underflow.is_some());
        let src = dag.edge(edge).src;
        assert!(
            ["enzyme", "inhibitor", "substrate"].contains(&dag.node(src).name.as_str()),
            "underflow source {}",
            dag.node(src).name
        );
    }

    /// Figure 14(b) continued: replicating the diluent x3 drops its
    /// Vnorm to ~27 and lifts the minimum to ~196 pl — all underflow
    /// gone.
    #[test]
    fn figure14_cascading_plus_replication_succeeds() {
        let machine = Machine::paper_default();
        let mut dag = enzyme_dag();
        for node in cascade::find_extreme_mixes(&dag, &machine) {
            cascade::apply_cascade(&mut dag, node, &machine).unwrap();
        }
        let diluent = dag.find_node("diluent").unwrap();
        replicate::replicate_node(&mut dag, diluent, 3, &machine).unwrap();
        assert!(dag.validate().is_ok());
        let t = vnorm::compute(&dag).unwrap();
        let max = t.max_load().to_f64();
        assert!((max - 81.44 / 3.0).abs() < 0.01, "diluent Vnorm {max}");
        let sol = dagsolve::solve(&dag, &machine).unwrap();
        let (_, min) = sol.min_edge.unwrap();
        let min_pl = min.to_f64() * 1000.0;
        assert!((min_pl - 196.0).abs() < 2.0, "min {min_pl} pl");
        assert!(sol.underflow.is_none(), "{:?}", sol.underflow);
    }

    /// Figure 14: replication *without* cascading only reaches ~29.5 pl.
    #[test]
    fn figure14_replication_alone_is_not_enough() {
        let machine = Machine::paper_default();
        let mut dag = enzyme_dag();
        let diluent = dag.find_node("diluent").unwrap();
        replicate::replicate_node(&mut dag, diluent, 3, &machine).unwrap();
        let sol = dagsolve::solve(&dag, &machine).unwrap();
        let (_, min) = sol.min_edge.unwrap();
        let min_pl = min.to_f64() * 1000.0;
        assert!((min_pl - 29.5).abs() < 0.5, "min {min_pl} pl");
        assert!(sol.underflow.is_some());
    }

    /// The full hierarchy (Figure 6) rescues the enzyme assay
    /// automatically with cascade + replication.
    #[test]
    fn hierarchy_rescues_enzyme_automatically() {
        let machine = Machine::paper_default();
        let dag = enzyme_dag();
        let out = aqua_volume::manage_volumes(&dag, &machine, &Default::default());
        match out {
            aqua_volume::ManagedOutcome::Solved { volumes, .. } => {
                // Rewrites are mandatory (the raw DAG underflows); either
                // solver may close the deal afterwards — DAGSolve after
                // cascade+replication, or LP exploiting the cascade's
                // excess slack directly (both paths appear in Figure 6).
                assert!(
                    matches!(
                        volumes.method,
                        aqua_volume::Method::DagSolveAfterRewrites
                            | aqua_volume::Method::LpAfterRewrites
                    ),
                    "unexpected method {:?}",
                    volumes.method
                );
            }
            other => panic!("hierarchy failed: {other:?}"),
        }
    }

    /// Dispensed volumes from Figure 14's narration: dilutions at
    /// ~9.8 nl, split 16 ways into ~0.6 nl, final mixes ~1.8 nl.
    #[test]
    fn figure14_dispensed_volume_narration() {
        let machine = Machine::paper_default();
        let dag = enzyme_dag();
        let sol = dagsolve::solve(&dag, &machine).unwrap();
        let combo = dag
            .node_ids()
            .find(|&n| {
                matches!(dag.node(n).kind, aqua_dag::NodeKind::Mix { .. })
                    && dag.in_edges(n).len() == 3
            })
            .unwrap();
        let total = sol.node_nl(combo).to_f64();
        assert!((total - 1.84).abs() < 0.05, "combo volume {total}");
        let per_part = sol.edge_nl(dag.in_edges(combo)[0]).to_f64();
        assert!((per_part - 0.615).abs() < 0.02, "aliquot {per_part}");
    }

    #[test]
    fn enzyme10_scales_the_problem() {
        let flat = aqua_lang::compile_to_flat(&super::source_n(10)).unwrap();
        let (dag, _) = aqua_compiler::lower_to_dag(&flat).unwrap();
        assert_eq!(dag.num_nodes(), 4 + 30 + 1000 * 3);
        let diluent = dag.find_node("diluent").unwrap();
        assert_eq!(dag.num_uses(diluent), 30);
        // Weights defined: no panic in vnorm on the huge ratios.
        let t = aqua_volume::vnorm::compute(&dag).unwrap();
        assert!(t.max_load().is_positive());
        let _ = HashMap::<(), ()>::new();
    }
}
