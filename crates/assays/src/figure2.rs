//! The running example of Figures 2, 3, and 5.

use aqua_dag::{Dag, NodeId};

/// Node handles of the Figure 2 DAG.
#[derive(Debug, Clone, Copy)]
pub struct Figure2 {
    /// Input A.
    pub a: NodeId,
    /// Input B.
    pub b: NodeId,
    /// Input C.
    pub c: NodeId,
    /// `K = mix A:B in ratio 1:4`.
    pub k: NodeId,
    /// `L = mix B:C in ratio 2:1`.
    pub l: NodeId,
    /// `M = mix K:L in ratio 2:1` (final output).
    pub m: NodeId,
    /// `N = mix L:C in ratio 2:3` (final output).
    pub n: NodeId,
}

/// Builds the Figure 2 DAG. `M` and `N` are leaf mixes (the paper's
/// outputs).
pub fn dag() -> (Dag, Figure2) {
    let mut d = Dag::new();
    let a = d.add_input("A");
    let b = d.add_input("B");
    let c = d.add_input("C");
    let k = d.add_mix("K", &[(a, 1), (b, 4)], 0).expect("valid mix");
    let l = d.add_mix("L", &[(b, 2), (c, 1)], 0).expect("valid mix");
    let m = d.add_mix("M", &[(k, 2), (l, 1)], 0).expect("valid mix");
    let n = d.add_mix("N", &[(l, 2), (c, 3)], 0).expect("valid mix");
    (
        d,
        Figure2 {
            a,
            b,
            c,
            k,
            l,
            m,
            n,
        },
    )
}

/// The same assay in the surface language (useful for end-to-end
/// pipeline demos; `K`/`L`/`M`/`N` become named fluids).
pub const SOURCE: &str = "
ASSAY figure2 START
fluid A, B, C;
fluid K, L, M, N;
K = MIX A AND B IN RATIOS 1 : 4 FOR 10;
L = MIX B AND C IN RATIOS 2 : 1 FOR 10;
M = MIX K AND L IN RATIOS 2 : 1 FOR 10;
N = MIX L AND C IN RATIOS 2 : 3 FOR 10;
END
";

#[cfg(test)]
mod tests {
    use aqua_rational::Ratio;
    use aqua_volume::{dagsolve, Machine};

    #[test]
    fn builder_and_source_agree() {
        let (d, f) = super::dag();
        assert!(d.validate().is_ok());
        let flat = aqua_lang::compile_to_flat(super::SOURCE).unwrap();
        let (d2, _) = aqua_compiler::lower_to_dag(&flat).unwrap();
        assert_eq!(d.num_nodes(), d2.num_nodes());
        assert_eq!(d.num_edges(), d2.num_edges());
        let _ = f;
    }

    #[test]
    fn figure5_worked_numbers() {
        let (d, f) = super::dag();
        let machine = Machine::paper_default();
        let sol = dagsolve::solve(&d, &machine).unwrap();
        // Vnorms from Figure 5(a).
        let v = |n| sol.vnorms.node[aqua_dag::NodeId::index(n)];
        assert_eq!(v(f.l), Ratio::new(11, 15).unwrap());
        assert_eq!(v(f.k), Ratio::new(2, 3).unwrap());
        assert_eq!(v(f.a), Ratio::new(2, 15).unwrap());
        assert_eq!(v(f.b), Ratio::new(46, 45).unwrap());
        // Dispensed volumes from Figure 5(b): B gets the 100 nl max.
        assert_eq!(sol.node_nl(f.b), Ratio::from_int(100));
        assert!(sol.underflow.is_none());
    }
}
