//! Seeded synthetic workload generators for property tests, scaling
//! studies, and ablations.

use aqua_dag::{Dag, NodeId};
use aqua_rational::rng::XorShift64Star;

/// Parameters of a random layered assay DAG.
#[derive(Debug, Clone)]
pub struct LayeredConfig {
    /// Number of external inputs.
    pub inputs: usize,
    /// Number of mix layers.
    pub layers: usize,
    /// Mix nodes per layer.
    pub width: usize,
    /// Inputs per mix (2..=4 is realistic).
    pub fanin: usize,
    /// Maximum ratio part (ratio parts drawn from `1..=max_part`).
    pub max_part: u64,
}

impl Default for LayeredConfig {
    fn default() -> LayeredConfig {
        LayeredConfig {
            inputs: 4,
            layers: 3,
            width: 4,
            fanin: 2,
            max_part: 9,
        }
    }
}

/// Generates a random layered DAG: each layer's mixes draw from any
/// earlier layer (or the inputs), and every orphan product is sensed.
/// Deterministic in `seed`.
///
/// # Examples
///
/// ```
/// use aqua_assays::synthetic::{layered_dag, LayeredConfig};
///
/// let dag = layered_dag(42, &LayeredConfig::default());
/// assert!(dag.validate().is_ok());
/// let again = layered_dag(42, &LayeredConfig::default());
/// assert_eq!(dag.num_edges(), again.num_edges());
/// ```
pub fn layered_dag(seed: u64, config: &LayeredConfig) -> Dag {
    let mut rng = XorShift64Star::new(seed);
    let mut dag = Dag::new();
    let mut pool: Vec<NodeId> = (0..config.inputs)
        .map(|i| dag.add_input(format!("in{i}")))
        .collect();
    for layer in 0..config.layers {
        let mut next = Vec::new();
        for w in 0..config.width {
            let mut parts = Vec::new();
            let fanin = config.fanin.max(2).min(pool.len());
            // Sample distinct sources.
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < fanin {
                let i = rng.index(pool.len());
                if !chosen.contains(&i) {
                    chosen.push(i);
                }
            }
            for i in chosen {
                parts.push((pool[i], rng.range_u64(1, config.max_part)));
            }
            let node = dag
                .add_mix(format!("mix{layer}_{w}"), &parts, 10)
                .expect("nonzero parts");
            next.push(node);
        }
        pool.extend(next);
    }
    // Sense every unconsumed product so the DAG has proper leaves.
    let leaves: Vec<NodeId> = dag
        .node_ids()
        .filter(|&n| dag.out_edges(n).is_empty() && !dag.in_edges(n).is_empty())
        .collect();
    for (i, n) in leaves.into_iter().enumerate() {
        dag.add_process(format!("sense{i}"), "sense.OD", n);
    }
    dag
}

/// A "many uses" stress DAG: one stock fluid consumed by `uses` 1:1
/// mixes (drives static replication).
pub fn many_uses_dag(uses: usize) -> Dag {
    let mut dag = Dag::new();
    let stock = dag.add_input("stock");
    let partner = dag.add_input("partner");
    for i in 0..uses {
        let m = dag
            .add_mix(format!("m{i}"), &[(stock, 1), (partner, 1)], 0)
            .expect("valid");
        dag.add_process(format!("s{i}"), "sense.OD", m);
    }
    dag
}

/// An "extreme ratio" stress DAG: a single `1:skew` mix (drives
/// cascading when `skew + 1` exceeds the machine span).
pub fn extreme_ratio_dag(skew: u64) -> Dag {
    let mut dag = Dag::new();
    let a = dag.add_input("A");
    let b = dag.add_input("B");
    let m = dag
        .add_mix("extreme", &[(a, 1), (b, skew)], 0)
        .expect("valid");
    dag.add_process("sense", "sense.OD", m);
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_volume::{dagsolve, Machine};

    #[test]
    fn layered_dags_are_valid_and_deterministic() {
        for seed in 0..20 {
            let d1 = layered_dag(seed, &LayeredConfig::default());
            let d2 = layered_dag(seed, &LayeredConfig::default());
            assert!(d1.validate().is_ok(), "seed {seed}: {:?}", d1.validate());
            assert_eq!(d1.num_nodes(), d2.num_nodes());
            assert_eq!(d1.num_edges(), d2.num_edges());
        }
    }

    #[test]
    fn layered_dags_mostly_solve() {
        let machine = Machine::paper_default();
        let mut solved = 0;
        for seed in 0..20 {
            let d = layered_dag(seed, &LayeredConfig::default());
            if dagsolve::solve(&d, &machine)
                .map(|s| s.underflow.is_none())
                .unwrap_or(false)
            {
                solved += 1;
            }
        }
        assert!(solved >= 15, "only {solved}/20 solved");
    }

    #[test]
    fn stress_generators_have_the_right_shape() {
        let d = many_uses_dag(100);
        assert_eq!(d.num_uses(d.find_node("stock").unwrap()), 100);
        let d = extreme_ratio_dag(4999);
        let m = d.find_node("extreme").unwrap();
        let min_frac = d
            .in_edges(m)
            .iter()
            .map(|&e| d.edge(e).fraction)
            .min()
            .unwrap();
        assert_eq!(min_frac, aqua_rational::Ratio::new(1, 5000).unwrap());
    }
}
