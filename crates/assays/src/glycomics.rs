//! The glycomics assay (Figure 10): glycan extraction and cleanup.
//!
//! Three separations (one affinity, two liquid-chromatography) produce
//! statically-unknown volumes, so the DAG is partitioned at compile
//! time (four partitions, Figure 13) and final dispensing happens at
//! run time (§3.5). `buffer3a` is used by two different partitions and
//! is split 50/50 between them.

/// Figure 10(a), in our assay language. The `it` chaining and the
/// 1:10 / 1:100:1 ratios follow the paper; unlabeled mixes are 1:1.
pub const SOURCE: &str = "
ASSAY glycomics START
fluid buffer1a, buffer1b, buffer2; --buffer2 has PNGanF
fluid buffer3a, buffer3b, buffer4, buffer5;
fluid sample, lectin, C_18, NaOH;
fluid effluent, effluent2, effluent3, waste, waste2, waste3;
MIX buffer1a AND sample FOR 30;
SEPARATE it MATRIX lectin USING buffer1b FOR 30 INTO effluent AND waste;
MIX effluent AND buffer2 FOR 30;
INCUBATE it AT 37 FOR 30;
MIX it AND buffer3a IN RATIOS 1 : 10 FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 30 INTO effluent2 AND waste2;
MIX effluent2 AND buffer4 AND NaOH IN RATIOS 1 : 100 : 1 FOR 30;
MIX it AND buffer3a FOR 30;
LCSEPARATE it MATRIX C_18 USING buffer3b FOR 2400 INTO effluent3 AND waste3;
MIX effluent3 AND buffer5 FOR 30;
END
";

#[cfg(test)]
mod tests {
    use aqua_rational::Ratio;
    use aqua_volume::unknown::{self, Binding};
    use aqua_volume::Machine;

    fn partition_plan() -> (aqua_dag::Dag, unknown::PartitionPlan) {
        let flat = aqua_lang::compile_to_flat(super::SOURCE).unwrap();
        let (dag, _) = aqua_compiler::lower_to_dag(&flat).unwrap();
        let plan = unknown::partition(&dag, &Machine::paper_default()).unwrap();
        (dag, plan)
    }

    #[test]
    fn figure13_four_partitions() {
        let (_, plan) = partition_plan();
        assert_eq!(plan.partitions.len(), 4);
    }

    #[test]
    fn figure13_buffer3a_is_split_50_50() {
        let (_, plan) = partition_plan();
        let mut splits = Vec::new();
        for part in &plan.partitions {
            for (ci, b) in &part.bindings {
                if let Binding::Static { volume_nl } = b {
                    assert!(part.dag.node(*ci).name.starts_with("buffer3a"));
                    splits.push(*volume_nl);
                }
            }
        }
        assert_eq!(splits, vec![Ratio::from_int(50), Ratio::from_int(50)]);
    }

    #[test]
    fn figure13_x2_vnorm_is_1_over_204() {
        // The constrained input of the permethylation partition (fed by
        // the second LC separation) has Vnorm 1/204.
        let (_, plan) = partition_plan();
        let mut found = false;
        for part in &plan.partitions {
            for (ci, b) in &part.bindings {
                if matches!(b, Binding::Runtime { .. })
                    && part.vnorms.node[ci.index()] == Ratio::new(1, 204).unwrap()
                {
                    found = true;
                }
            }
        }
        assert!(found, "no constrained input with Vnorm 1/204");
    }

    #[test]
    fn runtime_dispensing_respects_measurements() {
        let (_, plan) = partition_plan();
        let machine = Machine::paper_default();
        // Low separation yields: everything downstream scales down.
        let lo = plan
            .dispense_all(&machine, |_, _| Some(Ratio::from_int(2)))
            .unwrap();
        let hi = plan
            .dispense_all(&machine, |_, _| Some(Ratio::from_int(40)))
            .unwrap();
        // Final partition's output volume grows with the measured yield.
        let last_lo = &lo[lo.len() - 1];
        let last_hi = &hi[hi.len() - 1];
        assert!(last_hi.scale_nl > last_lo.scale_nl);
    }
}
