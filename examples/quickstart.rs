//! Quickstart: write an assay, compile it with automatic volume
//! management, inspect the generated AquaCore code, and simulate it.
//!
//! Run with: `cargo run --example quickstart`

use aqua_compiler::{compile, PlannedVolume};
use aqua_sim::exec::{ExecConfig, Executor};
use aqua_volume::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-point serial dilution of a dye, read by the optical
    // sensor. `it` always names the previous statement's product.
    let src = "
ASSAY dilution_curve START
fluid Dye, Buffer;
VAR Reading[3];
MIX Dye AND Buffer IN RATIOS 1 : 1 FOR 10;
SENSE OPTICAL it INTO Reading[1];
MIX Dye AND Buffer IN RATIOS 1 : 9 FOR 10;
SENSE OPTICAL it INTO Reading[2];
MIX Dye AND Buffer IN RATIOS 1 : 19 FOR 10;
SENSE OPTICAL it INTO Reading[3];
END";

    // The paper's machine: 100 nl capacity, 0.1 nl metering resolution.
    let machine = Machine::paper_default();
    let out = compile(src, &machine, &Default::default())?;

    println!("=== Generated AquaCore (AIS) code ===");
    print!("{}", out.program);

    println!("\n=== Metered volumes chosen by DAGSolve ===");
    for (i, instr) in out.program.instrs().iter().enumerate() {
        if let Some(PlannedVolume::Static(pl)) = out.volume_plan.get(i) {
            println!(
                "  {:<28} {:>8.1} nl",
                instr.to_string(),
                *pl as f64 / 1000.0
            );
        }
    }

    println!("\n=== Simulated execution ===");
    let report = Executor::new(&machine, ExecConfig::default()).run(&out)?;
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    for s in &report.sense_results {
        let dye = s.composition.get("Dye").copied().unwrap_or(0.0);
        let buffer = s.composition.get("Buffer").copied().unwrap_or(0.0);
        println!(
            "  {}: {:.1} nl sensed, Dye:Buffer = 1:{:.0}",
            s.target,
            s.volume_pl as f64 / 1000.0,
            buffer / dye
        );
    }
    println!("\nno underflow, no overflow, no fluid ran out — volumes managed.");
    Ok(())
}
