//! The enzyme assay's rescue story (Figure 14), driven through the
//! automatic volume-management hierarchy (Figure 6): DAGSolve
//! underflows at 9.8 pl, the hierarchy cascades the 1:999 dilutions
//! (and replicates or re-solves as needed), and the final assignment is
//! feasible.
//!
//! Run with: `cargo run --release --example enzyme_rescue`

use aqua_assays::enzyme;
use aqua_volume::{dagsolve, manage_volumes, Machine, ManagedOutcome};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::paper_default();
    let flat = aqua_lang::compile_to_flat(&enzyme::source_n(4))?;
    let (dag, _) = aqua_compiler::lower_to_dag(&flat)?;

    // Raw DAGSolve: the 1:999 aliquot underflows at ~9.8 pl.
    let raw = dagsolve::solve(&dag, &machine)?;
    let (_, min) = raw.min_edge.expect("edges");
    println!(
        "raw DAGSolve: minimum transfer {:.1} pl — {}",
        min.to_f64() * 1000.0,
        if raw.underflow.is_some() {
            "UNDERFLOW (the Figure 14 problem)"
        } else {
            "feasible"
        }
    );

    // Let the hierarchy rescue it.
    let outcome = manage_volumes(&dag, &machine, &Default::default());
    match outcome {
        ManagedOutcome::Solved { dag, volumes, log } => {
            println!("\nhierarchy log:");
            for line in &log {
                println!("  {line}");
            }
            let min = volumes
                .edge_volumes_nl
                .iter()
                .filter(|v| v.is_positive())
                .min()
                .expect("has volumes");
            println!(
                "\nsolved with {} on a rewritten DAG of {} nodes (was {});",
                volumes.method,
                dag.num_nodes(),
                flat.ops.len() + flat.inputs().len()
            );
            println!(
                "minimum transfer now {:.1} pl (least count 100 pl)",
                min.to_f64() * 1000.0
            );
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }
    Ok(())
}
