//! The paper's glucose calibration assay (Figure 9/12), end to end:
//! source → DAG → DAGSolve → AIS → simulated execution, verifying the
//! mix ratios physically achieved on the (simulated) chip.
//!
//! Run with: `cargo run --example glucose_pipeline`

use aqua_assays::glucose;
use aqua_compiler::compile;
use aqua_sim::exec::{ExecConfig, Executor};
use aqua_volume::{dagsolve, Machine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::paper_default();

    // 1. Compile (volume management runs inside).
    let out = compile(glucose::SOURCE, &machine, &Default::default())?;
    println!(
        "compiled `{}`: {} DAG nodes, {} AIS instructions",
        out.program.name(),
        out.dag.num_nodes(),
        out.program.len_executable()
    );

    // 2. The volume assignment (Figure 12's numbers).
    let sol = dagsolve::solve(&out.dag, &machine)?;
    let (_, min) = sol.min_edge.expect("has edges");
    println!(
        "smallest metered transfer: {:.2} nl (paper: 3.3 nl); underflow: {}",
        min.to_f64(),
        sol.underflow.is_some()
    );

    // 3. Execute on the simulated AquaCore chip.
    let report = Executor::new(&machine, ExecConfig::default()).run(&out)?;
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    println!("\nsensed calibration points:");
    let mut results = report.sense_results.clone();
    results.sort_by(|a, b| a.target.cmp(&b.target));
    for s in &results {
        let glucose_pl = s.composition.get("Glucose").copied().unwrap_or(0.0);
        let sample_pl = s.composition.get("Sample").copied().unwrap_or(0.0);
        let reagent_pl = s.composition.get("Reagent").copied().unwrap_or(0.0);
        let analyte = glucose_pl + sample_pl;
        println!(
            "  {}: {:.1} nl, analyte:reagent = 1:{:.2}",
            s.target,
            s.volume_pl as f64 / 1000.0,
            reagent_pl / analyte
        );
    }
    println!(
        "\nall five points produced from one 100 nl reagent load — the\n\
         distribution problem the paper's volume management solves."
    );
    Ok(())
}
