//! Statically-unknown volumes at run time (§3.5), on the glycomics
//! assay: the compiler partitions the DAG at the three separations;
//! the simulator measures each separation's yield as it happens and the
//! run-time dispenser scales every later partition accordingly.
//!
//! Run with: `cargo run --example runtime_partitions`

use aqua_assays::glycomics;
use aqua_compiler::{compile, VolumeResolution};
use aqua_sim::exec::{ExecConfig, Executor};
use aqua_volume::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::paper_default();
    let out = compile(glycomics::SOURCE, &machine, &Default::default())?;

    let VolumeResolution::Partitioned(plan) = &out.resolution else {
        panic!("glycomics must be partitioned");
    };
    println!(
        "compiled with {} partitions (Figure 13: four, cut at the\nunknown-yield separations)\n",
        plan.partitions.len()
    );

    // Run the same program under different separation efficiencies: a
    // high-yield chip and a low-yield chip. The AIS code is identical;
    // only the run-time dispensing differs.
    for (label, yield_frac) in [
        ("high-yield chip (60%)", 0.6),
        ("low-yield chip (15%)", 0.15),
    ] {
        let config = ExecConfig {
            unknown_separation_yield: yield_frac,
            ..ExecConfig::default()
        };
        let report = Executor::new(&machine, config).run(&out)?;
        // The final product (the last mix) is parked in the mixer when
        // the program ends.
        let final_volume = report.final_state.volume(aqua_ais::WetLoc::Mixer(1));
        println!("{label}:");
        println!(
            "  violations: {} | wet instructions: {} | final product: {:.1} nl",
            report.violations.len(),
            report.wet_instructions,
            final_volume as f64 / 1000.0
        );
    }
    println!(
        "\nthe low-yield run simply scales volumes down — no recompilation,\n\
         no regeneration: Vnorms were computed at compile time and only the\n\
         final dispensing step ran on the (fast, electronic) controller."
    );
    Ok(())
}
