//! Debugging a volume plan with execution traces: compile the Figure 2
//! running example as an assay, execute with tracing on, and print the
//! timeline of every metered transfer.
//!
//! Run with: `cargo run --example trace_debug`

use aqua_assays::figure2;
use aqua_compiler::compile;
use aqua_sim::exec::{ExecConfig, Executor};
use aqua_sim::trace::render_timeline;
use aqua_volume::Machine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::paper_default();
    let out = compile(figure2::SOURCE, &machine, &Default::default())?;

    let config = ExecConfig {
        record_trace: true,
        ..ExecConfig::default()
    };
    let report = Executor::new(&machine, config).run(&out)?;

    println!("=== {} — execution timeline ===", out.program.name());
    println!("(volumes are the metered amounts DAGSolve chose; Figure 5's");
    println!(" worked example: B carries the max Vnorm and gets 100 nl)\n");
    print!("{}", render_timeline(&report.trace));

    println!(
        "\nwet path total: ~{} s across {} wet instructions;",
        report.wet_seconds, report.wet_instructions
    );
    println!("violations: {}", report.violations.len());
    assert!(report.violations.is_empty());
    Ok(())
}
